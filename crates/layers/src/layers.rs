//! The layer zoo: Keras-style building blocks with reasonable defaults.
//!
//! Shapes in `build`/`output_shape` are per-example (no batch dimension),
//! as in Keras `input_shape`; `call` receives batched tensors whose first
//! dimension is the batch.

use crate::activations::Activation;
use crate::initializers::Initializer;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine, Error, Result, Shape, Tensor, Variable};

static LAYER_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A process-unique default layer name like `dense_3`. Unique names matter:
/// weight names (`layer/kernel`) key optimizer slots and converter
/// manifests.
pub fn unique_name(prefix: &str) -> String {
    format!("{prefix}_{}", LAYER_COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// A model building block (paper Sec 3.2).
pub trait Layer: Send {
    /// Keras class name for serialization (`"Dense"`, `"Conv2D"`, ...).
    fn class_name(&self) -> &'static str;

    /// Instance name.
    fn name(&self) -> &str;

    /// Allocate weights for the given per-example input shape.
    ///
    /// # Errors
    /// Fails on incompatible input shapes.
    fn build(&mut self, engine: &Engine, input_shape: &Shape, seed: u64) -> Result<()>;

    /// Whether weights exist.
    fn built(&self) -> bool;

    /// Run the layer on a batched input.
    ///
    /// # Errors
    /// Fails when not built or on op errors.
    fn call(&self, input: &Tensor, training: bool) -> Result<Tensor>;

    /// Per-example output shape for a per-example input shape.
    ///
    /// # Errors
    /// Fails on incompatible input shapes.
    fn output_shape(&self, input_shape: &Shape) -> Result<Shape>;

    /// Named weights in canonical order (kernel before bias).
    fn weights(&self) -> Vec<(String, Variable)> {
        Vec::new()
    }

    /// Keras-style `config` object for serialization.
    fn get_config(&self) -> Value;

    /// Total parameter count.
    fn count_params(&self) -> usize {
        self.weights().iter().map(|(_, v)| v.shape().size()).sum()
    }
}

fn require_built<'a>(v: &'a Option<Variable>, layer: &str) -> Result<&'a Variable> {
    v.as_ref().ok_or_else(|| Error::invalid("Layer.call", format!("layer {layer} is not built")))
}

fn padding_name(p: Padding) -> &'static str {
    match p {
        Padding::Same => "same",
        Padding::Valid => "valid",
        Padding::Explicit(..) => "explicit",
    }
}

/// Parse a Keras padding name.
pub fn padding_from_name(name: &str) -> Result<Padding> {
    match name {
        "same" => Ok(Padding::Same),
        "valid" => Ok(Padding::Valid),
        other => Err(Error::Serialization { message: format!("unknown padding {other}") }),
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer: `activation(x · kernel + bias)`.
pub struct Dense {
    name: String,
    units: usize,
    activation: Activation,
    use_bias: bool,
    kernel_initializer: Initializer,
    input_dim: Option<usize>,
    kernel: Option<Variable>,
    bias: Option<Variable>,
}

impl Dense {
    /// A dense layer with `units` outputs.
    pub fn new(units: usize) -> Dense {
        Dense {
            name: unique_name("dense"),
            units,
            activation: Activation::Linear,
            use_bias: true,
            kernel_initializer: Initializer::GlorotUniform,
            input_dim: None,
            kernel: None,
            bias: None,
        }
    }

    /// Set the activation.
    pub fn with_activation(mut self, a: Activation) -> Dense {
        self.activation = a;
        self
    }

    /// Declare the input feature count (first layer of a Sequential).
    pub fn with_input_dim(mut self, dim: usize) -> Dense {
        self.input_dim = Some(dim);
        self
    }

    /// Disable the bias term.
    pub fn without_bias(mut self) -> Dense {
        self.use_bias = false;
        self
    }

    /// Set the kernel initializer.
    pub fn with_kernel_initializer(mut self, init: Initializer) -> Dense {
        self.kernel_initializer = init;
        self
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> Dense {
        self.name = name.into();
        self
    }

    /// Declared input dim, if any.
    pub fn input_dim(&self) -> Option<usize> {
        self.input_dim
    }
}

impl Layer for Dense {
    fn class_name(&self) -> &'static str {
        "Dense"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, engine: &Engine, input_shape: &Shape, seed: u64) -> Result<()> {
        if input_shape.rank() != 1 {
            return Err(Error::shape("Dense.build", format!("expected rank-1 input, got {input_shape}")));
        }
        let in_dim = input_shape.dim(0);
        let kernel = self.kernel_initializer.init(engine, [in_dim, self.units], seed)?;
        self.kernel = Some(Variable::new(kernel, format!("{}/kernel", self.name)));
        if self.use_bias {
            let bias = Initializer::Zeros.init(engine, [self.units], seed)?;
            self.bias = Some(Variable::new(bias, format!("{}/bias", self.name)));
        }
        Ok(())
    }

    fn built(&self) -> bool {
        self.kernel.is_some()
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let kernel = require_built(&self.kernel, &self.name)?;
        let bias = self.bias.as_ref().map(Variable::value);
        match self.activation.as_epilogue() {
            Some(act) => {
                ops::fused_matmul(input, &kernel.value(), bias.as_ref(), act, false, false)
            }
            None => {
                // Softmax can't run as an element-wise epilogue: fuse only
                // the bias add, then normalize.
                let y =
                    ops::fused_matmul(input, &kernel.value(), bias.as_ref(), None, false, false)?;
                self.activation.apply(&y)
            }
        }
    }

    fn output_shape(&self, _input_shape: &Shape) -> Result<Shape> {
        Ok(Shape::new(vec![self.units]))
    }

    fn weights(&self) -> Vec<(String, Variable)> {
        let mut w = Vec::new();
        if let Some(k) = &self.kernel {
            w.push((format!("{}/kernel", self.name), k.clone()));
        }
        if let Some(b) = &self.bias {
            w.push((format!("{}/bias", self.name), b.clone()));
        }
        w
    }

    fn get_config(&self) -> Value {
        json!({
            "name": self.name,
            "units": self.units,
            "activation": self.activation.name(),
            "use_bias": self.use_bias,
            "input_dim": self.input_dim,
        })
    }
}

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

/// 2-D convolution layer (NHWC).
pub struct Conv2D {
    name: String,
    filters: usize,
    kernel_size: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
    activation: Activation,
    use_bias: bool,
    kernel_initializer: Initializer,
    input_shape: Option<[usize; 3]>,
    kernel: Option<Variable>,
    bias: Option<Variable>,
}

impl Conv2D {
    /// A conv layer with `filters` output channels and a square kernel.
    pub fn new(filters: usize, kernel_size: usize) -> Conv2D {
        Conv2D {
            name: unique_name("conv2d"),
            filters,
            kernel_size: (kernel_size, kernel_size),
            strides: (1, 1),
            padding: Padding::Same,
            activation: Activation::Linear,
            use_bias: true,
            kernel_initializer: Initializer::GlorotUniform,
            input_shape: None,
            kernel: None,
            bias: None,
        }
    }

    /// Set strides.
    pub fn with_strides(mut self, s: (usize, usize)) -> Conv2D {
        self.strides = s;
        self
    }

    /// Set padding.
    pub fn with_padding(mut self, p: Padding) -> Conv2D {
        self.padding = p;
        self
    }

    /// Set the activation.
    pub fn with_activation(mut self, a: Activation) -> Conv2D {
        self.activation = a;
        self
    }

    /// Disable the bias term.
    pub fn without_bias(mut self) -> Conv2D {
        self.use_bias = false;
        self
    }

    /// Declare the per-example input shape `[h, w, c]` (first layer).
    pub fn with_input_shape(mut self, shape: [usize; 3]) -> Conv2D {
        self.input_shape = Some(shape);
        self
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> Conv2D {
        self.name = name.into();
        self
    }

    /// Declared input shape, if any.
    pub fn input_shape(&self) -> Option<[usize; 3]> {
        self.input_shape
    }
}

impl Layer for Conv2D {
    fn class_name(&self) -> &'static str {
        "Conv2D"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, engine: &Engine, input_shape: &Shape, seed: u64) -> Result<()> {
        if input_shape.rank() != 3 {
            return Err(Error::shape("Conv2D.build", format!("expected [h,w,c] input, got {input_shape}")));
        }
        let c = input_shape.dim(2);
        let kernel = self.kernel_initializer.init(
            engine,
            [self.kernel_size.0, self.kernel_size.1, c, self.filters],
            seed,
        )?;
        self.kernel = Some(Variable::new(kernel, format!("{}/kernel", self.name)));
        if self.use_bias {
            let bias = Initializer::Zeros.init(engine, [self.filters], seed)?;
            self.bias = Some(Variable::new(bias, format!("{}/bias", self.name)));
        }
        Ok(())
    }

    fn built(&self) -> bool {
        self.kernel.is_some()
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let kernel = require_built(&self.kernel, &self.name)?;
        let bias = self.bias.as_ref().map(Variable::value);
        match self.activation.as_epilogue() {
            Some(act) => ops::fused_conv2d(
                input,
                &kernel.value(),
                bias.as_ref(),
                act,
                self.strides,
                self.padding,
                (1, 1),
            ),
            None => {
                let y = ops::fused_conv2d(
                    input,
                    &kernel.value(),
                    bias.as_ref(),
                    None,
                    self.strides,
                    self.padding,
                    (1, 1),
                )?;
                self.activation.apply(&y)
            }
        }
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        let full = Shape::new(vec![
            1,
            input_shape.dim(0),
            input_shape.dim(1),
            input_shape.dim(2),
        ]);
        let filter = Shape::new(vec![
            self.kernel_size.0,
            self.kernel_size.1,
            input_shape.dim(2),
            self.filters,
        ]);
        let info = webml_core::conv_util::conv2d_info(
            "Conv2D.outputShape",
            &full,
            &filter,
            self.strides,
            self.padding,
            (1, 1),
        )?;
        Ok(Shape::new(vec![info.out_height, info.out_width, info.out_channels]))
    }

    fn weights(&self) -> Vec<(String, Variable)> {
        let mut w = Vec::new();
        if let Some(k) = &self.kernel {
            w.push((format!("{}/kernel", self.name), k.clone()));
        }
        if let Some(b) = &self.bias {
            w.push((format!("{}/bias", self.name), b.clone()));
        }
        w
    }

    fn get_config(&self) -> Value {
        json!({
            "name": self.name,
            "filters": self.filters,
            "kernel_size": [self.kernel_size.0, self.kernel_size.1],
            "strides": [self.strides.0, self.strides.1],
            "padding": padding_name(self.padding),
            "activation": self.activation.name(),
            "use_bias": self.use_bias,
            "input_shape": self.input_shape.map(|s| s.to_vec()),
        })
    }
}

// ---------------------------------------------------------------------------
// DepthwiseConv2D
// ---------------------------------------------------------------------------

/// Depthwise 2-D convolution (the MobileNet building block).
pub struct DepthwiseConv2D {
    name: String,
    kernel_size: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
    depth_multiplier: usize,
    activation: Activation,
    use_bias: bool,
    kernel: Option<Variable>,
    bias: Option<Variable>,
}

impl DepthwiseConv2D {
    /// A depthwise conv with a square kernel.
    pub fn new(kernel_size: usize) -> DepthwiseConv2D {
        DepthwiseConv2D {
            name: unique_name("depthwise_conv2d"),
            kernel_size: (kernel_size, kernel_size),
            strides: (1, 1),
            padding: Padding::Same,
            depth_multiplier: 1,
            activation: Activation::Linear,
            use_bias: true,
            kernel: None,
            bias: None,
        }
    }

    /// Set strides.
    pub fn with_strides(mut self, s: (usize, usize)) -> DepthwiseConv2D {
        self.strides = s;
        self
    }

    /// Set padding.
    pub fn with_padding(mut self, p: Padding) -> DepthwiseConv2D {
        self.padding = p;
        self
    }

    /// Set the activation.
    pub fn with_activation(mut self, a: Activation) -> DepthwiseConv2D {
        self.activation = a;
        self
    }

    /// Disable the bias term.
    pub fn without_bias(mut self) -> DepthwiseConv2D {
        self.use_bias = false;
        self
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> DepthwiseConv2D {
        self.name = name.into();
        self
    }
}

impl Layer for DepthwiseConv2D {
    fn class_name(&self) -> &'static str {
        "DepthwiseConv2D"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, engine: &Engine, input_shape: &Shape, seed: u64) -> Result<()> {
        if input_shape.rank() != 3 {
            return Err(Error::shape("DepthwiseConv2D.build", format!("expected [h,w,c], got {input_shape}")));
        }
        let c = input_shape.dim(2);
        let kernel = Initializer::GlorotUniform.init(
            engine,
            [self.kernel_size.0, self.kernel_size.1, c, self.depth_multiplier],
            seed,
        )?;
        self.kernel = Some(Variable::new(kernel, format!("{}/kernel", self.name)));
        if self.use_bias {
            let bias = Initializer::Zeros.init(engine, [c * self.depth_multiplier], seed)?;
            self.bias = Some(Variable::new(bias, format!("{}/bias", self.name)));
        }
        Ok(())
    }

    fn built(&self) -> bool {
        self.kernel.is_some()
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let kernel = require_built(&self.kernel, &self.name)?;
        let bias = self.bias.as_ref().map(Variable::value);
        match self.activation.as_epilogue() {
            Some(act) => ops::fused_depthwise_conv2d(
                input,
                &kernel.value(),
                bias.as_ref(),
                act,
                self.strides,
                self.padding,
                (1, 1),
            ),
            None => {
                let y = ops::fused_depthwise_conv2d(
                    input,
                    &kernel.value(),
                    bias.as_ref(),
                    None,
                    self.strides,
                    self.padding,
                    (1, 1),
                )?;
                self.activation.apply(&y)
            }
        }
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        let full = Shape::new(vec![1, input_shape.dim(0), input_shape.dim(1), input_shape.dim(2)]);
        let filter = Shape::new(vec![
            self.kernel_size.0,
            self.kernel_size.1,
            input_shape.dim(2),
            self.depth_multiplier,
        ]);
        let info = webml_core::conv_util::depthwise_conv2d_info(
            "DepthwiseConv2D.outputShape",
            &full,
            &filter,
            self.strides,
            self.padding,
            (1, 1),
        )?;
        Ok(Shape::new(vec![info.out_height, info.out_width, info.out_channels]))
    }

    fn weights(&self) -> Vec<(String, Variable)> {
        let mut w = Vec::new();
        if let Some(k) = &self.kernel {
            w.push((format!("{}/kernel", self.name), k.clone()));
        }
        if let Some(b) = &self.bias {
            w.push((format!("{}/bias", self.name), b.clone()));
        }
        w
    }

    fn get_config(&self) -> Value {
        json!({
            "name": self.name,
            "kernel_size": [self.kernel_size.0, self.kernel_size.1],
            "strides": [self.strides.0, self.strides.1],
            "padding": padding_name(self.padding),
            "depth_multiplier": self.depth_multiplier,
            "activation": self.activation.name(),
            "use_bias": self.use_bias,
        })
    }
}

// ---------------------------------------------------------------------------
// Pooling / reshaping / stateless layers
// ---------------------------------------------------------------------------

macro_rules! pooling_layer {
    ($(#[$doc:meta])* $name:ident, $class:literal, $op:path) => {
        $(#[$doc])*
        pub struct $name {
            name: String,
            pool_size: (usize, usize),
            strides: (usize, usize),
            padding: Padding,
        }

        impl $name {
            /// A pooling layer with a square window (stride = window).
            pub fn new(pool_size: usize) -> $name {
                $name {
                    name: unique_name(&$class.to_lowercase()),
                    pool_size: (pool_size, pool_size),
                    strides: (pool_size, pool_size),
                    padding: Padding::Valid,
                }
            }

            /// Set strides.
            pub fn with_strides(mut self, s: (usize, usize)) -> $name {
                self.strides = s;
                self
            }

            /// Set padding.
            pub fn with_padding(mut self, p: Padding) -> $name {
                self.padding = p;
                self
            }

            /// Set the instance name.
            pub fn with_name(mut self, name: impl Into<String>) -> $name {
                self.name = name.into();
                self
            }
        }

        impl Layer for $name {
            fn class_name(&self) -> &'static str {
                $class
            }

            fn name(&self) -> &str {
                &self.name
            }

            fn build(&mut self, _engine: &Engine, _input_shape: &Shape, _seed: u64) -> Result<()> {
                Ok(())
            }

            fn built(&self) -> bool {
                true
            }

            fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
                $op(input, self.pool_size, self.strides, self.padding)
            }

            fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
                let full =
                    Shape::new(vec![1, input_shape.dim(0), input_shape.dim(1), input_shape.dim(2)]);
                let info = webml_core::conv_util::pool2d_info(
                    "Pool.outputShape",
                    &full,
                    self.pool_size,
                    self.strides,
                    self.padding,
                )?;
                Ok(Shape::new(vec![info.out_height, info.out_width, info.out_channels]))
            }

            fn get_config(&self) -> Value {
                json!({
                    "name": self.name,
                    "pool_size": [self.pool_size.0, self.pool_size.1],
                    "strides": [self.strides.0, self.strides.1],
                    "padding": padding_name(self.padding),
                })
            }
        }
    };
}

pooling_layer!(
    /// Max pooling over 2-D windows.
    MaxPooling2D,
    "MaxPooling2D",
    ops::max_pool
);
pooling_layer!(
    /// Average pooling over 2-D windows.
    AveragePooling2D,
    "AveragePooling2D",
    ops::avg_pool
);

/// Global average pooling: `[h, w, c] -> [c]`.
#[derive(Default)]
pub struct GlobalAveragePooling2D {
    name: String,
}

impl GlobalAveragePooling2D {
    /// A global average pooling layer.
    pub fn new() -> GlobalAveragePooling2D {
        GlobalAveragePooling2D { name: unique_name("global_average_pooling2d") }
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> GlobalAveragePooling2D {
        self.name = name.into();
        self
    }
}

impl Layer for GlobalAveragePooling2D {
    fn class_name(&self) -> &'static str {
        "GlobalAveragePooling2D"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, _engine: &Engine, _input_shape: &Shape, _seed: u64) -> Result<()> {
        Ok(())
    }

    fn built(&self) -> bool {
        true
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        ops::global_avg_pool(input)
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        Ok(Shape::new(vec![input_shape.dim(2)]))
    }

    fn get_config(&self) -> Value {
        json!({ "name": self.name })
    }
}

/// Flatten to rank 1 per example.
#[derive(Default)]
pub struct Flatten {
    name: String,
}

impl Flatten {
    /// A flatten layer.
    pub fn new() -> Flatten {
        Flatten { name: unique_name("flatten") }
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> Flatten {
        self.name = name.into();
        self
    }
}

impl Layer for Flatten {
    fn class_name(&self) -> &'static str {
        "Flatten"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, _engine: &Engine, _input_shape: &Shape, _seed: u64) -> Result<()> {
        Ok(())
    }

    fn built(&self) -> bool {
        true
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let batch = input.shape_ref().dim(0);
        ops::reshape(input, vec![batch, input.size() / batch])
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        Ok(Shape::new(vec![input_shape.size()]))
    }

    fn get_config(&self) -> Value {
        json!({ "name": self.name })
    }
}

/// Reshape each example to a target shape.
pub struct ReshapeLayer {
    name: String,
    target: Vec<usize>,
}

impl ReshapeLayer {
    /// Reshape to `target` (per example).
    pub fn new(target: Vec<usize>) -> ReshapeLayer {
        ReshapeLayer { name: unique_name("reshape"), target }
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> ReshapeLayer {
        self.name = name.into();
        self
    }
}

impl Layer for ReshapeLayer {
    fn class_name(&self) -> &'static str {
        "Reshape"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, _engine: &Engine, input_shape: &Shape, _seed: u64) -> Result<()> {
        if input_shape.size() != self.target.iter().product::<usize>() {
            return Err(Error::shape(
                "Reshape.build",
                format!("cannot reshape {input_shape} into {:?}", self.target),
            ));
        }
        Ok(())
    }

    fn built(&self) -> bool {
        true
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let mut dims = vec![input.shape_ref().dim(0)];
        dims.extend_from_slice(&self.target);
        ops::reshape(input, dims)
    }

    fn output_shape(&self, _input_shape: &Shape) -> Result<Shape> {
        Ok(Shape::new(self.target.clone()))
    }

    fn get_config(&self) -> Value {
        json!({ "name": self.name, "target_shape": self.target })
    }
}

/// Inverted dropout, active only while training.
pub struct Dropout {
    name: String,
    rate: f32,
    counter: AtomicU64,
}

impl Dropout {
    /// Dropout with the given rate in `[0, 1)`.
    pub fn new(rate: f32) -> Dropout {
        Dropout { name: unique_name("dropout"), rate, counter: AtomicU64::new(1) }
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> Dropout {
        self.name = name.into();
        self
    }
}

impl Layer for Dropout {
    fn class_name(&self) -> &'static str {
        "Dropout"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, _engine: &Engine, _input_shape: &Shape, _seed: u64) -> Result<()> {
        Ok(())
    }

    fn built(&self) -> bool {
        true
    }

    fn call(&self, input: &Tensor, training: bool) -> Result<Tensor> {
        if !training || self.rate == 0.0 {
            return ops::identity(input);
        }
        let seed = self.counter.fetch_add(1, Ordering::Relaxed);
        ops::dropout(input, self.rate, seed)
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        Ok(input_shape.clone())
    }

    fn get_config(&self) -> Value {
        json!({ "name": self.name, "rate": self.rate })
    }
}

/// A standalone activation layer.
pub struct ActivationLayer {
    name: String,
    activation: Activation,
}

impl ActivationLayer {
    /// Wrap an activation as a layer.
    pub fn new(activation: Activation) -> ActivationLayer {
        ActivationLayer { name: unique_name("activation"), activation }
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> ActivationLayer {
        self.name = name.into();
        self
    }
}

impl Layer for ActivationLayer {
    fn class_name(&self) -> &'static str {
        "Activation"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, _engine: &Engine, _input_shape: &Shape, _seed: u64) -> Result<()> {
        Ok(())
    }

    fn built(&self) -> bool {
        true
    }

    fn call(&self, input: &Tensor, _training: bool) -> Result<Tensor> {
        self.activation.apply(input)
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        Ok(input_shape.clone())
    }

    fn get_config(&self) -> Value {
        json!({ "name": self.name, "activation": self.activation.name() })
    }
}

// ---------------------------------------------------------------------------
// BatchNormalization
// ---------------------------------------------------------------------------

/// Batch normalization over the last axis, with moving statistics.
pub struct BatchNormalization {
    name: String,
    momentum: f32,
    epsilon: f32,
    gamma: Option<Variable>,
    beta: Option<Variable>,
    moving_mean: Option<Variable>,
    moving_variance: Option<Variable>,
}

impl BatchNormalization {
    /// Batch norm with Keras defaults (momentum 0.99, epsilon 1e-3).
    pub fn new() -> BatchNormalization {
        BatchNormalization {
            name: unique_name("batch_normalization"),
            momentum: 0.99,
            epsilon: 1e-3,
            gamma: None,
            beta: None,
            moving_mean: None,
            moving_variance: None,
        }
    }

    /// Set the moving-average momentum.
    pub fn with_momentum(mut self, m: f32) -> BatchNormalization {
        self.momentum = m;
        self
    }

    /// Set the instance name.
    pub fn with_name(mut self, name: impl Into<String>) -> BatchNormalization {
        self.name = name.into();
        self
    }
}

impl Default for BatchNormalization {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for BatchNormalization {
    fn class_name(&self) -> &'static str {
        "BatchNormalization"
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, engine: &Engine, input_shape: &Shape, seed: u64) -> Result<()> {
        let c = input_shape.dim(input_shape.rank() - 1);
        let _ = seed;
        self.gamma = Some(Variable::new(
            Initializer::Ones.init(engine, [c], 0)?,
            format!("{}/gamma", self.name),
        ));
        self.beta = Some(Variable::new(
            Initializer::Zeros.init(engine, [c], 0)?,
            format!("{}/beta", self.name),
        ));
        self.moving_mean = Some(Variable::with_trainable(
            Initializer::Zeros.init(engine, [c], 0)?,
            format!("{}/moving_mean", self.name),
            false,
        ));
        self.moving_variance = Some(Variable::with_trainable(
            Initializer::Ones.init(engine, [c], 0)?,
            format!("{}/moving_variance", self.name),
            false,
        ));
        Ok(())
    }

    fn built(&self) -> bool {
        self.gamma.is_some()
    }

    fn call(&self, input: &Tensor, training: bool) -> Result<Tensor> {
        let gamma = require_built(&self.gamma, &self.name)?.value();
        let beta = require_built(&self.beta, &self.name)?.value();
        let moving_mean = require_built(&self.moving_mean, &self.name)?;
        let moving_var = require_built(&self.moving_variance, &self.name)?;
        if training {
            // Normalize with batch moments over all axes but the last.
            let axes: Vec<isize> = (0..input.rank() as isize - 1).collect();
            let (mean, variance) = ops::moments(input, Some(&axes), false)?;
            let y = ops::batch_norm(input, &mean, &variance, Some(&beta), Some(&gamma), self.epsilon)?;
            // Update moving statistics outside the gradient path.
            let e = input.engine();
            let m = e.scalar(self.momentum)?;
            let one_minus = e.scalar(1.0 - self.momentum)?;
            let new_mean =
                ops::add(&ops::mul(&moving_mean.value(), &m)?, &ops::mul(&mean, &one_minus)?)?;
            let new_var =
                ops::add(&ops::mul(&moving_var.value(), &m)?, &ops::mul(&variance, &one_minus)?)?;
            moving_mean.assign(new_mean)?;
            moving_var.assign(new_var)?;
            Ok(y)
        } else {
            ops::batch_norm(
                input,
                &moving_mean.value(),
                &moving_var.value(),
                Some(&beta),
                Some(&gamma),
                self.epsilon,
            )
        }
    }

    fn output_shape(&self, input_shape: &Shape) -> Result<Shape> {
        Ok(input_shape.clone())
    }

    fn weights(&self) -> Vec<(String, Variable)> {
        [&self.gamma, &self.beta, &self.moving_mean, &self.moving_variance]
            .into_iter()
            .flatten()
            .map(|v| (v.name().to_string(), v.clone()))
            .collect()
    }

    fn get_config(&self) -> Value {
        json!({
            "name": self.name,
            "momentum": self.momentum,
            "epsilon": self.epsilon,
        })
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

fn as_usize(v: &Value, key: &str) -> Result<usize> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|x| x as usize)
        .ok_or_else(|| Error::Serialization { message: format!("missing field {key}") })
}

fn as_pair(v: &Value, key: &str) -> Result<(usize, usize)> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| Error::Serialization { message: format!("missing field {key}") })?;
    Ok((arr[0].as_u64().unwrap_or(1) as usize, arr[1].as_u64().unwrap_or(1) as usize))
}

fn as_activation(v: &Value) -> Activation {
    v.get("activation")
        .and_then(Value::as_str)
        .and_then(Activation::from_name)
        .unwrap_or(Activation::Linear)
}

/// Reconstruct a layer from its Keras-style `(class_name, config)`.
///
/// # Errors
/// Fails on unknown classes or malformed configs.
pub fn layer_from_config(class_name: &str, config: &Value) -> Result<Box<dyn Layer>> {
    let name = config.get("name").and_then(Value::as_str).unwrap_or("layer").to_string();
    let use_bias = config.get("use_bias").and_then(Value::as_bool).unwrap_or(true);
    match class_name {
        "Dense" => {
            let mut l = Dense::new(as_usize(config, "units")?)
                .with_activation(as_activation(config))
                .with_name(name);
            if !use_bias {
                l = l.without_bias();
            }
            if let Some(dim) = config.get("input_dim").and_then(Value::as_u64) {
                l = l.with_input_dim(dim as usize);
            }
            Ok(Box::new(l))
        }
        "Conv2D" => {
            let ks = as_pair(config, "kernel_size")?;
            let mut l = Conv2D::new(as_usize(config, "filters")?, ks.0)
                .with_strides(as_pair(config, "strides")?)
                .with_padding(padding_from_name(
                    config.get("padding").and_then(Value::as_str).unwrap_or("same"),
                )?)
                .with_activation(as_activation(config))
                .with_name(name);
            if !use_bias {
                l = l.without_bias();
            }
            if let Some(arr) = config.get("input_shape").and_then(Value::as_array) {
                if arr.len() == 3 {
                    l = l.with_input_shape([
                        arr[0].as_u64().unwrap_or(1) as usize,
                        arr[1].as_u64().unwrap_or(1) as usize,
                        arr[2].as_u64().unwrap_or(1) as usize,
                    ]);
                }
            }
            Ok(Box::new(l))
        }
        "DepthwiseConv2D" => {
            let ks = as_pair(config, "kernel_size")?;
            let mut l = DepthwiseConv2D::new(ks.0)
                .with_strides(as_pair(config, "strides")?)
                .with_padding(padding_from_name(
                    config.get("padding").and_then(Value::as_str).unwrap_or("same"),
                )?)
                .with_activation(as_activation(config))
                .with_name(name);
            if !use_bias {
                l = l.without_bias();
            }
            Ok(Box::new(l))
        }
        "MaxPooling2D" => {
            let ps = as_pair(config, "pool_size")?;
            Ok(Box::new(
                MaxPooling2D::new(ps.0)
                    .with_strides(as_pair(config, "strides")?)
                    .with_padding(padding_from_name(
                        config.get("padding").and_then(Value::as_str).unwrap_or("valid"),
                    )?)
                    .with_name(name),
            ))
        }
        "AveragePooling2D" => {
            let ps = as_pair(config, "pool_size")?;
            Ok(Box::new(
                AveragePooling2D::new(ps.0)
                    .with_strides(as_pair(config, "strides")?)
                    .with_padding(padding_from_name(
                        config.get("padding").and_then(Value::as_str).unwrap_or("valid"),
                    )?)
                    .with_name(name),
            ))
        }
        "GlobalAveragePooling2D" => Ok(Box::new(GlobalAveragePooling2D::new().with_name(name))),
        "Flatten" => Ok(Box::new(Flatten::new().with_name(name))),
        "Reshape" => {
            let target = config
                .get("target_shape")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_u64).map(|x| x as usize).collect())
                .ok_or_else(|| Error::Serialization { message: "missing target_shape".into() })?;
            Ok(Box::new(ReshapeLayer::new(target).with_name(name)))
        }
        "Dropout" => {
            let rate = config.get("rate").and_then(Value::as_f64).unwrap_or(0.5) as f32;
            Ok(Box::new(Dropout::new(rate).with_name(name)))
        }
        "Activation" => Ok(Box::new(ActivationLayer::new(as_activation(config)).with_name(name))),
        "BatchNormalization" => {
            let momentum = config.get("momentum").and_then(Value::as_f64).unwrap_or(0.99) as f32;
            Ok(Box::new(BatchNormalization::new().with_momentum(momentum).with_name(name)))
        }
        other => Err(Error::Serialization { message: format!("unknown layer class {other}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn dense_forward_and_params() {
        let e = engine();
        let mut l = Dense::new(3);
        l.build(&e, &Shape::new(vec![2]), 1).unwrap();
        assert_eq!(l.count_params(), 2 * 3 + 3);
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let y = l.call(&x, false).unwrap();
        assert_eq!(y.shape(), Shape::new(vec![1, 3]));
    }

    #[test]
    fn dense_requires_rank1_input_shape() {
        let e = engine();
        let mut l = Dense::new(3);
        assert!(l.build(&e, &Shape::new(vec![2, 2]), 1).is_err());
    }

    #[test]
    fn call_before_build_errors() {
        let e = engine();
        let l = Dense::new(3);
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        assert!(l.call(&x, false).is_err());
    }

    #[test]
    fn conv2d_output_shape() {
        let l = Conv2D::new(8, 3).with_strides((2, 2));
        let out = l.output_shape(&Shape::new(vec![16, 16, 3])).unwrap();
        assert_eq!(out, Shape::new(vec![8, 8, 8]));
    }

    #[test]
    fn pooling_and_flatten_shapes() {
        let p = MaxPooling2D::new(2);
        assert_eq!(p.output_shape(&Shape::new(vec![8, 8, 4])).unwrap(), Shape::new(vec![4, 4, 4]));
        let f = Flatten::new();
        assert_eq!(f.output_shape(&Shape::new(vec![4, 4, 4])).unwrap(), Shape::new(vec![64]));
        let g = GlobalAveragePooling2D::new();
        assert_eq!(g.output_shape(&Shape::new(vec![7, 7, 32])).unwrap(), Shape::new(vec![32]));
    }

    #[test]
    fn dropout_inference_is_identity() {
        let e = engine();
        let l = Dropout::new(0.9);
        let x = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        let y = l.call(&x, false).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        let t = l.call(&x, true).unwrap();
        // With rate 0.9 on 3 elements, almost surely some are zeroed.
        let _ = t;
    }

    #[test]
    fn batch_norm_updates_moving_stats_in_training() {
        let e = engine();
        let mut bn = BatchNormalization::new().with_momentum(0.5);
        bn.build(&e, &Shape::new(vec![2]), 0).unwrap();
        let x = e.tensor_2d(&[0.0, 10.0, 4.0, 30.0], 2, 2).unwrap();
        let _ = bn.call(&x, true).unwrap();
        let weights = bn.weights();
        let mm = &weights.iter().find(|(n, _)| n.contains("moving_mean")).unwrap().1;
        let v = mm.value().to_f32_vec().unwrap();
        // Batch means are [2, 20]; moving mean = 0.5*0 + 0.5*[2,20].
        assert!((v[0] - 1.0).abs() < 1e-5);
        assert!((v[1] - 10.0).abs() < 1e-5);
    }

    #[test]
    fn batch_norm_inference_uses_moving_stats() {
        let e = engine();
        let mut bn = BatchNormalization::new();
        bn.build(&e, &Shape::new(vec![1]), 0).unwrap();
        // moving_mean = 0, moving_var = 1: output ~ input.
        let x = e.tensor_2d(&[3.0], 1, 1).unwrap();
        let y = bn.call(&x, false).unwrap();
        assert!((y.to_scalar().unwrap() - 3.0).abs() < 0.01);
    }

    #[test]
    fn config_round_trips() {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(4).with_activation(Activation::Relu).with_input_dim(2)),
            Box::new(Conv2D::new(8, 3).with_strides((2, 2)).without_bias()),
            Box::new(DepthwiseConv2D::new(3)),
            Box::new(MaxPooling2D::new(2)),
            Box::new(AveragePooling2D::new(2)),
            Box::new(GlobalAveragePooling2D::new()),
            Box::new(Flatten::new()),
            Box::new(ReshapeLayer::new(vec![2, 2])),
            Box::new(Dropout::new(0.25)),
            Box::new(ActivationLayer::new(Activation::Softmax)),
            Box::new(BatchNormalization::new()),
        ];
        for l in &layers {
            let rebuilt = layer_from_config(l.class_name(), &l.get_config()).unwrap();
            assert_eq!(rebuilt.class_name(), l.class_name());
            // The config of the rebuilt layer must match (stable round trip).
            assert_eq!(rebuilt.get_config(), l.get_config(), "{}", l.class_name());
        }
        assert!(layer_from_config("LSTM", &json!({})).is_err());
    }
}
