//! # webml-layers
//!
//! The Layers API (paper Sec 3.2): higher-level model building blocks
//! mirroring Keras as closely as possible, including the serialization
//! format — the "two-way door" that lets models move between this library
//! and Keras-style JSON.
//!
//! ```
//! use webml_layers::{Dense, Sequential, Loss, Sgd, FitConfig};
//! use webml_core::global;
//!
//! # fn main() -> webml_core::Result<()> {
//! // Listing 1 of the paper: a linear model with one dense layer.
//! let engine = global::engine();
//! let mut model = Sequential::new(&engine);
//! model.add(Dense::new(1).with_input_dim(1));
//! model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));
//!
//! let xs = engine.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1)?;
//! let ys = engine.tensor_2d(&[1.0, 3.0, 5.0, 7.0], 4, 1)?;
//! model.fit(&xs, &ys, FitConfig { epochs: 100, batch_size: 4, ..Default::default() })?;
//!
//! let x = engine.tensor_2d(&[5.0], 1, 1)?;
//! let y = model.predict(&x)?;
//! assert!((y.to_scalar()? - 9.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod activations;
pub mod initializers;
pub mod layers;
pub mod losses;
pub mod metrics;
pub mod optimizers;
pub mod sequential;

pub use activations::Activation;
pub use initializers::Initializer;
pub use layers::{
    ActivationLayer, AveragePooling2D, BatchNormalization, Conv2D, Dense, DepthwiseConv2D,
    Dropout, Flatten, GlobalAveragePooling2D, Layer, MaxPooling2D, ReshapeLayer,
};
pub use losses::Loss;
pub use metrics::Metric;
pub use optimizers::{Adam, Momentum, Optimizer, RmsProp, Sgd};
pub use sequential::{FitConfig, History, Sequential};
