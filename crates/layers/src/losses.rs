//! Loss functions (mean over the batch).

use serde::{Deserialize, Serialize};
use webml_core::{ops, Result, Tensor};

/// A training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Loss {
    /// Mean of squared errors.
    MeanSquaredError,
    /// Mean of absolute errors.
    MeanAbsoluteError,
    /// Cross entropy between one-hot/probability targets and softmax
    /// probabilities produced by the model.
    CategoricalCrossentropy,
    /// Cross entropy between one-hot targets and raw logits (numerically
    /// stable; apply no softmax in the model's last layer).
    CategoricalCrossentropyFromLogits,
    /// Element-wise binary cross entropy on probabilities.
    BinaryCrossentropy,
    /// Huber loss with delta 1.
    Huber,
}

impl Loss {
    /// Compute the scalar loss: mean over all examples.
    ///
    /// # Errors
    /// Propagates op errors (shape mismatches etc.).
    pub fn compute(self, y_true: &Tensor, y_pred: &Tensor) -> Result<Tensor> {
        match self {
            Loss::MeanSquaredError => {
                ops::mean(&ops::squared_difference(y_true, y_pred)?, None, false)
            }
            Loss::MeanAbsoluteError => {
                ops::mean(&ops::abs(&ops::sub(y_true, y_pred)?)?, None, false)
            }
            Loss::CategoricalCrossentropy => {
                // -mean over batch of sum(y_true * log(clip(y_pred))).
                let eps = y_pred.engine().epsilon();
                let p = ops::clip_by_value(y_pred, eps, 1.0)?;
                let ce = ops::neg(&ops::sum(&ops::mul(y_true, &ops::log(&p)?)?, Some(&[-1]), false)?)?;
                ops::mean(&ce, None, false)
            }
            Loss::CategoricalCrossentropyFromLogits => {
                ops::mean(&ops::softmax_cross_entropy(y_true, y_pred)?, None, false)
            }
            Loss::BinaryCrossentropy => {
                ops::mean(&ops::binary_cross_entropy(y_true, y_pred)?, None, false)
            }
            Loss::Huber => {
                let e = y_pred.engine();
                let one = e.scalar(1.0)?;
                let half = e.scalar(0.5)?;
                let diff = ops::abs(&ops::sub(y_true, y_pred)?)?;
                let quad = ops::mul(&half, &ops::mul(&diff, &diff)?)?;
                let lin = ops::sub(&diff, &half)?;
                let use_quad = ops::less_equal(&diff, &one)?;
                ops::mean(&ops::select(&use_quad, &quad, &lin)?, None, false)
            }
        }
    }

    /// Keras serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Loss::MeanSquaredError => "mean_squared_error",
            Loss::MeanAbsoluteError => "mean_absolute_error",
            Loss::CategoricalCrossentropy => "categorical_crossentropy",
            Loss::CategoricalCrossentropyFromLogits => "categorical_crossentropy_from_logits",
            Loss::BinaryCrossentropy => "binary_crossentropy",
            Loss::Huber => "huber",
        }
    }

    /// Parse a Keras loss name.
    pub fn from_name(name: &str) -> Option<Loss> {
        match name {
            "mean_squared_error" | "meanSquaredError" | "mse" => Some(Loss::MeanSquaredError),
            "mean_absolute_error" | "mae" => Some(Loss::MeanAbsoluteError),
            "categorical_crossentropy" => Some(Loss::CategoricalCrossentropy),
            "categorical_crossentropy_from_logits" => Some(Loss::CategoricalCrossentropyFromLogits),
            "binary_crossentropy" => Some(Loss::BinaryCrossentropy),
            "huber" => Some(Loss::Huber),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::{cpu::CpuBackend, Engine};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn mse_and_mae() {
        let e = engine();
        let t = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let p = e.tensor_1d(&[2.0, 4.0]).unwrap();
        assert!((Loss::MeanSquaredError.compute(&t, &p).unwrap().to_scalar().unwrap() - 2.5).abs() < 1e-6);
        assert!((Loss::MeanAbsoluteError.compute(&t, &p).unwrap().to_scalar().unwrap() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn categorical_xent_perfect_prediction_is_zero() {
        let e = engine();
        let t = e.tensor_2d(&[1.0, 0.0], 1, 2).unwrap();
        let p = e.tensor_2d(&[1.0, 0.0], 1, 2).unwrap();
        let l = Loss::CategoricalCrossentropy.compute(&t, &p).unwrap().to_scalar().unwrap();
        assert!(l.abs() < 1e-5);
    }

    #[test]
    fn from_logits_matches_composed() {
        let e = engine();
        let t = e.tensor_2d(&[0.0, 1.0], 1, 2).unwrap();
        let logits = e.tensor_2d(&[0.3, 1.7], 1, 2).unwrap();
        let a = Loss::CategoricalCrossentropyFromLogits.compute(&t, &logits).unwrap().to_scalar().unwrap();
        let probs = ops::softmax(&logits).unwrap();
        let b = Loss::CategoricalCrossentropy.compute(&t, &probs).unwrap().to_scalar().unwrap();
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn huber_quadratic_near_zero_linear_far() {
        let e = engine();
        let t = e.tensor_1d(&[0.0]).unwrap();
        let near = e.tensor_1d(&[0.5]).unwrap();
        let far = e.tensor_1d(&[10.0]).unwrap();
        let l_near = Loss::Huber.compute(&t, &near).unwrap().to_scalar().unwrap();
        let l_far = Loss::Huber.compute(&t, &far).unwrap().to_scalar().unwrap();
        assert!((l_near - 0.125).abs() < 1e-6);
        assert!((l_far - 9.5).abs() < 1e-6);
    }

    #[test]
    fn names_round_trip() {
        for l in [
            Loss::MeanSquaredError,
            Loss::MeanAbsoluteError,
            Loss::CategoricalCrossentropy,
            Loss::CategoricalCrossentropyFromLogits,
            Loss::BinaryCrossentropy,
            Loss::Huber,
        ] {
            assert_eq!(Loss::from_name(l.name()), Some(l));
        }
    }
}
