//! Gradient-descent optimizers operating on [`Variable`]s.

use serde_json::{json, Value};
use std::collections::HashMap;
use webml_core::{ops, Result, Tensor, Variable};

/// An optimizer applies gradients to trainable variables in place.
pub trait Optimizer: Send {
    /// Identifier (`"sgd"`, `"adam"`, ...).
    fn name(&self) -> &'static str;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Apply one gradient per variable, updating each in place.
    ///
    /// # Errors
    /// Fails when `vars.len() != grads.len()` or on op errors.
    fn apply_gradients(&mut self, vars: &[Variable], grads: &[Tensor]) -> Result<()>;

    /// Serializable configuration.
    fn config(&self) -> Value;
}

fn check_lengths(name: &'static str, vars: &[Variable], grads: &[Tensor]) -> Result<()> {
    if vars.len() != grads.len() {
        return Err(webml_core::Error::invalid(
            name,
            format!("{} variables but {} gradients", vars.len(), grads.len()),
        ));
    }
    Ok(())
}

/// Slot storage: per-variable auxiliary tensors (momenta, second moments),
/// kept alive as non-trainable variables.
#[derive(Default)]
struct Slots {
    map: HashMap<String, Variable>,
}

impl Slots {
    fn get_or_zeros(&mut self, var: &Variable, slot: &str) -> Result<Variable> {
        let key = format!("{}/{slot}", var.name());
        if let Some(v) = self.map.get(&key) {
            return Ok(v.clone());
        }
        let zeros = ops::zeros_like(&var.value())?;
        let v = Variable::with_trainable(zeros, key.clone(), false);
        self.map.insert(key, v.clone());
        Ok(v)
    }
}

/// Plain stochastic gradient descent: `v -= lr * g`.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn apply_gradients(&mut self, vars: &[Variable], grads: &[Tensor]) -> Result<()> {
        check_lengths("sgd", vars, grads)?;
        for (var, grad) in vars.iter().zip(grads) {
            let e = grad.engine();
            let lr = e.scalar(self.lr)?;
            let update = ops::sub(&var.value(), &ops::mul(grad, &lr)?)?;
            var.assign(update)?;
        }
        Ok(())
    }

    fn config(&self) -> Value {
        json!({ "name": "sgd", "learning_rate": self.lr })
    }
}

/// SGD with classical momentum: `m = mu*m + g; v -= lr*m`.
pub struct Momentum {
    lr: f32,
    mu: f32,
    slots: Slots,
}

impl Momentum {
    /// Momentum SGD.
    pub fn new(lr: f32, momentum: f32) -> Momentum {
        Momentum { lr, mu: momentum, slots: Slots::default() }
    }
}

impl Optimizer for Momentum {
    fn name(&self) -> &'static str {
        "momentum"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn apply_gradients(&mut self, vars: &[Variable], grads: &[Tensor]) -> Result<()> {
        check_lengths("momentum", vars, grads)?;
        for (var, grad) in vars.iter().zip(grads) {
            let e = grad.engine();
            let m = self.slots.get_or_zeros(var, "momentum")?;
            let mu = e.scalar(self.mu)?;
            let new_m = ops::add(&ops::mul(&m.value(), &mu)?, grad)?;
            let lr = e.scalar(self.lr)?;
            let update = ops::sub(&var.value(), &ops::mul(&new_m, &lr)?)?;
            m.assign(new_m)?;
            var.assign(update)?;
        }
        Ok(())
    }

    fn config(&self) -> Value {
        json!({ "name": "momentum", "learning_rate": self.lr, "momentum": self.mu })
    }
}

/// RMSProp: `s = rho*s + (1-rho)*g^2; v -= lr * g / (sqrt(s) + eps)`.
pub struct RmsProp {
    lr: f32,
    rho: f32,
    eps: f32,
    slots: Slots,
}

impl RmsProp {
    /// RMSProp with Keras defaults (rho 0.9).
    pub fn new(lr: f32) -> RmsProp {
        RmsProp { lr, rho: 0.9, eps: 1e-7, slots: Slots::default() }
    }
}

impl Optimizer for RmsProp {
    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn apply_gradients(&mut self, vars: &[Variable], grads: &[Tensor]) -> Result<()> {
        check_lengths("rmsprop", vars, grads)?;
        for (var, grad) in vars.iter().zip(grads) {
            let e = grad.engine();
            let s = self.slots.get_or_zeros(var, "rms")?;
            let rho = e.scalar(self.rho)?;
            let one_minus = e.scalar(1.0 - self.rho)?;
            let g2 = ops::mul(grad, grad)?;
            let new_s = ops::add(&ops::mul(&s.value(), &rho)?, &ops::mul(&g2, &one_minus)?)?;
            let eps = e.scalar(self.eps)?;
            let denom = ops::add(&ops::sqrt(&new_s)?, &eps)?;
            let lr = e.scalar(self.lr)?;
            let update = ops::sub(&var.value(), &ops::div(&ops::mul(grad, &lr)?, &denom)?)?;
            s.assign(new_s)?;
            var.assign(update)?;
        }
        Ok(())
    }

    fn config(&self) -> Value {
        json!({ "name": "rmsprop", "learning_rate": self.lr, "rho": self.rho })
    }
}

/// Adam with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    slots: Slots,
}

impl Adam {
    /// Adam with the standard defaults (beta1 0.9, beta2 0.999).
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0, slots: Slots::default() }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn apply_gradients(&mut self, vars: &[Variable], grads: &[Tensor]) -> Result<()> {
        check_lengths("adam", vars, grads)?;
        self.step += 1;
        let t = self.step as f32;
        for (var, grad) in vars.iter().zip(grads) {
            let e = grad.engine();
            let m = self.slots.get_or_zeros(var, "m")?;
            let v = self.slots.get_or_zeros(var, "v")?;
            let b1 = e.scalar(self.beta1)?;
            let b2 = e.scalar(self.beta2)?;
            let one_minus_b1 = e.scalar(1.0 - self.beta1)?;
            let one_minus_b2 = e.scalar(1.0 - self.beta2)?;
            let new_m = ops::add(&ops::mul(&m.value(), &b1)?, &ops::mul(grad, &one_minus_b1)?)?;
            let g2 = ops::mul(grad, grad)?;
            let new_v = ops::add(&ops::mul(&v.value(), &b2)?, &ops::mul(&g2, &one_minus_b2)?)?;
            // Bias-corrected step size.
            let correction =
                (1.0 - self.beta2.powf(t)).sqrt() / (1.0 - self.beta1.powf(t));
            let alpha = e.scalar(self.lr * correction)?;
            let eps = e.scalar(self.eps)?;
            let denom = ops::add(&ops::sqrt(&new_v)?, &eps)?;
            let update = ops::sub(&var.value(), &ops::div(&ops::mul(&new_m, &alpha)?, &denom)?)?;
            m.assign(new_m)?;
            v.assign(new_v)?;
            var.assign(update)?;
        }
        Ok(())
    }

    fn config(&self) -> Value {
        json!({
            "name": "adam",
            "learning_rate": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
        })
    }
}

/// Construct an optimizer from its serialized config.
///
/// # Errors
/// Fails on unknown optimizer names.
pub fn optimizer_from_config(config: &Value) -> Result<Box<dyn Optimizer>> {
    let name = config.get("name").and_then(Value::as_str).unwrap_or("sgd");
    let lr = config.get("learning_rate").and_then(Value::as_f64).unwrap_or(0.01) as f32;
    match name {
        "sgd" => Ok(Box::new(Sgd::new(lr))),
        "momentum" => {
            let mu = config.get("momentum").and_then(Value::as_f64).unwrap_or(0.9) as f32;
            Ok(Box::new(Momentum::new(lr, mu)))
        }
        "rmsprop" => Ok(Box::new(RmsProp::new(lr))),
        "adam" => Ok(Box::new(Adam::new(lr))),
        other => Err(webml_core::Error::Serialization {
            message: format!("unknown optimizer {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::{cpu::CpuBackend, Engine};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn quadratic_step(opt: &mut dyn Optimizer, e: &Engine, steps: usize) -> f32 {
        // Minimize f(x) = x^2 starting at 10.
        let var = Variable::new(e.tensor_1d(&[10.0]).unwrap(), "x");
        for _ in 0..steps {
            let x = var.value();
            let g = e.grad(&x, || ops::sum(&ops::square(&x)?, None, false)).unwrap();
            opt.apply_gradients(std::slice::from_ref(&var), &[g]).unwrap();
        }
        var.value().to_f32_vec().unwrap()[0]
    }

    #[test]
    fn sgd_descends_quadratic() {
        let e = engine();
        let x = quadratic_step(&mut Sgd::new(0.1), &e, 50);
        assert!(x.abs() < 0.01, "x = {x}");
    }

    #[test]
    fn momentum_descends_quadratic() {
        let e = engine();
        let x = quadratic_step(&mut Momentum::new(0.05, 0.9), &e, 80);
        assert!(x.abs() < 0.2, "x = {x}");
    }

    #[test]
    fn rmsprop_descends_quadratic() {
        let e = engine();
        let x = quadratic_step(&mut RmsProp::new(0.5), &e, 100);
        assert!(x.abs() < 0.5, "x = {x}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let e = engine();
        let x = quadratic_step(&mut Adam::new(0.5), &e, 100);
        assert!(x.abs() < 0.5, "x = {x}");
    }

    #[test]
    fn mismatched_lengths_error() {
        let e = engine();
        let var = Variable::new(e.tensor_1d(&[1.0]).unwrap(), "x");
        let mut opt = Sgd::new(0.1);
        assert!(opt.apply_gradients(std::slice::from_ref(&var), &[]).is_err());
    }

    #[test]
    fn config_round_trip() {
        for opt in [
            Box::new(Sgd::new(0.2)) as Box<dyn Optimizer>,
            Box::new(Momentum::new(0.1, 0.8)),
            Box::new(RmsProp::new(0.01)),
            Box::new(Adam::new(0.003)),
        ] {
            let rebuilt = optimizer_from_config(&opt.config()).unwrap();
            assert_eq!(rebuilt.name(), opt.name());
            assert!((rebuilt.learning_rate() - opt.learning_rate()).abs() < 1e-6);
        }
        assert!(optimizer_from_config(&json!({"name": "lbfgs"})).is_err());
    }
}
