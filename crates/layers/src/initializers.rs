//! Weight initializers with Keras semantics and names.

use serde::{Deserialize, Serialize};
use webml_core::{DType, Engine, Result, Shape, Tensor};

/// How layer weights are initialized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Initializer {
    /// All zeros (the bias default).
    Zeros,
    /// All ones (batch-norm gamma).
    Ones,
    /// A constant value.
    Constant(f32),
    /// Uniform in `±sqrt(6 / (fan_in + fan_out))` (the Keras kernel default).
    GlorotUniform,
    /// Normal with `std = sqrt(2 / (fan_in + fan_out))`, truncated.
    GlorotNormal,
    /// Normal with `std = sqrt(2 / fan_in)`, truncated (He).
    HeNormal,
    /// Uniform in `[-limit, limit]`.
    RandomUniform(f32),
    /// Normal with the given std.
    RandomNormal(f32),
}

/// Fan-in/fan-out of a weight shape, per Keras conventions: dense kernels
/// are `[in, out]`; conv kernels `[h, w, in, out]` use the receptive field
/// size as a multiplier.
fn fans(shape: &Shape) -> (f64, f64) {
    let dims = shape.dims();
    match dims.len() {
        0 => (1.0, 1.0),
        1 => (dims[0] as f64, dims[0] as f64),
        2 => (dims[0] as f64, dims[1] as f64),
        _ => {
            let receptive: f64 = dims[..dims.len() - 2].iter().product::<usize>() as f64;
            (receptive * dims[dims.len() - 2] as f64, receptive * dims[dims.len() - 1] as f64)
        }
    }
}

impl Initializer {
    /// Materialize a weight tensor.
    ///
    /// # Errors
    /// Propagates creation-op errors.
    pub fn init(self, engine: &Engine, shape: impl Into<Shape>, seed: u64) -> Result<Tensor> {
        let shape = shape.into();
        let (fan_in, fan_out) = fans(&shape);
        match self {
            Initializer::Zeros => engine.zeros(shape, DType::F32),
            Initializer::Ones => engine.ones(shape, DType::F32),
            Initializer::Constant(v) => engine.fill(shape, v, DType::F32),
            Initializer::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out)).sqrt() as f32;
                engine.rand_uniform(shape, -limit, limit, seed)
            }
            Initializer::GlorotNormal => {
                let std = (2.0 / (fan_in + fan_out)).sqrt() as f32;
                engine.truncated_normal(shape, 0.0, std, seed)
            }
            Initializer::HeNormal => {
                let std = (2.0 / fan_in).sqrt() as f32;
                engine.truncated_normal(shape, 0.0, std, seed)
            }
            Initializer::RandomUniform(limit) => engine.rand_uniform(shape, -limit, limit, seed),
            Initializer::RandomNormal(std) => engine.rand_normal(shape, 0.0, std, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn zeros_ones_constant() {
        let e = engine();
        assert_eq!(
            Initializer::Zeros.init(&e, [2], 0).unwrap().to_f32_vec().unwrap(),
            vec![0.0, 0.0]
        );
        assert_eq!(Initializer::Ones.init(&e, [2], 0).unwrap().to_f32_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(
            Initializer::Constant(0.5).init(&e, [2], 0).unwrap().to_f32_vec().unwrap(),
            vec![0.5, 0.5]
        );
    }

    #[test]
    fn glorot_uniform_respects_limit() {
        let e = engine();
        // fan_in = 100, fan_out = 50: limit = sqrt(6/150) ≈ 0.2.
        let w = Initializer::GlorotUniform.init(&e, [100, 50], 1).unwrap().to_f32_vec().unwrap();
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
        // Spread should fill a good part of the range.
        let max = w.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > limit * 0.8);
    }

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let e = engine();
        let w = Initializer::HeNormal.init(&e, [200, 10], 2).unwrap().to_f32_vec().unwrap();
        let std = (w.iter().map(|v| v * v).sum::<f32>() / w.len() as f32).sqrt();
        let expect = (2.0f32 / 200.0).sqrt();
        assert!((std - expect).abs() < expect * 0.3, "std {std} vs {expect}");
    }

    #[test]
    fn conv_fans_use_receptive_field() {
        let (fi, fo) = fans(&Shape::new(vec![3, 3, 8, 16]));
        assert_eq!(fi, 72.0);
        assert_eq!(fo, 144.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let e = engine();
        let a = Initializer::GlorotUniform.init(&e, [10], 7).unwrap().to_f32_vec().unwrap();
        let b = Initializer::GlorotUniform.init(&e, [10], 7).unwrap().to_f32_vec().unwrap();
        assert_eq!(a, b);
    }
}
