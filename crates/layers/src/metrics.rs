//! Evaluation metrics.

use serde::{Deserialize, Serialize};
use webml_core::{ops, DType, Result, Tensor};

/// A scalar evaluation metric (mean over the batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Metric {
    /// Fraction of examples whose argmax prediction matches the argmax
    /// label (one-hot or probability labels).
    CategoricalAccuracy,
    /// Fraction of examples where `round(pred) == label` (binary tasks).
    BinaryAccuracy,
    /// Mean absolute error.
    MeanAbsoluteError,
    /// Mean squared error.
    MeanSquaredError,
}

impl Metric {
    /// Compute the metric value for a batch.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn compute(self, y_true: &Tensor, y_pred: &Tensor) -> Result<f32> {
        let value = match self {
            Metric::CategoricalAccuracy => {
                let t = ops::argmax(y_true, -1)?;
                let p = ops::argmax(y_pred, -1)?;
                let eq = ops::cast(&ops::equal(&t, &p)?, DType::F32)?;
                ops::mean(&eq, None, false)?
            }
            Metric::BinaryAccuracy => {
                let rounded = ops::round(y_pred)?;
                let eq = ops::cast(&ops::equal(y_true, &rounded)?, DType::F32)?;
                ops::mean(&eq, None, false)?
            }
            Metric::MeanAbsoluteError => ops::mean(&ops::abs(&ops::sub(y_true, y_pred)?)?, None, false)?,
            Metric::MeanSquaredError => {
                ops::mean(&ops::squared_difference(y_true, y_pred)?, None, false)?
            }
        };
        value.to_scalar()
    }

    /// Serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::CategoricalAccuracy => "categorical_accuracy",
            Metric::BinaryAccuracy => "binary_accuracy",
            Metric::MeanAbsoluteError => "mean_absolute_error",
            Metric::MeanSquaredError => "mean_squared_error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::{cpu::CpuBackend, Engine};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn categorical_accuracy_counts_argmax_matches() {
        let e = engine();
        let t = e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        let p = e.tensor_2d(&[0.9, 0.1, 0.8, 0.2], 2, 2).unwrap();
        // First correct, second wrong.
        assert_eq!(Metric::CategoricalAccuracy.compute(&t, &p).unwrap(), 0.5);
    }

    #[test]
    fn binary_accuracy_rounds() {
        let e = engine();
        let t = e.tensor_1d(&[1.0, 0.0, 1.0]).unwrap();
        let p = e.tensor_1d(&[0.9, 0.2, 0.4]).unwrap();
        let acc = Metric::BinaryAccuracy.compute(&t, &p).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn error_metrics() {
        let e = engine();
        let t = e.tensor_1d(&[0.0, 0.0]).unwrap();
        let p = e.tensor_1d(&[3.0, -1.0]).unwrap();
        assert_eq!(Metric::MeanAbsoluteError.compute(&t, &p).unwrap(), 2.0);
        assert_eq!(Metric::MeanSquaredError.compute(&t, &p).unwrap(), 5.0);
    }
}
