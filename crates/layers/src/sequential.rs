//! The `Sequential` model: assemble layers, `compile`, `fit`, `predict`,
//! `evaluate` — the model-level APIs that manage memory internally so users
//! of the Layers API never call `tidy`/`dispose` themselves (paper Sec 3.7).

use crate::layers::{layer_from_config, Layer};
use crate::losses::Loss;
use crate::metrics::Metric;
use crate::optimizers::Optimizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::collections::HashMap;
use webml_core::{ops, DType, Engine, Error, Result, Shape, Tensor, TensorData, Variable};

/// Training configuration for [`Sequential::fit`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle examples each epoch.
    pub shuffle: bool,
    /// Print a line per epoch.
    pub verbose: bool,
    /// Shuffling seed.
    pub seed: u64,
    /// Fraction of the *trailing* examples held out for validation each
    /// epoch (`model.fit({validationSplit})`); 0 disables.
    pub validation_split: f32,
    /// Stop when the monitored loss (validation when split > 0, else
    /// training) has not improved for this many consecutive epochs.
    pub early_stopping_patience: Option<usize>,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            epochs: 1,
            batch_size: 32,
            shuffle: true,
            verbose: false,
            seed: 1,
            validation_split: 0.0,
            early_stopping_patience: None,
        }
    }
}

/// Per-epoch training history returned by [`Sequential::fit`].
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub loss: Vec<f32>,
    /// Validation loss per epoch (when `validation_split > 0`).
    pub val_loss: Vec<f32>,
    /// Metric values per epoch, keyed by metric name.
    pub metrics: HashMap<&'static str, Vec<f32>>,
    /// Whether early stopping cut training short.
    pub stopped_early: bool,
}

struct Compiled {
    loss: Loss,
    optimizer: Box<dyn Optimizer>,
    metrics: Vec<Metric>,
}

/// A linear stack of layers (`tf.sequential()`).
pub struct Sequential {
    engine: Engine,
    name: String,
    layers: Vec<Box<dyn Layer>>,
    input_shape: Option<Shape>,
    compiled: Option<Compiled>,
    seed: u64,
}

impl Sequential {
    /// An empty model on `engine`.
    pub fn new(engine: &Engine) -> Sequential {
        Sequential {
            engine: engine.clone(),
            name: "sequential".into(),
            layers: Vec::new(),
            input_shape: None,
            compiled: None,
            seed: 42,
        }
    }

    /// Set the weight-initialization seed (default 42).
    pub fn with_seed(mut self, seed: u64) -> Sequential {
        self.seed = seed;
        self
    }

    /// Append a layer.
    pub fn add(&mut self, layer: impl Layer + 'static) {
        self.add_boxed(Box::new(layer));
    }

    /// Append an already-boxed layer.
    pub fn add_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// The engine this model runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers (for converters and inspection).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Whether weights have been allocated.
    pub fn built(&self) -> bool {
        self.input_shape.is_some()
    }

    /// Allocate weights for a per-example `input_shape`. Called implicitly
    /// by `fit`/`predict` when the first layer declared its input shape.
    ///
    /// # Errors
    /// Fails on incompatible shapes.
    pub fn build(&mut self, input_shape: impl Into<Shape>) -> Result<()> {
        let input_shape = input_shape.into();
        let mut shape = input_shape.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if !layer.built() {
                layer.build(&self.engine, &shape, self.seed.wrapping_add(i as u64 * 7919))?;
            }
            shape = layer.output_shape(&shape)?;
        }
        self.input_shape = Some(input_shape);
        Ok(())
    }

    fn infer_input_shape(&self, x: &Tensor) -> Shape {
        Shape::new(x.shape_ref().dims()[1..].to_vec())
    }

    fn ensure_built(&mut self, x: &Tensor) -> Result<()> {
        if !self.built() {
            let shape = self.infer_input_shape(x);
            self.build(shape)?;
        }
        Ok(())
    }

    /// Configure loss and optimizer (`model.compile`).
    pub fn compile(&mut self, loss: Loss, optimizer: Box<dyn Optimizer>) {
        self.compile_with_metrics(loss, optimizer, Vec::new());
    }

    /// Configure loss, optimizer and tracked metrics.
    pub fn compile_with_metrics(
        &mut self,
        loss: Loss,
        optimizer: Box<dyn Optimizer>,
        metrics: Vec<Metric>,
    ) {
        self.compiled = Some(Compiled { loss, optimizer, metrics });
    }

    /// Forward pass on a batched input.
    ///
    /// # Errors
    /// Fails when the model has no layers or a layer fails.
    pub fn forward(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(Error::invalid("Sequential.forward", "model has no layers"));
        }
        let mut y = ops::identity(x)?;
        for layer in &self.layers {
            y = layer.call(&y, training)?;
        }
        Ok(y)
    }

    /// Inference (`model.predict`): runs inside a memory scope so all
    /// intermediates are disposed automatically.
    ///
    /// # Errors
    /// Fails on shape errors.
    pub fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.ensure_built(x)?;
        self.engine.clone().tidy(|| self.forward(x, false))
    }

    /// All variables of all layers, in layer order.
    pub fn variables(&self) -> Vec<Variable> {
        self.layers.iter().flat_map(|l| l.weights()).map(|(_, v)| v).collect()
    }

    /// Trainable variables only.
    pub fn trainable_variables(&self) -> Vec<Variable> {
        self.variables().into_iter().filter(|v| v.trainable()).collect()
    }

    /// Total parameter count.
    pub fn count_params(&self) -> usize {
        self.layers.iter().map(|l| l.count_params()).sum()
    }

    /// Train (`model.fit`); memory is managed internally per step.
    ///
    /// # Errors
    /// Fails when not compiled, shapes mismatch, or ops fail.
    pub fn fit(&mut self, x: &Tensor, y: &Tensor, config: FitConfig) -> Result<History> {
        self.ensure_built(x)?;
        if self.compiled.is_none() {
            return Err(Error::invalid("Sequential.fit", "call compile() before fit()"));
        }
        let total = x.shape_ref().dim(0);
        if y.shape_ref().dim(0) != total {
            return Err(Error::shape("Sequential.fit", "x and y batch sizes differ"));
        }
        if !(0.0..1.0).contains(&config.validation_split) {
            return Err(Error::invalid("Sequential.fit", "validation_split must be in [0, 1)"));
        }
        // Hold out the trailing fraction for validation (Keras semantics:
        // the split is taken before shuffling).
        let n_val = ((total as f32) * config.validation_split).round() as usize;
        let n = total - n_val;
        if n == 0 {
            return Err(Error::invalid("Sequential.fit", "validation_split leaves no training data"));
        }
        let (x_val, y_val) = if n_val > 0 {
            let mut begin = vec![0usize; x.rank()];
            begin[0] = n;
            let mut size = x.shape().0;
            size[0] = n_val;
            let xv = ops::slice(x, &begin, &size)?;
            let mut yb = vec![0usize; y.rank()];
            yb[0] = n;
            let mut ys = y.shape().0;
            ys[0] = n_val;
            (Some(xv), Some(ops::slice(y, &yb, &ys)?))
        } else {
            (None, None)
        };
        let batch_size = config.batch_size.max(1).min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut history = History::default();
        let engine = self.engine.clone();
        let mut best_monitored = f32::INFINITY;
        let mut epochs_without_improvement = 0usize;

        'epochs: for epoch in 0..config.epochs {
            // Shuffle the training partition by gathering rows in
            // permuted order.
            let mut order: Vec<i32> = (0..n as i32).collect();
            if config.shuffle {
                order.shuffle(&mut rng);
            }
            let (x_ep, y_ep) = {
                let idx =
                    engine.make_tensor(TensorData::I32(order), Shape::new(vec![n]), DType::I32)?;
                let xg = ops::gather(x, &idx, 0)?;
                let yg = ops::gather(y, &idx, 0)?;
                idx.dispose();
                (xg, yg)
            };

            let mut epoch_loss = 0.0f64;
            let mut metric_sums: Vec<f64> = Vec::new();
            if let Some(c) = &self.compiled {
                metric_sums = vec![0.0; c.metrics.len()];
            }
            let mut seen = 0usize;
            let mut start = 0usize;
            while start < n {
                let size = batch_size.min(n - start);
                let (loss_value, metric_vals) = self.train_step(&x_ep, &y_ep, start, size)?;
                epoch_loss += loss_value as f64 * size as f64;
                for (s, v) in metric_sums.iter_mut().zip(&metric_vals) {
                    *s += *v as f64 * size as f64;
                }
                seen += size;
                start += size;
            }
            x_ep.dispose();
            y_ep.dispose();
            let mean_loss = (epoch_loss / seen as f64) as f32;
            history.loss.push(mean_loss);
            if let Some(c) = &self.compiled {
                for (metric, sum) in c.metrics.iter().zip(&metric_sums) {
                    history
                        .metrics
                        .entry(metric.name())
                        .or_default()
                        .push((*sum / seen as f64) as f32);
                }
            }
            // Validation pass and early stopping.
            let monitored = if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
                let loss_kind = self.compiled.as_ref().expect("checked above").loss;
                let val_loss = engine.tidy(|| -> Result<f32> {
                    let pred = self.forward(xv, false)?;
                    loss_kind.compute(yv, &pred)?.to_scalar()
                })?;
                history.val_loss.push(val_loss);
                val_loss
            } else {
                mean_loss
            };
            if config.verbose {
                match history.val_loss.last() {
                    Some(v) => println!(
                        "epoch {}/{} - loss: {:.6} - val_loss: {:.6}",
                        epoch + 1,
                        config.epochs,
                        mean_loss,
                        v
                    ),
                    None => println!("epoch {}/{} - loss: {:.6}", epoch + 1, config.epochs, mean_loss),
                }
            }
            if let Some(patience) = config.early_stopping_patience {
                if monitored < best_monitored - 1e-7 {
                    best_monitored = monitored;
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                    if epochs_without_improvement > patience {
                        history.stopped_early = true;
                        break 'epochs;
                    }
                }
            }
        }
        if let Some(xv) = x_val {
            xv.dispose();
        }
        if let Some(yv) = y_val {
            yv.dispose();
        }
        Ok(history)
    }

    fn train_step(
        &mut self,
        x_ep: &Tensor,
        y_ep: &Tensor,
        start: usize,
        size: usize,
    ) -> Result<(f32, Vec<f32>)> {
        let engine = self.engine.clone();
        let vars = self.trainable_variables();
        let var_tensors: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let var_refs: Vec<&Tensor> = var_tensors.iter().collect();
        let compiled = self.compiled.as_ref().expect("checked in fit");
        let loss_kind = compiled.loss;
        let metrics = compiled.metrics.clone();

        let (loss_value, metric_vals) = engine.tidy(|| -> Result<(f32, Vec<f32>)> {
            // Slice the batch.
            let mut xb_begin = vec![0usize; x_ep.rank()];
            xb_begin[0] = start;
            let mut xb_size = x_ep.shape().0;
            xb_size[0] = size;
            let xb = ops::slice(x_ep, &xb_begin, &xb_size)?;
            let mut yb_begin = vec![0usize; y_ep.rank()];
            yb_begin[0] = start;
            let mut yb_size = y_ep.shape().0;
            yb_size[0] = size;
            let yb = ops::slice(y_ep, &yb_begin, &yb_size)?;

            // Metric values are extracted inside the gradient scope, while
            // the prediction tensor is still alive.
            let mut metric_vals = Vec::with_capacity(metrics.len());
            let (loss_t, grads) = engine.value_and_grads(&var_refs, || {
                let pred = self.forward(&xb, true)?;
                let loss = loss_kind.compute(&yb, &pred)?;
                for m in &metrics {
                    metric_vals.push(m.compute(&yb, &pred)?);
                }
                Ok(loss)
            })?;
            let loss_value = loss_t.to_scalar()?;
            // Apply the gradients (optimizer mutates variables in place).
            self.compiled
                .as_mut()
                .expect("checked in fit")
                .optimizer
                .apply_gradients(&vars, &grads)?;
            Ok((loss_value, metric_vals))
        })?;
        Ok((loss_value, metric_vals))
    }

    /// Evaluate loss and metrics on held-out data (`model.evaluate`).
    ///
    /// # Errors
    /// Fails when not compiled.
    pub fn evaluate(&mut self, x: &Tensor, y: &Tensor) -> Result<(f32, Vec<f32>)> {
        self.ensure_built(x)?;
        let compiled = self
            .compiled
            .as_ref()
            .ok_or_else(|| Error::invalid("Sequential.evaluate", "call compile() first"))?;
        let loss_kind = compiled.loss;
        let metrics = compiled.metrics.clone();
        let engine = self.engine.clone();
        engine.tidy(|| -> Result<(f32, Vec<f32>)> {
            let pred = self.forward(x, false)?;
            let loss = loss_kind.compute(y, &pred)?.to_scalar()?;
            let mut metric_vals = Vec::with_capacity(metrics.len());
            for m in &metrics {
                metric_vals.push(m.compute(y, &pred)?);
            }
            Ok((loss, metric_vals))
        })
    }

    /// A text summary (layer table with output shapes and param counts).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Model: {}\n", self.name));
        out.push_str("layer                     output shape        params\n");
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            let out_shape = match &shape {
                Some(s) => match layer.output_shape(s) {
                    Ok(o) => {
                        let text = o.to_string();
                        shape = Some(o);
                        text
                    }
                    Err(_) => "?".to_string(),
                },
                None => "?".to_string(),
            };
            out.push_str(&format!(
                "{:<25} {:<19} {}\n",
                format!("{} ({})", layer.name(), layer.class_name()),
                out_shape,
                layer.count_params()
            ));
        }
        out.push_str(&format!("Total params: {}\n", self.count_params()));
        out
    }

    // --- serialization ------------------------------------------------------

    /// Keras-style topology JSON (`model.toJSON()` / `model.json`).
    pub fn to_topology(&self) -> Value {
        json!({
            "class_name": "Sequential",
            "config": {
                "name": self.name,
                "input_shape": self.input_shape.as_ref().map(|s| s.dims().to_vec()),
                "layers": self.layers.iter().map(|l| json!({
                    "class_name": l.class_name(),
                    "config": l.get_config(),
                })).collect::<Vec<_>>(),
            },
        })
    }

    /// Rebuild a model from topology JSON. Weights are allocated (when the
    /// topology records an input shape) but carry fresh initializer values;
    /// use [`Sequential::set_weights_by_name`] to restore trained weights.
    ///
    /// # Errors
    /// Fails on malformed JSON or unknown layer classes.
    pub fn from_topology(engine: &Engine, topology: &Value) -> Result<Sequential> {
        let class = topology.get("class_name").and_then(Value::as_str).unwrap_or_default();
        if class != "Sequential" {
            return Err(Error::Serialization { message: format!("expected Sequential, got {class}") });
        }
        let config = topology
            .get("config")
            .ok_or_else(|| Error::Serialization { message: "missing config".into() })?;
        let mut model = Sequential::new(engine);
        if let Some(name) = config.get("name").and_then(Value::as_str) {
            model.name = name.to_string();
        }
        let layers = config
            .get("layers")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Serialization { message: "missing layers".into() })?;
        for l in layers {
            let class_name = l
                .get("class_name")
                .and_then(Value::as_str)
                .ok_or_else(|| Error::Serialization { message: "layer missing class_name".into() })?;
            let cfg = l
                .get("config")
                .ok_or_else(|| Error::Serialization { message: "layer missing config".into() })?;
            model.add_boxed(layer_from_config(class_name, cfg)?);
        }
        if let Some(dims) = config.get("input_shape").and_then(Value::as_array) {
            let shape: Vec<usize> =
                dims.iter().filter_map(Value::as_u64).map(|d| d as usize).collect();
            model.build(shape)?;
        }
        Ok(model)
    }

    /// Named weights in canonical order.
    pub fn named_weights(&self) -> Vec<(String, Variable)> {
        self.layers.iter().flat_map(|l| l.weights()).collect()
    }

    /// Restore weights by name (from a converter manifest).
    ///
    /// # Errors
    /// Fails when a name is unknown or a shape mismatches.
    pub fn set_weights_by_name(&mut self, weights: &[(String, Tensor)]) -> Result<()> {
        let named: HashMap<String, Variable> = self.named_weights().into_iter().collect();
        for (name, tensor) in weights {
            let var = named.get(name).ok_or_else(|| Error::Serialization {
                message: format!("model has no weight named {name}"),
            })?;
            var.assign(tensor.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations::Activation;
    use crate::layers::{Dense, Dropout, Flatten};
    use crate::optimizers::{Adam, Sgd};
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn listing1_linear_regression() {
        // Listing 1 of the paper: one dense unit, sgd + mse, y = 2x - 1.
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(1).with_input_dim(1));
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));
        let xs = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1).unwrap();
        let ys = e.tensor_2d(&[1.0, 3.0, 5.0, 7.0], 4, 1).unwrap();
        let history = model
            .fit(&xs, &ys, FitConfig { epochs: 150, batch_size: 4, ..Default::default() })
            .unwrap();
        assert!(history.loss[0] > *history.loss.last().unwrap());
        let x = e.tensor_2d(&[5.0], 1, 1).unwrap();
        let pred = model.predict(&x).unwrap().to_scalar().unwrap();
        assert!((pred - 9.0).abs() < 0.3, "prediction {pred}");
    }

    #[test]
    fn fit_requires_compile() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(1).with_input_dim(1));
        let xs = e.tensor_2d(&[1.0], 1, 1).unwrap();
        assert!(model.fit(&xs, &xs, FitConfig::default()).is_err());
    }

    #[test]
    fn xor_with_hidden_layer() {
        let e = engine();
        let mut model = Sequential::new(&e).with_seed(7);
        model.add(Dense::new(8).with_input_dim(2).with_activation(Activation::Tanh));
        model.add(Dense::new(1).with_activation(Activation::Sigmoid));
        model.compile(Loss::MeanSquaredError, Box::new(Adam::new(0.1)));
        let xs = e.tensor_2d(&[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], 4, 2).unwrap();
        let ys = e.tensor_2d(&[0.0, 1.0, 1.0, 0.0], 4, 1).unwrap();
        model
            .fit(&xs, &ys, FitConfig { epochs: 200, batch_size: 4, ..Default::default() })
            .unwrap();
        let pred = model.predict(&xs).unwrap().to_f32_vec().unwrap();
        assert!(pred[0] < 0.3 && pred[3] < 0.3, "{pred:?}");
        assert!(pred[1] > 0.7 && pred[2] > 0.7, "{pred:?}");
    }

    #[test]
    fn fit_does_not_leak_tensors() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(4).with_input_dim(3).with_activation(Activation::Relu));
        model.add(Dense::new(2));
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.01)));
        let xs = e.rand_uniform([16, 3], -1.0, 1.0, 1).unwrap();
        let ys = e.rand_uniform([16, 2], -1.0, 1.0, 2).unwrap();
        model.fit(&xs, &ys, FitConfig { epochs: 1, batch_size: 8, ..Default::default() }).unwrap();
        let baseline = e.num_tensors();
        model.fit(&xs, &ys, FitConfig { epochs: 3, batch_size: 8, ..Default::default() }).unwrap();
        // Steady state: no growth across epochs (model-level APIs manage
        // memory internally, paper Sec 3.7).
        assert_eq!(e.num_tensors(), baseline);
    }

    #[test]
    fn evaluate_returns_loss_and_metrics() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(2).with_input_dim(2).with_activation(Activation::Softmax));
        model.compile_with_metrics(
            Loss::CategoricalCrossentropy,
            Box::new(Sgd::new(0.1)),
            vec![Metric::CategoricalAccuracy],
        );
        let xs = e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        let ys = e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        let (loss, metrics) = model.evaluate(&xs, &ys).unwrap();
        assert!(loss.is_finite());
        assert_eq!(metrics.len(), 1);
    }

    #[test]
    fn summary_and_params() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(4).with_input_dim(3));
        model.add(Dense::new(2));
        model.build([3]).unwrap();
        assert_eq!(model.count_params(), (3 * 4 + 4) + (4 * 2 + 2));
        let s = model.summary();
        assert!(s.contains("Dense"));
        assert!(s.contains("Total params: 26"));
    }

    #[test]
    fn topology_round_trip_preserves_structure() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(4).with_input_dim(3).with_activation(Activation::Relu));
        model.add(Dropout::new(0.5));
        model.add(Flatten::new());
        model.add(Dense::new(2).with_activation(Activation::Softmax));
        model.build([3]).unwrap();
        let topo = model.to_topology();
        let rebuilt = Sequential::from_topology(&e, &topo).unwrap();
        assert_eq!(rebuilt.len(), 4);
        assert!(rebuilt.built());
        assert_eq!(rebuilt.count_params(), model.count_params());
        assert_eq!(rebuilt.to_topology(), topo);
    }

    #[test]
    fn weights_transfer_reproduces_predictions() {
        let e = engine();
        let mut model = Sequential::new(&e).with_seed(3);
        model.add(Dense::new(4).with_input_dim(2).with_activation(Activation::Tanh));
        model.add(Dense::new(1));
        model.build([2]).unwrap();
        let x = e.tensor_2d(&[0.3, -0.7], 1, 2).unwrap();
        let expect = model.predict(&x).unwrap().to_f32_vec().unwrap();
        // Serialize topology + weights into a fresh model.
        let topo = model.to_topology();
        let weights: Vec<(String, Tensor)> =
            model.named_weights().into_iter().map(|(n, v)| (n, v.value())).collect();
        let mut restored = Sequential::from_topology(&e, &topo).unwrap();
        restored.set_weights_by_name(&weights).unwrap();
        let got = restored.predict(&x).unwrap().to_f32_vec().unwrap();
        assert_eq!(got, expect);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::activations::Activation;
    use crate::layers::Dense;
    use crate::optimizers::{Adam, Sgd};
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn validation_split_reports_val_loss() {
        let e = engine();
        let mut model = Sequential::new(&e).with_seed(9);
        model.add(Dense::new(4).with_input_dim(1).with_activation(Activation::Tanh));
        model.add(Dense::new(1));
        model.compile(Loss::MeanSquaredError, Box::new(Adam::new(0.05)));
        let xs = e.rand_uniform([40, 1], -1.0, 1.0, 1).unwrap();
        let two = e.scalar(2.0).unwrap();
        let ys = ops::mul(&xs, &two).unwrap();
        let history = model
            .fit(
                &xs,
                &ys,
                FitConfig { epochs: 10, batch_size: 8, validation_split: 0.25, ..Default::default() },
            )
            .unwrap();
        assert_eq!(history.val_loss.len(), 10);
        assert!(
            history.val_loss.last().unwrap() < &history.val_loss[0],
            "val loss should improve: {:?}",
            history.val_loss
        );
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let e = engine();
        let mut model = Sequential::new(&e).with_seed(2);
        model.add(Dense::new(1).with_input_dim(1));
        // Learning rate 0: the loss can never improve, so patience triggers
        // immediately after `patience + 1` epochs.
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.0)));
        let xs = e.rand_uniform([16, 1], -1.0, 1.0, 3).unwrap();
        let ys = e.rand_uniform([16, 1], -1.0, 1.0, 4).unwrap();
        let history = model
            .fit(
                &xs,
                &ys,
                FitConfig {
                    epochs: 50,
                    batch_size: 8,
                    early_stopping_patience: Some(2),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(history.stopped_early);
        assert!(history.loss.len() < 50, "stopped after {} epochs", history.loss.len());
    }

    #[test]
    fn bad_validation_split_errors() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(1).with_input_dim(1));
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.1)));
        let xs = e.rand_uniform([4, 1], -1.0, 1.0, 1).unwrap();
        let bad = FitConfig { validation_split: 1.5, ..Default::default() };
        assert!(model.fit(&xs, &xs, bad).is_err());
    }
}
