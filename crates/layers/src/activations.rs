//! Activation functions, by Keras name.

use serde::{Deserialize, Serialize};
use webml_core::backend::UnaryOp;
use webml_core::{ops, Result, Tensor};

/// An activation function applied element-wise (softmax: over the last
/// axis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Activation {
    /// Identity.
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// ReLU capped at 6 (MobileNet's activation).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the last axis.
    Softmax,
    /// Exponential linear unit.
    Elu,
    /// Scaled ELU.
    Selu,
    /// Softplus.
    Softplus,
    /// Leaky ReLU with slope 0.2.
    LeakyRelu,
}

impl Activation {
    /// Apply the activation.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn apply(self, x: &Tensor) -> Result<Tensor> {
        match self {
            Activation::Linear => ops::identity(x),
            Activation::Relu => ops::relu(x),
            Activation::Relu6 => ops::relu6(x),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::Tanh => ops::tanh(x),
            Activation::Softmax => ops::softmax(x),
            Activation::Elu => ops::elu(x),
            Activation::Selu => ops::selu(x),
            Activation::Softplus => ops::softplus(x),
            Activation::LeakyRelu => ops::leaky_relu(x, 0.2),
        }
    }

    /// How this activation participates in a fused kernel epilogue:
    /// `Some(None)` means fusable with no activation step (identity),
    /// `Some(Some(op))` means fusable as the element-wise `op`, and `None`
    /// means not expressible as an element-wise epilogue (softmax normalizes
    /// across an axis, so only the bias add can fuse).
    pub fn as_epilogue(self) -> Option<Option<UnaryOp>> {
        match self {
            Activation::Linear => Some(None),
            Activation::Relu => Some(Some(UnaryOp::Relu)),
            Activation::Relu6 => Some(Some(UnaryOp::Relu6)),
            Activation::Sigmoid => Some(Some(UnaryOp::Sigmoid)),
            Activation::Tanh => Some(Some(UnaryOp::Tanh)),
            Activation::Softmax => None,
            Activation::Elu => Some(Some(UnaryOp::Elu)),
            Activation::Selu => Some(Some(UnaryOp::Selu)),
            Activation::Softplus => Some(Some(UnaryOp::Softplus)),
            Activation::LeakyRelu => Some(Some(UnaryOp::LeakyRelu(0.2))),
        }
    }

    /// Keras serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Relu6 => "relu6",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softmax => "softmax",
            Activation::Elu => "elu",
            Activation::Selu => "selu",
            Activation::Softplus => "softplus",
            Activation::LeakyRelu => "leaky_relu",
        }
    }

    /// Parse a Keras activation name.
    pub fn from_name(name: &str) -> Option<Activation> {
        match name {
            "linear" => Some(Activation::Linear),
            "relu" => Some(Activation::Relu),
            "relu6" => Some(Activation::Relu6),
            "sigmoid" => Some(Activation::Sigmoid),
            "tanh" => Some(Activation::Tanh),
            "softmax" => Some(Activation::Softmax),
            "elu" => Some(Activation::Elu),
            "selu" => Some(Activation::Selu),
            "softplus" => Some(Activation::Softplus),
            "leaky_relu" => Some(Activation::LeakyRelu),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::{cpu::CpuBackend, Engine};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn names_round_trip() {
        for a in [
            Activation::Linear,
            Activation::Relu,
            Activation::Relu6,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Softmax,
            Activation::Elu,
            Activation::Selu,
            Activation::Softplus,
            Activation::LeakyRelu,
        ] {
            assert_eq!(Activation::from_name(a.name()), Some(a));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }

    #[test]
    fn softmax_normalizes_rows() {
        let e = engine();
        let x = e.tensor_2d(&[1.0, 2.0, 0.0, 0.0], 2, 2).unwrap();
        let y = Activation::Softmax.apply(&x).unwrap().to_f32_vec().unwrap();
        assert!((y[0] + y[1] - 1.0).abs() < 1e-6);
        assert!((y[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn relu_applies() {
        let e = engine();
        let x = e.tensor_1d(&[-1.0, 2.0]).unwrap();
        assert_eq!(Activation::Relu.apply(&x).unwrap().to_f32_vec().unwrap(), vec![0.0, 2.0]);
    }
}
