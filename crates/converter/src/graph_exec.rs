//! A GraphDef executor: runs (pruned) TensorFlow-style inference graphs on
//! the eager engine — the "load and execute pre-trained TensorFlow
//! SavedModels" path of paper Sec 5.1.
//!
//! Supports the op set the converter emits for the models this repo
//! reproduces (dense/conv image classifiers): placeholders, constants,
//! matmul, bias/arithmetic, activations, conv/pool, reshape, softmax.
//!
//! On load the graph is run through a pattern-matching fusion pass:
//! `MatMul`/`Conv2D`/`DepthwiseConv2dNative` followed by a single-consumer
//! bias add and activation collapse into one `_Fused*` node, and runs of
//! adjacent single-consumer element-wise ops collapse into one
//! `_FusedElementwise` chain — each dispatching a single fused device
//! kernel at execution time. Fetching a node that fusion swallowed
//! transparently falls back to the unfused graph.

use crate::plan::{PendingFetches, Plan};
use crate::prune::{GraphDef, NodeDef};
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use webml_core::backend::{BinaryOp, UnaryOp};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine, Error, FusedStep, Result, Shape, Tensor};

/// Key of a cached plan: the sorted `(placeholder, dims)` feed signature
/// plus the fetch list.
type PlanKey = (Vec<(String, Vec<usize>)>, Vec<String>);

/// Shape-keyed plan cache; cleared whenever the engine's degradation
/// generation moves (context loss → plans rebuild on the fallback backend).
struct PlanCache {
    generation: u64,
    entries: HashMap<PlanKey, Arc<Plan>>,
}

/// Plan-cache counters for one model (see [`GraphModel::plan_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Executions served by a cached plan.
    pub hits: u64,
    /// Plans compiled (cold signature or post-invalidation).
    pub misses: u64,
    /// Whole-cache invalidations after a backend degradation.
    pub invalidations: u64,
    /// Executions that fell back to the interpreter (plan build failed or
    /// a gradient tape was recording).
    pub fallbacks: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// Cached handles to the process-wide plan telemetry metrics, resolved once
/// so the per-call path never touches the registry lock.
struct PlanMetrics {
    hits: Arc<webml_telemetry::Counter>,
    misses: Arc<webml_telemetry::Counter>,
    invalidations: Arc<webml_telemetry::Counter>,
    fallbacks: Arc<webml_telemetry::Counter>,
    peak_bytes: Arc<webml_telemetry::Gauge>,
}

fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics {
        hits: webml_telemetry::counter("plan.cache_hits_total"),
        misses: webml_telemetry::counter("plan.cache_misses_total"),
        invalidations: webml_telemetry::counter("plan.invalidations_total"),
        fallbacks: webml_telemetry::counter("plan.fallbacks_total"),
        peak_bytes: webml_telemetry::gauge("plan.predicted_peak_bytes"),
    })
}

/// A loaded, executable inference graph.
pub struct GraphModel {
    engine: Engine,
    graph: GraphDef,
    /// The graph after the kernel-fusion pass (used unless a fetch names a
    /// node that fusion eliminated).
    fused: GraphDef,
    /// Values for `Const`/`VariableV2` nodes, by node name.
    weights: HashMap<String, Tensor>,
    order: Vec<usize>,
    fused_order: Vec<usize>,
    /// Names surviving fusion, precomputed once — the per-call
    /// "can the fused graph serve these fetches?" check is O(fetches)
    /// instead of O(fetches × nodes).
    fused_names: HashSet<String>,
    plans: Mutex<PlanCache>,
    planning: AtomicBool,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_invalidations: AtomicU64,
    plan_fallbacks: AtomicU64,
}

pub(crate) fn attr_str<'a>(node: &'a NodeDef, key: &str) -> Option<&'a str> {
    node.attrs.get(key).and_then(Value::as_str)
}

pub(crate) fn attr_pair(node: &NodeDef, key: &str, default: (usize, usize)) -> (usize, usize) {
    node.attrs
        .get(key)
        .and_then(Value::as_array)
        .map(|a| {
            (
                a.first().and_then(Value::as_u64).unwrap_or(default.0 as u64) as usize,
                a.get(1).and_then(Value::as_u64).unwrap_or(default.1 as u64) as usize,
            )
        })
        .unwrap_or(default)
}

pub(crate) fn attr_padding(node: &NodeDef) -> Result<Padding> {
    match attr_str(node, "padding").unwrap_or("SAME") {
        "SAME" | "same" => Ok(Padding::Same),
        "VALID" | "valid" => Ok(Padding::Valid),
        other => Err(Error::Serialization { message: format!("unknown padding {other}") }),
    }
}

/// Decode the optional bias input and activation of a `_Fused*` node.
fn fused_epilogue_args<'a>(
    node: &NodeDef,
    get: &impl Fn(usize) -> Result<&'a Tensor>,
) -> Result<(Option<&'a Tensor>, Option<UnaryOp>)> {
    let has_bias = node.attrs.get("has_bias").and_then(Value::as_bool).unwrap_or(false);
    let bias = if has_bias { Some(get(2)?) } else { None };
    let act = match attr_str(node, "activation") {
        Some(name) => Some(fusable_unary(name).ok_or_else(|| Error::Serialization {
            message: format!("unknown fused activation {name}"),
        })?),
        None => None,
    };
    Ok((bias, act))
}

/// Decode the `steps` attr of a `_FusedElementwise` node.
pub(crate) fn parse_steps(node: &NodeDef) -> Result<Vec<FusedStep>> {
    let malformed = || Error::Serialization {
        message: format!("_FusedElementwise {} has a malformed steps attr", node.name),
    };
    let arr = node.attrs.get("steps").and_then(Value::as_array).ok_or_else(malformed)?;
    arr.iter()
        .map(|s| {
            let parts = s.as_array().ok_or_else(malformed)?;
            let name = parts.first().and_then(Value::as_str).ok_or_else(malformed)?;
            if let Some(u) = fusable_unary(name) {
                Ok(FusedStep::Unary(u))
            } else if let Some(b) = fusable_binary(name) {
                let idx = parts.get(1).and_then(Value::as_u64).ok_or_else(malformed)? as usize;
                Ok(FusedStep::Binary(b, idx))
            } else {
                Err(malformed())
            }
        })
        .collect()
}

/// Kahn topological sort (GraphDefs are not guaranteed ordered).
fn toposort(graph: &GraphDef) -> Result<Vec<usize>> {
    let index: HashMap<&str, usize> =
        graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
    let mut indegree = vec![0usize; graph.nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        for input in &node.inputs {
            let clean = input.trim_start_matches('^');
            let &j = index.get(clean).ok_or_else(|| Error::Serialization {
                message: format!("node {} references unknown input {clean}", node.name),
            })?;
            indegree[i] += 1;
            dependents[j].push(i);
        }
    }
    let mut queue: Vec<usize> = (0..graph.nodes.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(graph.nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != graph.nodes.len() {
        return Err(Error::Serialization { message: "graph contains a cycle".into() });
    }
    Ok(order)
}

/// Resolve a `Reshape` node's `shape` attr against its input shape:
/// a leading `0` keeps the batch dim and a single `-1` wildcard is inferred
/// from the input element count (TensorFlow semantics).
///
/// # Errors
/// Fails on a missing/non-integer attr, more than one `-1`, other negative
/// dims, or a wildcard the element count cannot divide into.
pub(crate) fn resolve_reshape_dims(node: &NodeDef, input: &Shape) -> Result<Vec<usize>> {
    let attr = node.attrs.get("shape").and_then(Value::as_array).ok_or_else(|| {
        Error::Serialization { message: format!("Reshape {} missing shape attr", node.name) }
    })?;
    let raw: Vec<i64> = attr.iter().filter_map(Value::as_i64).collect();
    if raw.len() != attr.len() {
        return Err(Error::Serialization {
            message: format!("Reshape {} has a non-integer dim in its shape attr", node.name),
        });
    }
    let mut dims: Vec<usize> = Vec::with_capacity(raw.len());
    let mut wildcard: Option<usize> = None;
    for (i, &d) in raw.iter().enumerate() {
        if d == -1 {
            if wildcard.is_some() {
                return Err(Error::shape(
                    "Reshape",
                    format!("{} has more than one -1 wildcard dim", node.name),
                ));
            }
            wildcard = Some(i);
            dims.push(1);
        } else if d == 0 && i == 0 {
            // A leading 0 means "keep the batch dim".
            dims.push(input.dim(0));
        } else if d < 0 {
            return Err(Error::shape(
                "Reshape",
                format!("{} has a negative dim {d} (only -1 is allowed)", node.name),
            ));
        } else {
            dims.push(d as usize);
        }
    }
    if let Some(w) = wildcard {
        let known: usize =
            dims.iter().enumerate().filter(|&(i, _)| i != w).map(|(_, &d)| d).product();
        let total = input.size();
        if known == 0 || !total.is_multiple_of(known) {
            return Err(Error::shape(
                "Reshape",
                format!(
                    "{}: cannot infer -1 dim ({} elements do not divide into {:?})",
                    node.name, total, raw
                ),
            ));
        }
        dims[w] = total / known;
    }
    Ok(dims)
}

pub(crate) fn fusable_unary(op: &str) -> Option<UnaryOp> {
    match op {
        "Relu" => Some(UnaryOp::Relu),
        "Relu6" => Some(UnaryOp::Relu6),
        "Sigmoid" => Some(UnaryOp::Sigmoid),
        "Tanh" => Some(UnaryOp::Tanh),
        _ => None,
    }
}

fn fusable_binary(op: &str) -> Option<BinaryOp> {
    match op {
        "Add" | "AddV2" | "BiasAdd" => Some(BinaryOp::Add),
        "Sub" => Some(BinaryOp::Sub),
        "Mul" => Some(BinaryOp::Mul),
        "RealDiv" | "Div" => Some(BinaryOp::Div),
        _ => None,
    }
}

fn unary_name(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Relu => "Relu",
        UnaryOp::Relu6 => "Relu6",
        UnaryOp::Sigmoid => "Sigmoid",
        UnaryOp::Tanh => "Tanh",
        _ => "Relu",
    }
}

fn binary_name(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "Add",
        BinaryOp::Sub => "Sub",
        BinaryOp::Mul => "Mul",
        BinaryOp::Div => "Div",
        _ => "Add",
    }
}

/// The kernel-fusion pass: collapse matmul/conv → bias-add → activation
/// triples into one `_Fused*` node, then collapse remaining runs of
/// single-consumer element-wise ops into `_FusedElementwise` chains. Fused
/// nodes take the NAME of the last node they replace, so downstream input
/// references stay valid; swallowed intermediates disappear from the graph.
fn fuse_graph(graph: &GraphDef, weights: &HashMap<String, Tensor>) -> GraphDef {
    let index: HashMap<&str, usize> =
        graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
    // Consumer lists; nodes with control inputs never participate in fusion.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    let mut has_control = vec![false; graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        for input in &node.inputs {
            if input.starts_with('^') {
                has_control[i] = true;
            }
            if let Some(&j) = index.get(input.trim_start_matches('^')) {
                consumers[j].push(i);
            }
        }
    }
    let sole_consumer = |i: usize| -> Option<usize> {
        match consumers[i].as_slice() {
            [c] if !has_control[*c] => Some(*c),
            _ => None,
        }
    };
    // Whether a node is a rank-1 weight (a valid fused-kernel bias).
    let is_bias = |name: &str| weights.get(name).map(|t| t.rank() == 1).unwrap_or(false);

    let mut swallowed: HashSet<usize> = HashSet::new();
    let mut replacement: HashMap<usize, NodeDef> = HashMap::new();

    // Pass A: matmul/conv epilogues.
    for (i, node) in graph.nodes.iter().enumerate() {
        let fused_op = match node.op.as_str() {
            "MatMul" => "_FusedMatMul",
            "Conv2D" => "_FusedConv2D",
            "DepthwiseConv2dNative" => "_FusedDepthwiseConv2dNative",
            _ => continue,
        };
        if has_control[i] {
            continue;
        }
        // Optional bias add: sole consumer, this node as lhs, rank-1 weight
        // as rhs (the fused kernels require a `[channels]` bias).
        let mut last = i;
        let mut bias: Option<&str> = None;
        if let Some(c) = sole_consumer(i) {
            let cn = &graph.nodes[c];
            if matches!(cn.op.as_str(), "BiasAdd" | "Add" | "AddV2")
                && cn.inputs.len() == 2
                && cn.inputs[0] == node.name
                && is_bias(&cn.inputs[1])
            {
                bias = Some(cn.inputs[1].as_str());
                last = c;
            }
        }
        // Optional activation on whatever the chain currently ends at.
        let mut activation: Option<&str> = None;
        if let Some(a) = sole_consumer(last) {
            let an = &graph.nodes[a];
            if fusable_unary(&an.op).is_some() && an.inputs[0] == graph.nodes[last].name {
                activation = Some(an.op.as_str());
                last = a;
            }
        }
        if last == i {
            continue; // Nothing to fuse into this kernel.
        }
        let mut inputs = node.inputs.clone();
        if let Some(b) = bias {
            inputs.push(b.to_string());
        }
        let mut attrs = if node.attrs.is_object() { node.attrs.clone() } else { json!({}) };
        if let Value::Object(entries) = &mut attrs {
            entries.push(("has_bias".to_string(), json!(bias.is_some())));
            if let Some(act) = activation {
                entries.push(("activation".to_string(), json!(act)));
            }
        }
        // Mark every member between i and last as swallowed except `last`,
        // which carries the fused node (so downstream names resolve).
        let mut member = i;
        while member != last {
            swallowed.insert(member);
            member = sole_consumer(member).expect("chain member has sole consumer");
        }
        replacement.insert(
            last,
            NodeDef { name: graph.nodes[last].name.clone(), op: fused_op.to_string(), inputs, attrs },
        );
    }

    // Pass B: element-wise chains over nodes not already part of a fusion.
    let in_fusion =
        |i: usize, swallowed: &HashSet<usize>, replacement: &HashMap<usize, NodeDef>| {
            swallowed.contains(&i) || replacement.contains_key(&i)
        };
    for (i, node) in graph.nodes.iter().enumerate() {
        if in_fusion(i, &swallowed, &replacement) || has_control[i] {
            continue;
        }
        let head_step = fusable_unary(&node.op).is_some()
            || (fusable_binary(&node.op).is_some() && node.inputs.len() == 2);
        if !head_step {
            continue;
        }
        // Only start a chain at its head: the producer of input 0 must not
        // itself be a chain candidate about to swallow this node.
        if let Some(&p) = index.get(node.inputs[0].trim_start_matches('^')) {
            let pn = &graph.nodes[p];
            let p_fusable = !in_fusion(p, &swallowed, &replacement)
                && !has_control[p]
                && (fusable_unary(&pn.op).is_some()
                    || (fusable_binary(&pn.op).is_some() && pn.inputs.len() == 2))
                && sole_consumer(p) == Some(i);
            if p_fusable {
                continue;
            }
        }
        // Greedily extend the chain downstream.
        let mut members = vec![i];
        let mut last = i;
        while let Some(c) = sole_consumer(last) {
            if in_fusion(c, &swallowed, &replacement) || has_control[c] {
                break;
            }
            let cn = &graph.nodes[c];
            let ok = (fusable_unary(&cn.op).is_some()
                || (fusable_binary(&cn.op).is_some() && cn.inputs.len() == 2))
                && cn.inputs[0] == graph.nodes[last].name;
            if !ok {
                break;
            }
            members.push(c);
            last = c;
        }
        if members.len() < 2 {
            continue;
        }
        let mut inputs = vec![node.inputs[0].clone()];
        let mut steps = Vec::new();
        for &m in &members {
            let mn = &graph.nodes[m];
            if let Some(u) = fusable_unary(&mn.op) {
                steps.push(json!([unary_name(u)]));
            } else {
                let b = fusable_binary(&mn.op).expect("checked fusable");
                inputs.push(mn.inputs[1].clone());
                steps.push(json!([binary_name(b), inputs.len() - 2]));
            }
        }
        for &m in &members {
            if m != last {
                swallowed.insert(m);
            }
        }
        replacement.insert(
            last,
            NodeDef {
                name: graph.nodes[last].name.clone(),
                op: "_FusedElementwise".to_string(),
                inputs,
                attrs: json!({ "steps": steps }),
            },
        );
    }

    GraphDef {
        nodes: graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !swallowed.contains(i))
            .map(|(i, n)| replacement.remove(&i).unwrap_or_else(|| n.clone()))
            .collect(),
    }
}

impl GraphModel {
    /// Build an executable model from a graph and its weight values. The
    /// graph is additionally run through the kernel-fusion pass; execution
    /// uses the fused graph whenever the requested fetches survive fusion.
    ///
    /// # Errors
    /// Fails when the graph has cycles, unknown input references, or a
    /// `Const`/`VariableV2` node without a supplied weight.
    pub fn new(
        engine: &Engine,
        graph: GraphDef,
        weights: HashMap<String, Tensor>,
    ) -> Result<GraphModel> {
        let order = toposort(&graph)?;
        for node in &graph.nodes {
            if matches!(node.op.as_str(), "Const" | "VariableV2") && !weights.contains_key(&node.name)
            {
                return Err(Error::Serialization {
                    message: format!("missing weight for node {}", node.name),
                });
            }
        }
        let fused = fuse_graph(&graph, &weights);
        let fused_order = toposort(&fused)?;
        let fused_names: HashSet<String> =
            fused.nodes.iter().map(|n| n.name.clone()).collect();
        let model = GraphModel {
            engine: engine.clone(),
            graph,
            fused,
            weights,
            order,
            fused_order,
            fused_names,
            plans: Mutex::new(PlanCache {
                generation: engine.degradation_generation(),
                entries: HashMap::new(),
            }),
            planning: AtomicBool::new(true),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_invalidations: AtomicU64::new(0),
            plan_fallbacks: AtomicU64::new(0),
        };
        // Load-time compile: when every placeholder declares its shape we
        // can plan the default (terminal-fetch) signature right away, so
        // the first request already hits a warm plan. Other signatures
        // compile on first use. Failures here are non-fatal — execution
        // falls back to the interpreter.
        if let Some(sig) = model.placeholder_shape_attrs() {
            let fetches: Vec<String> =
                model.output_names().iter().map(|s| s.to_string()).collect();
            if !fetches.is_empty() {
                let fetch_refs: Vec<&str> = fetches.iter().map(String::as_str).collect();
                let _ = model.plan_for_shapes(&sig, &fetch_refs);
            }
        }
        Ok(model)
    }

    /// The `(placeholder, dims)` signature declared by `shape` attrs, when
    /// every placeholder carries one. Callers (e.g. a serving layer) can
    /// rewrite the batch dim and pre-warm plans for other batch sizes via
    /// [`GraphModel::plan_for_shapes`].
    pub fn placeholder_shape_attrs(&self) -> Option<Vec<(String, Vec<usize>)>> {
        let mut sig = Vec::new();
        for node in self.graph.nodes.iter().filter(|n| n.op == "Placeholder") {
            let dims: Vec<usize> = node
                .attrs
                .get("shape")
                .and_then(Value::as_array)?
                .iter()
                .map(|d| d.as_u64().map(|d| d as usize))
                .collect::<Option<_>>()?;
            sig.push((node.name.clone(), dims));
        }
        if sig.is_empty() {
            None
        } else {
            Some(sig)
        }
    }

    /// Compile (or fetch from cache) the execution plan for an explicit
    /// feed-shape signature. The cache is keyed by `(sorted feed shapes,
    /// fetches)` and cleared whenever [`Engine::degradation_generation`]
    /// has moved since the last lookup — a context loss invalidates every
    /// plan so the next call rebuilds against the fallback backend.
    ///
    /// # Errors
    /// Propagates plan-build failures (unsupported ops, missing feeds,
    /// shape mismatches).
    pub fn plan_for_shapes(
        &self,
        feed_shapes: &[(String, Vec<usize>)],
        fetches: &[&str],
    ) -> Result<Arc<Plan>> {
        let generation = self.engine.degradation_generation();
        let mut sig = feed_shapes.to_vec();
        sig.sort_by(|a, b| a.0.cmp(&b.0));
        let key: PlanKey = (sig.clone(), fetches.iter().map(|s| s.to_string()).collect());
        let mut cache = self.plans.lock();
        if cache.generation != generation {
            cache.entries.clear();
            cache.generation = generation;
            self.plan_invalidations.fetch_add(1, Ordering::Relaxed);
            plan_metrics().invalidations.add(1);
        }
        if let Some(plan) = cache.entries.get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            plan_metrics().hits.add(1);
            return Ok(plan.clone());
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        plan_metrics().misses.add(1);
        let use_fused = fetches.iter().all(|f| self.fused_names.contains(*f));
        let (graph, order) = if use_fused {
            (&self.fused, &self.fused_order)
        } else {
            (&self.graph, &self.order)
        };
        let plan =
            Arc::new(Plan::build(graph, order, &self.weights, &sig, fetches, use_fused)?);
        plan_metrics().peak_bytes.set(plan.predicted_peak_bytes() as i64);
        cache.entries.insert(key, plan.clone());
        Ok(plan)
    }

    /// Enable or disable planned execution (on by default). With planning
    /// off, [`GraphModel::execute`] always interprets — the comparison
    /// baseline the plan benchmark measures against.
    pub fn set_planning(&self, on: bool) {
        self.planning.store(on, Ordering::Relaxed);
    }

    /// Whether planned execution is enabled.
    pub fn planning_enabled(&self) -> bool {
        self.planning.load(Ordering::Relaxed)
    }

    /// Plan-cache counters for this model.
    pub fn plan_stats(&self) -> PlanStats {
        PlanStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            invalidations: self.plan_invalidations.load(Ordering::Relaxed),
            fallbacks: self.plan_fallbacks.load(Ordering::Relaxed),
            entries: self.plans.lock().entries.len(),
        }
    }

    /// Node count of the fused graph (< the original when patterns matched).
    pub fn fused_node_count(&self) -> usize {
        self.fused.nodes.len()
    }

    /// Node count of the original (unfused) graph.
    pub fn node_count(&self) -> usize {
        self.graph.nodes.len()
    }

    /// The engine this model executes on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Names of the graph's `Placeholder` nodes — the feeds a serving layer
    /// must bind.
    pub fn placeholder_names(&self) -> Vec<&str> {
        self.graph
            .nodes
            .iter()
            .filter(|n| n.op == "Placeholder")
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Names of the graph's terminal nodes (no consumers) — the natural
    /// fetches for inference.
    pub fn output_names(&self) -> Vec<&str> {
        let consumed: HashSet<&str> = self
            .graph
            .nodes
            .iter()
            .flat_map(|n| n.inputs.iter().map(|i| i.trim_start_matches('^')))
            .collect();
        self.graph
            .nodes
            .iter()
            .filter(|n| !consumed.contains(n.name.as_str()) && n.op != "Placeholder")
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Bytes resident in this model's uploaded weight tensors.
    pub fn weight_bytes(&self) -> usize {
        self.weights.values().map(Tensor::bytes).sum()
    }

    /// Dispose every uploaded weight tensor. The model is unusable
    /// afterwards — this is the serving-cache eviction path, which releases
    /// the weights' device memory back to `Engine::memory()` accounting.
    pub fn dispose_weights(&self) {
        for t in self.weights.values() {
            t.dispose();
        }
    }

    /// Execute the graph: bind `feeds` to placeholders, return the tensors
    /// of `fetches`. Runs the compiled [`Plan`] for this feed-shape
    /// signature (building and caching it on first use), which disposes
    /// each intermediate at its final consumer. Falls back to the
    /// interpreter when planning is disabled, a gradient tape is recording
    /// (eager disposal would free tensors the tape needs), or the plan
    /// cannot be built. Either path runs the fused graph unless a fetch
    /// names a node the fusion pass eliminated.
    ///
    /// # Errors
    /// Fails on missing feeds/fetches or unsupported ops.
    pub fn execute(&self, feeds: &[(&str, &Tensor)], fetches: &[&str]) -> Result<Vec<Tensor>> {
        if self.planning.load(Ordering::Relaxed) && !self.engine.is_recording() {
            let sig: Vec<(String, Vec<usize>)> = feeds
                .iter()
                .map(|(n, t)| (n.to_string(), t.shape_ref().dims().to_vec()))
                .collect();
            match self.plan_for_shapes(&sig, fetches) {
                Ok(plan) => return plan.run(&self.engine, feeds),
                Err(_) => {
                    // Unplannable (e.g. unsupported op, missing feed): let
                    // the interpreter run it — or produce the real error.
                    self.plan_fallbacks.fetch_add(1, Ordering::Relaxed);
                    plan_metrics().fallbacks.add(1);
                }
            }
        }
        self.execute_interpreted(feeds, fetches)
    }

    /// Execute the graph **without synchronizing** (paper Sec 4.1.1,
    /// Fig 3): ops are enqueued, asynchronous readbacks are issued for
    /// every fetch, and a fence marks the end of the submission. Returns a
    /// [`PendingFetches`] immediately so the caller can overlap the next
    /// request's upload and enqueue with this one's device compute —
    /// double-buffered, this keeps the device thread busy end-to-end.
    ///
    /// Falls back exactly like [`GraphModel::execute`]: when planning is
    /// off, a tape is recording, or the plan cannot be built (including a
    /// context loss mid-pipeline — the plan cache is invalidated by the
    /// degradation generation and the interpreter replays on the fallback
    /// backend), the interpreted result is wrapped in the same
    /// [`PendingFetches`] surface, with the fence reflecting whatever
    /// backend ended up running the work.
    ///
    /// # Errors
    /// Fails on missing feeds/fetches, unsupported ops, or readback
    /// submission failures.
    pub fn execute_pipelined(
        &self,
        feeds: &[(&str, &Tensor)],
        fetches: &[&str],
    ) -> Result<PendingFetches> {
        if self.planning.load(Ordering::Relaxed) && !self.engine.is_recording() {
            let sig: Vec<(String, Vec<usize>)> = feeds
                .iter()
                .map(|(n, t)| (n.to_string(), t.shape_ref().dims().to_vec()))
                .collect();
            match self.plan_for_shapes(&sig, fetches) {
                Ok(plan) => return plan.begin_run(&self.engine, feeds),
                Err(_) => {
                    self.plan_fallbacks.fetch_add(1, Ordering::Relaxed);
                    plan_metrics().fallbacks.add(1);
                }
            }
        }
        let tensors = self.execute_interpreted(feeds, fetches)?;
        PendingFetches::capture(&self.engine, tensors)
    }

    /// Execute via the per-call interpreter, bypassing plans entirely: op
    /// names are string-matched, attrs re-parsed, and every intermediate
    /// lives until the tidy scope closes. Kept public as the comparison
    /// baseline for the plan benchmark and tests.
    ///
    /// # Errors
    /// Fails on missing feeds/fetches or unsupported ops.
    pub fn execute_interpreted(
        &self,
        feeds: &[(&str, &Tensor)],
        fetches: &[&str],
    ) -> Result<Vec<Tensor>> {
        let fused_has_all = fetches.iter().all(|f| self.fused_names.contains(*f));
        let (graph, order) = if fused_has_all {
            (&self.fused, &self.fused_order)
        } else {
            (&self.graph, &self.order)
        };
        self.engine.clone().tidy(|| self.execute_inner(graph, order, feeds, fetches))
    }

    fn execute_inner(
        &self,
        graph: &GraphDef,
        order: &[usize],
        feeds: &[(&str, &Tensor)],
        fetches: &[&str],
    ) -> Result<Vec<Tensor>> {
        let mut values: HashMap<&str, Tensor> = HashMap::new();
        // Tensor ids the values map merely borrows (weights and feeds):
        // fetching one returns an identity alias instead of the borrowed
        // handle, so a caller disposing the result cannot destroy it.
        let mut borrowed: HashSet<usize> = HashSet::new();
        for &i in order {
            let node = &graph.nodes[i];
            let get = |k: usize| -> Result<&Tensor> {
                let name = node.inputs[k].trim_start_matches('^');
                values
                    .get(name)
                    .ok_or_else(|| Error::invalid("GraphModel", format!("input {name} not computed")))
            };
            let out = match node.op.as_str() {
                "Placeholder" => {
                    let fed = feeds.iter().find(|(n, _)| *n == node.name).ok_or_else(|| {
                        Error::invalid("GraphModel", format!("no feed for placeholder {}", node.name))
                    })?;
                    let t = fed.1.clone();
                    borrowed.insert(t.id());
                    t
                }
                "Const" | "VariableV2" => {
                    // Borrow the resident weight handle directly — no
                    // identity kernel dispatch per weight per call.
                    let t = self.weights[&node.name].clone();
                    borrowed.insert(t.id());
                    t
                }
                "MatMul" => {
                    let b = get(1)?;
                    if b.is_quantized() {
                        // Quantized weights never decode to f32: the fused
                        // quant kernel dequantizes in its epilogue.
                        ops::fused_matmul_quant(get(0)?, b, None, None, false, false)?
                    } else {
                        ops::matmul(get(0)?, b, false, false)?
                    }
                }
                "Add" | "AddV2" | "BiasAdd" => ops::add(get(0)?, get(1)?)?,
                "Sub" => ops::sub(get(0)?, get(1)?)?,
                "Mul" => ops::mul(get(0)?, get(1)?)?,
                "RealDiv" | "Div" => ops::div(get(0)?, get(1)?)?,
                "Relu" => ops::relu(get(0)?)?,
                "Relu6" => ops::relu6(get(0)?)?,
                "Sigmoid" => ops::sigmoid(get(0)?)?,
                "Tanh" => ops::tanh(get(0)?)?,
                "Softmax" => ops::softmax(get(0)?)?,
                "Identity" => ops::identity(get(0)?)?,
                "Reshape" => {
                    let x = get(0)?;
                    let dims = resolve_reshape_dims(node, x.shape_ref())?;
                    ops::reshape(x, Shape::new(dims))?
                }
                "Conv2D" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    let f = get(1)?;
                    if f.is_quantized() {
                        ops::fused_conv2d_quant(
                            get(0)?,
                            f,
                            None,
                            None,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    } else {
                        ops::conv2d(get(0)?, f, strides, attr_padding(node)?, (1, 1))?
                    }
                }
                "DepthwiseConv2dNative" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    let f = get(1)?;
                    if f.is_quantized() {
                        ops::fused_depthwise_conv2d_quant(
                            get(0)?,
                            f,
                            None,
                            None,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    } else {
                        ops::depthwise_conv2d(get(0)?, f, strides, attr_padding(node)?, (1, 1))?
                    }
                }
                "MaxPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::max_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "AvgPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::avg_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "_FusedMatMul" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    let b = get(1)?;
                    if b.is_quantized() {
                        ops::fused_matmul_quant(get(0)?, b, bias, act, false, false)?
                    } else {
                        ops::fused_matmul(get(0)?, b, bias, act, false, false)?
                    }
                }
                "_FusedConv2D" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    let strides = attr_pair(node, "strides", (1, 1));
                    let f = get(1)?;
                    if f.is_quantized() {
                        ops::fused_conv2d_quant(
                            get(0)?,
                            f,
                            bias,
                            act,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    } else {
                        ops::fused_conv2d(
                            get(0)?,
                            f,
                            bias,
                            act,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    }
                }
                "_FusedDepthwiseConv2dNative" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    let strides = attr_pair(node, "strides", (1, 1));
                    let f = get(1)?;
                    if f.is_quantized() {
                        ops::fused_depthwise_conv2d_quant(
                            get(0)?,
                            f,
                            bias,
                            act,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    } else {
                        ops::fused_depthwise_conv2d(
                            get(0)?,
                            f,
                            bias,
                            act,
                            strides,
                            attr_padding(node)?,
                            (1, 1),
                        )?
                    }
                }
                "_FusedElementwise" => {
                    let steps = parse_steps(node)?;
                    let extras: Vec<&Tensor> =
                        (1..node.inputs.len()).map(&get).collect::<Result<_>>()?;
                    ops::fused_elementwise(get(0)?, &extras, &steps)?
                }
                "Mean" => {
                    // Reduce over attr axes (default: spatial dims 1,2).
                    let axes: Vec<isize> = node
                        .attrs
                        .get("axes")
                        .and_then(Value::as_array)
                        .map(|a| a.iter().filter_map(Value::as_i64).map(|d| d as isize).collect())
                        .unwrap_or_else(|| vec![1, 2]);
                    ops::mean(get(0)?, Some(&axes), false)?
                }
                other => {
                    return Err(Error::invalid(
                        "GraphModel",
                        format!("unsupported op {other} (node {})", node.name),
                    ))
                }
            };
            values.insert(node.name.as_str(), out);
        }
        fetches
            .iter()
            .map(|&f| {
                let t = values
                    .get(f)
                    .ok_or_else(|| Error::invalid("GraphModel", format!("unknown fetch {f}")))?;
                if borrowed.contains(&t.id()) {
                    // Alias, don't hand out the weight/feed handle itself.
                    ops::identity(t)
                } else {
                    Ok(t.clone())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn mlp_graph() -> GraphDef {
        let mut g = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w1", "VariableV2", &[]),
            ("b1", "VariableV2", &[]),
            ("mm1", "MatMul", &["x", "w1"]),
            ("z1", "BiasAdd", &["mm1", "b1"]),
            ("h", "Relu", &["z1"]),
            ("w2", "VariableV2", &[]),
            ("logits", "MatMul", &["h", "w2"]),
            ("probs", "Softmax", &["logits"]),
        ]);
        // Deliberately shuffle to exercise the topological sort.
        g.nodes.reverse();
        g
    }

    fn mlp_weights(e: &Engine) -> HashMap<String, Tensor> {
        let mut w = HashMap::new();
        w.insert("w1".to_string(), e.tensor_2d(&[1.0, -1.0, 0.5, 0.5], 2, 2).unwrap());
        w.insert("b1".to_string(), e.tensor_1d(&[0.1, -0.1]).unwrap());
        w.insert("w2".to_string(), e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap());
        w
    }

    #[test]
    fn executes_an_mlp_graph() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert_eq!(probs.len(), 2);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-5);
        // Manual forward: z = [1*1+2*0.5+0.1, -1+1-0.1] = [2.1, -0.1];
        // h = [2.1, 0]; logits = h; softmax(2.1, 0).
        let e0 = (2.1f32).exp();
        let expect = e0 / (e0 + 1.0);
        assert!((probs[0] - expect).abs() < 1e-4);
    }

    #[test]
    fn pruned_training_graph_executes(){
        // End-to-end Sec 5.1 path: prune the training graph, execute it.
        let e = engine();
        let training = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("y", "MatMul", &["x", "w"]),
            ("out", "Softmax", &["y"]),
            ("labels", "Placeholder", &[]),
            ("grad", "MatMul", &["x", "labels"]),
            ("train", "ApplyGradientDescent", &["w", "grad"]),
            ("save", "SaveV2", &["w"]),
        ]);
        let pruned = training.prune(&["out"]).unwrap();
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        let model = GraphModel::new(&e, pruned, weights).unwrap();
        let x = e.tensor_2d(&[3.0, 1.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["out"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert!(probs[0] > probs[1]);
    }

    #[test]
    fn conv_graph_with_attrs() {
        let e = engine();
        let mut graph = GraphDef::from_triples(&[
            ("img", "Placeholder", &[]),
            ("filter", "Const", &[]),
            ("conv", "Conv2D", &["img", "filter"]),
            ("act", "Relu6", &["conv"]),
            ("pool", "MaxPool", &["act"]),
        ]);
        graph.nodes[2].attrs = serde_json::json!({ "strides": [1, 1], "padding": "SAME" });
        graph.nodes[4].attrs = serde_json::json!({ "ksize": [2, 2], "padding": "VALID" });
        let mut weights = HashMap::new();
        weights.insert("filter".to_string(), e.tensor_4d(&[1.0], 1, 1, 1, 1).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        let img = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let out = model.execute(&[("img", &img)], &["pool"]).unwrap();
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![4.0]);
    }

    #[test]
    fn missing_weight_and_unknown_op_error() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("w", "VariableV2", &[])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());

        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[]), ("q", "QuantumOp", &["x"])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(model.execute(&[("x", &x)], &["q"]).is_err());
    }

    #[test]
    fn fusion_collapses_matmul_bias_relu() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        // mm1 + z1 + h collapse into one _FusedMatMul named "h".
        assert_eq!(model.node_count(), 9);
        assert_eq!(model.fused_node_count(), 7);
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedMatMul" && n.name == "h"));
    }

    #[test]
    fn fused_graph_matches_unfused_bitwise() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0, -0.5, 3.0], 2, 2).unwrap();
        // "probs" survives fusion → fused execution; "z1" was swallowed →
        // the same call falls back to the unfused graph.
        let fused = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let unfused = model.execute(&[("x", &x)], &["probs", "z1"]).unwrap();
        assert_eq!(fused[0].to_f32_vec().unwrap(), unfused[0].to_f32_vec().unwrap());
    }

    #[test]
    fn fetching_swallowed_intermediate_falls_back() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["z1"]).unwrap();
        // z = [1*1+2*0.5+0.1, -1+1-0.1].
        let z = out[0].to_f32_vec().unwrap();
        assert!((z[0] - 2.1).abs() < 1e-5);
        assert!((z[1] + 0.1).abs() < 1e-5);
    }

    #[test]
    fn elementwise_chain_fuses() {
        let e = engine();
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("s", "Const", &[]),
            ("scaled", "Mul", &["x", "s"]),
            ("shifted", "Add", &["scaled", "s"]),
            ("act", "Relu", &["shifted"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("s".to_string(), e.tensor_1d(&[2.0]).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        // scaled + shifted + act collapse into one _FusedElementwise.
        assert_eq!(model.fused_node_count(), 3);
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedElementwise" && n.name == "act"));
        let x = e.tensor_1d(&[-3.0, 0.5]).unwrap();
        let out = model.execute(&[("x", &x)], &["act"]).unwrap();
        // relu(x*2 + 2) = [0, 3].
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![0.0, 3.0]);
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let e = engine();
        // z feeds both the activation and a second add: not fusable.
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("b", "VariableV2", &[]),
            ("mm", "MatMul", &["x", "w"]),
            ("z", "BiasAdd", &["mm", "b"]),
            ("h", "Relu", &["z"]),
            ("sum", "Add", &["h", "z"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        weights.insert("b".to_string(), e.tensor_1d(&[1.0, -1.0]).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        // mm+z fuse (z has 2 consumers → stops there? No: z is the bias add
        // and must be the sole consumer chain END; mm's sole consumer z
        // qualifies, z keeps its name, so "h" and "sum" still resolve).
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedMatMul" && n.name == "z"));
        let x = e.tensor_2d(&[3.0, 4.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["sum"]).unwrap();
        // z = [4, 3]; h = [4, 3]; sum = [8, 6].
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![8.0, 6.0]);
    }

    #[test]
    fn planned_execution_matches_interpreted_bitwise() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0, -0.5, 3.0], 2, 2).unwrap();
        let planned = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let interpreted = model.execute_interpreted(&[("x", &x)], &["probs"]).unwrap();
        assert_eq!(
            planned[0].to_f32_vec().unwrap(),
            interpreted[0].to_f32_vec().unwrap()
        );
        // The swallowed-fetch fallback path plans against the unfused graph.
        let planned = model.execute(&[("x", &x)], &["probs", "z1"]).unwrap();
        let interpreted = model.execute_interpreted(&[("x", &x)], &["probs", "z1"]).unwrap();
        for (p, i) in planned.iter().zip(&interpreted) {
            assert_eq!(p.to_f32_vec().unwrap(), i.to_f32_vec().unwrap());
        }
    }

    #[test]
    fn plan_cache_keyed_by_feed_shape() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x1 = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        model.execute(&[("x", &x1)], &["probs"]).unwrap();
        model.execute(&[("x", &x1)], &["probs"]).unwrap();
        let stats = model.plan_stats();
        assert_eq!(stats.misses, 1, "one compile for the cold signature");
        assert_eq!(stats.hits, 1, "second call reuses the cached plan");
        // A new batch size is a new signature → a second plan.
        let x2 = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        model.execute(&[("x", &x2)], &["probs"]).unwrap();
        let stats = model.plan_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn plan_references_weights_in_place() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let plan = model
            .plan_for_shapes(&[("x".to_string(), vec![1, 2])], &["probs"])
            .unwrap();
        // Fused graph: _FusedMatMul + MatMul + Softmax. Weight and
        // placeholder nodes become in-place references, not ops.
        assert!(plan.uses_fused_graph());
        assert_eq!(plan.op_count(), 3);
        assert!(plan.ops().iter().all(|op| !matches!(op.kind, crate::plan::OpKind::Identity)));
    }

    #[test]
    fn plan_prunes_to_fetch_ancestors() {
        let e = engine();
        // "side" does not feed "out": the plan for "out" must skip it.
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("out", "MatMul", &["x", "w"]),
            ("side", "Softmax", &["out"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        let plan = model
            .plan_for_shapes(&[("x".to_string(), vec![1, 2])], &["out"])
            .unwrap();
        assert_eq!(plan.op_count(), 1, "softmax consumer pruned");
    }

    #[test]
    fn plan_eager_disposal_bounds_peak_bytes() {
        let e = engine();
        // A matmul chain (does not fuse): interpreted execution keeps all
        // N intermediates until scope end; the plan keeps at most two.
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("m1", "MatMul", &["x", "w"]),
            ("m2", "MatMul", &["m1", "w"]),
            ("m3", "MatMul", &["m2", "w"]),
            ("m4", "MatMul", &["m3", "w"]),
            ("m5", "MatMul", &["m4", "w"]),
            ("m6", "MatMul", &["m5", "w"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(16).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        let x = e.tensor(vec![1.0; 16], Shape::new(vec![1, 16])).unwrap();
        let row = 16 * 4; // one [1, 16] f32 intermediate

        let plan = model
            .plan_for_shapes(&[("x".to_string(), vec![1, 16])], &["m6"])
            .unwrap();
        assert_eq!(plan.predicted_peak_bytes(), 2 * row);

        let baseline = e.memory().num_bytes;
        e.reset_peak_bytes();
        let out = model.execute(&[("x", &x)], &["m6"]).unwrap();
        let planned_peak = e.peak_bytes() - baseline;
        out[0].dispose();
        assert_eq!(planned_peak, plan.predicted_peak_bytes());

        e.reset_peak_bytes();
        let out = model.execute_interpreted(&[("x", &x)], &["m6"]).unwrap();
        let interpreted_peak = e.peak_bytes() - baseline;
        out[0].dispose();
        assert_eq!(interpreted_peak, 6 * row, "all six intermediates live at once");
    }

    #[test]
    fn reshape_wildcard_inferred_from_element_count() {
        let e = engine();
        let mut graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("flat", "Reshape", &["x"]),
        ]);
        graph.nodes[1].attrs = serde_json::json!({ "shape": [0, -1] });
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        let x = e.tensor(vec![1.0; 24], Shape::new(vec![2, 3, 4])).unwrap();
        let planned = model.execute(&[("x", &x)], &["flat"]).unwrap();
        assert_eq!(planned[0].shape_ref().dims(), &[2, 12]);
        let interpreted = model.execute_interpreted(&[("x", &x)], &["flat"]).unwrap();
        assert_eq!(interpreted[0].shape_ref().dims(), &[2, 12]);
    }

    #[test]
    fn reshape_multiple_wildcards_error() {
        let e = engine();
        let mut graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("bad", "Reshape", &["x"]),
        ]);
        graph.nodes[1].attrs = serde_json::json!({ "shape": [-1, -1] });
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        let x = e.tensor(vec![1.0; 4], Shape::new(vec![2, 2])).unwrap();
        assert!(model.execute(&[("x", &x)], &["bad"]).is_err());
        assert!(model.execute_interpreted(&[("x", &x)], &["bad"]).is_err());
    }

    #[test]
    fn fetched_weight_is_an_alias_not_the_resident_handle() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        for exec in [true, false] {
            let out = if exec {
                model.execute(&[("x", &x)], &["w1", "probs"]).unwrap()
            } else {
                model.execute_interpreted(&[("x", &x)], &["w1", "probs"]).unwrap()
            };
            // Disposing the fetched weight must not destroy the model's
            // resident copy.
            out[0].dispose();
            out[1].dispose();
            let again = model.execute(&[("x", &x)], &["probs"]).unwrap();
            assert_eq!(again[0].to_f32_vec().unwrap().len(), 2);
            again[0].dispose();
        }
    }

    #[test]
    fn planning_can_be_disabled() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        model.set_planning(false);
        assert!(!model.planning_enabled());
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        model.execute(&[("x", &x)], &["probs"]).unwrap();
        let stats = model.plan_stats();
        assert_eq!(stats.hits + stats.misses, 0, "no plan activity while disabled");
    }

    #[test]
    fn load_time_precompile_from_placeholder_shape_attrs() {
        let e = engine();
        let mut graph = mlp_graph();
        // mlp_graph reverses its nodes, so find the placeholder by name.
        let x_node =
            graph.nodes.iter_mut().find(|n| n.name == "x").expect("placeholder present");
        x_node.attrs = serde_json::json!({ "shape": [1, 2] });
        let model = GraphModel::new(&e, graph, mlp_weights(&e)).unwrap();
        let stats = model.plan_stats();
        assert_eq!(stats.misses, 1, "plan compiled at load");
        assert_eq!(stats.entries, 1);
        // First request at the declared shape hits the warm plan.
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        model.execute(&[("x", &x)], &["probs"]).unwrap();
        assert_eq!(model.plan_stats().hits, 1);
    }

    #[test]
    fn cycle_detection() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("a", "Relu", &["b"]), ("b", "Relu", &["a"])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());
    }

    #[test]
    fn missing_feed_errors() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        assert!(model.execute(&[], &["x"]).is_err());
    }
}
