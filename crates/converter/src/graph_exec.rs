//! A GraphDef executor: runs (pruned) TensorFlow-style inference graphs on
//! the eager engine — the "load and execute pre-trained TensorFlow
//! SavedModels" path of paper Sec 5.1.
//!
//! Supports the op set the converter emits for the models this repo
//! reproduces (dense/conv image classifiers): placeholders, constants,
//! matmul, bias/arithmetic, activations, conv/pool, reshape, softmax.

use crate::prune::{GraphDef, NodeDef};
use serde_json::Value;
use std::collections::HashMap;
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine, Error, Result, Shape, Tensor};

/// A loaded, executable inference graph.
pub struct GraphModel {
    engine: Engine,
    graph: GraphDef,
    /// Values for `Const`/`VariableV2` nodes, by node name.
    weights: HashMap<String, Tensor>,
    order: Vec<usize>,
}

fn attr_str<'a>(node: &'a NodeDef, key: &str) -> Option<&'a str> {
    node.attrs.get(key).and_then(Value::as_str)
}

fn attr_pair(node: &NodeDef, key: &str, default: (usize, usize)) -> (usize, usize) {
    node.attrs
        .get(key)
        .and_then(Value::as_array)
        .map(|a| {
            (
                a.first().and_then(Value::as_u64).unwrap_or(default.0 as u64) as usize,
                a.get(1).and_then(Value::as_u64).unwrap_or(default.1 as u64) as usize,
            )
        })
        .unwrap_or(default)
}

fn attr_padding(node: &NodeDef) -> Result<Padding> {
    match attr_str(node, "padding").unwrap_or("SAME") {
        "SAME" | "same" => Ok(Padding::Same),
        "VALID" | "valid" => Ok(Padding::Valid),
        other => Err(Error::Serialization { message: format!("unknown padding {other}") }),
    }
}

impl GraphModel {
    /// Build an executable model from a graph and its weight values.
    ///
    /// # Errors
    /// Fails when the graph has cycles, unknown input references, or a
    /// `Const`/`VariableV2` node without a supplied weight.
    pub fn new(
        engine: &Engine,
        graph: GraphDef,
        weights: HashMap<String, Tensor>,
    ) -> Result<GraphModel> {
        // Kahn topological sort (GraphDefs are not guaranteed ordered).
        let index: HashMap<&str, usize> =
            graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
        let mut indegree = vec![0usize; graph.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
        for (i, node) in graph.nodes.iter().enumerate() {
            for input in &node.inputs {
                let clean = input.trim_start_matches('^');
                let &j = index.get(clean).ok_or_else(|| Error::Serialization {
                    message: format!("node {} references unknown input {clean}", node.name),
                })?;
                indegree[i] += 1;
                dependents[j].push(i);
            }
        }
        let mut queue: Vec<usize> =
            (0..graph.nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(graph.nodes.len());
        while let Some(i) = queue.pop() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != graph.nodes.len() {
            return Err(Error::Serialization { message: "graph contains a cycle".into() });
        }
        for node in &graph.nodes {
            if matches!(node.op.as_str(), "Const" | "VariableV2") && !weights.contains_key(&node.name)
            {
                return Err(Error::Serialization {
                    message: format!("missing weight for node {}", node.name),
                });
            }
        }
        Ok(GraphModel { engine: engine.clone(), graph, weights, order })
    }

    /// Execute the graph: bind `feeds` to placeholders, return the tensors
    /// of `fetches`. All intermediates are disposed.
    ///
    /// # Errors
    /// Fails on missing feeds/fetches or unsupported ops.
    pub fn execute(&self, feeds: &[(&str, &Tensor)], fetches: &[&str]) -> Result<Vec<Tensor>> {
        self.engine.clone().tidy(|| self.execute_inner(feeds, fetches))
    }

    fn execute_inner(&self, feeds: &[(&str, &Tensor)], fetches: &[&str]) -> Result<Vec<Tensor>> {
        let mut values: HashMap<&str, Tensor> = HashMap::new();
        for &i in &self.order {
            let node = &self.graph.nodes[i];
            let get = |k: usize| -> Result<&Tensor> {
                let name = node.inputs[k].trim_start_matches('^');
                values
                    .get(name)
                    .ok_or_else(|| Error::invalid("GraphModel", format!("input {name} not computed")))
            };
            let out = match node.op.as_str() {
                "Placeholder" => {
                    let fed = feeds.iter().find(|(n, _)| *n == node.name).ok_or_else(|| {
                        Error::invalid("GraphModel", format!("no feed for placeholder {}", node.name))
                    })?;
                    ops::identity(fed.1)?
                }
                "Const" | "VariableV2" => {
                    ops::identity(&self.weights[&node.name])?
                }
                "MatMul" => ops::matmul(get(0)?, get(1)?, false, false)?,
                "Add" | "AddV2" | "BiasAdd" => ops::add(get(0)?, get(1)?)?,
                "Sub" => ops::sub(get(0)?, get(1)?)?,
                "Mul" => ops::mul(get(0)?, get(1)?)?,
                "RealDiv" | "Div" => ops::div(get(0)?, get(1)?)?,
                "Relu" => ops::relu(get(0)?)?,
                "Relu6" => ops::relu6(get(0)?)?,
                "Sigmoid" => ops::sigmoid(get(0)?)?,
                "Tanh" => ops::tanh(get(0)?)?,
                "Softmax" => ops::softmax(get(0)?)?,
                "Identity" => ops::identity(get(0)?)?,
                "Reshape" => {
                    let target: Vec<usize> = node
                        .attrs
                        .get("shape")
                        .and_then(Value::as_array)
                        .map(|a| a.iter().filter_map(Value::as_u64).map(|d| d as usize).collect())
                        .ok_or_else(|| Error::Serialization {
                            message: format!("Reshape {} missing shape attr", node.name),
                        })?;
                    let x = get(0)?;
                    // A leading 0 means "keep the batch dim".
                    let dims: Vec<usize> = target
                        .iter()
                        .enumerate()
                        .map(|(i, &d)| if d == 0 && i == 0 { x.shape_ref().dim(0) } else { d })
                        .collect();
                    ops::reshape(x, Shape::new(dims))?
                }
                "Conv2D" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::conv2d(get(0)?, get(1)?, strides, attr_padding(node)?, (1, 1))?
                }
                "DepthwiseConv2dNative" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::depthwise_conv2d(get(0)?, get(1)?, strides, attr_padding(node)?, (1, 1))?
                }
                "MaxPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::max_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "AvgPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::avg_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "Mean" => {
                    // Reduce over attr axes (default: spatial dims 1,2).
                    let axes: Vec<isize> = node
                        .attrs
                        .get("axes")
                        .and_then(Value::as_array)
                        .map(|a| a.iter().filter_map(Value::as_i64).map(|d| d as isize).collect())
                        .unwrap_or_else(|| vec![1, 2]);
                    ops::mean(get(0)?, Some(&axes), false)?
                }
                other => {
                    return Err(Error::invalid(
                        "GraphModel",
                        format!("unsupported op {other} (node {})", node.name),
                    ))
                }
            };
            values.insert(node.name.as_str(), out);
        }
        fetches
            .iter()
            .map(|&f| {
                values
                    .get(f)
                    .cloned()
                    .ok_or_else(|| Error::invalid("GraphModel", format!("unknown fetch {f}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn mlp_graph() -> GraphDef {
        let mut g = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w1", "VariableV2", &[]),
            ("b1", "VariableV2", &[]),
            ("mm1", "MatMul", &["x", "w1"]),
            ("z1", "BiasAdd", &["mm1", "b1"]),
            ("h", "Relu", &["z1"]),
            ("w2", "VariableV2", &[]),
            ("logits", "MatMul", &["h", "w2"]),
            ("probs", "Softmax", &["logits"]),
        ]);
        // Deliberately shuffle to exercise the topological sort.
        g.nodes.reverse();
        g
    }

    fn mlp_weights(e: &Engine) -> HashMap<String, Tensor> {
        let mut w = HashMap::new();
        w.insert("w1".to_string(), e.tensor_2d(&[1.0, -1.0, 0.5, 0.5], 2, 2).unwrap());
        w.insert("b1".to_string(), e.tensor_1d(&[0.1, -0.1]).unwrap());
        w.insert("w2".to_string(), e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap());
        w
    }

    #[test]
    fn executes_an_mlp_graph() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert_eq!(probs.len(), 2);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-5);
        // Manual forward: z = [1*1+2*0.5+0.1, -1+1-0.1] = [2.1, -0.1];
        // h = [2.1, 0]; logits = h; softmax(2.1, 0).
        let e0 = (2.1f32).exp();
        let expect = e0 / (e0 + 1.0);
        assert!((probs[0] - expect).abs() < 1e-4);
    }

    #[test]
    fn pruned_training_graph_executes(){
        // End-to-end Sec 5.1 path: prune the training graph, execute it.
        let e = engine();
        let training = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("y", "MatMul", &["x", "w"]),
            ("out", "Softmax", &["y"]),
            ("labels", "Placeholder", &[]),
            ("grad", "MatMul", &["x", "labels"]),
            ("train", "ApplyGradientDescent", &["w", "grad"]),
            ("save", "SaveV2", &["w"]),
        ]);
        let pruned = training.prune(&["out"]).unwrap();
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        let model = GraphModel::new(&e, pruned, weights).unwrap();
        let x = e.tensor_2d(&[3.0, 1.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["out"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert!(probs[0] > probs[1]);
    }

    #[test]
    fn conv_graph_with_attrs() {
        let e = engine();
        let mut graph = GraphDef::from_triples(&[
            ("img", "Placeholder", &[]),
            ("filter", "Const", &[]),
            ("conv", "Conv2D", &["img", "filter"]),
            ("act", "Relu6", &["conv"]),
            ("pool", "MaxPool", &["act"]),
        ]);
        graph.nodes[2].attrs = serde_json::json!({ "strides": [1, 1], "padding": "SAME" });
        graph.nodes[4].attrs = serde_json::json!({ "ksize": [2, 2], "padding": "VALID" });
        let mut weights = HashMap::new();
        weights.insert("filter".to_string(), e.tensor_4d(&[1.0], 1, 1, 1, 1).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        let img = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let out = model.execute(&[("img", &img)], &["pool"]).unwrap();
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![4.0]);
    }

    #[test]
    fn missing_weight_and_unknown_op_error() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("w", "VariableV2", &[])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());

        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[]), ("q", "QuantumOp", &["x"])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(model.execute(&[("x", &x)], &["q"]).is_err());
    }

    #[test]
    fn cycle_detection() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("a", "Relu", &["b"]), ("b", "Relu", &["a"])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());
    }

    #[test]
    fn missing_feed_errors() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        assert!(model.execute(&[], &["x"]).is_err());
    }
}
