//! A GraphDef executor: runs (pruned) TensorFlow-style inference graphs on
//! the eager engine — the "load and execute pre-trained TensorFlow
//! SavedModels" path of paper Sec 5.1.
//!
//! Supports the op set the converter emits for the models this repo
//! reproduces (dense/conv image classifiers): placeholders, constants,
//! matmul, bias/arithmetic, activations, conv/pool, reshape, softmax.
//!
//! On load the graph is run through a pattern-matching fusion pass:
//! `MatMul`/`Conv2D`/`DepthwiseConv2dNative` followed by a single-consumer
//! bias add and activation collapse into one `_Fused*` node, and runs of
//! adjacent single-consumer element-wise ops collapse into one
//! `_FusedElementwise` chain — each dispatching a single fused device
//! kernel at execution time. Fetching a node that fusion swallowed
//! transparently falls back to the unfused graph.

use crate::prune::{GraphDef, NodeDef};
use serde_json::{json, Value};
use std::collections::{HashMap, HashSet};
use webml_core::backend::{BinaryOp, UnaryOp};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine, Error, FusedStep, Result, Shape, Tensor};

/// A loaded, executable inference graph.
pub struct GraphModel {
    engine: Engine,
    graph: GraphDef,
    /// The graph after the kernel-fusion pass (used unless a fetch names a
    /// node that fusion eliminated).
    fused: GraphDef,
    /// Values for `Const`/`VariableV2` nodes, by node name.
    weights: HashMap<String, Tensor>,
    order: Vec<usize>,
    fused_order: Vec<usize>,
}

fn attr_str<'a>(node: &'a NodeDef, key: &str) -> Option<&'a str> {
    node.attrs.get(key).and_then(Value::as_str)
}

fn attr_pair(node: &NodeDef, key: &str, default: (usize, usize)) -> (usize, usize) {
    node.attrs
        .get(key)
        .and_then(Value::as_array)
        .map(|a| {
            (
                a.first().and_then(Value::as_u64).unwrap_or(default.0 as u64) as usize,
                a.get(1).and_then(Value::as_u64).unwrap_or(default.1 as u64) as usize,
            )
        })
        .unwrap_or(default)
}

fn attr_padding(node: &NodeDef) -> Result<Padding> {
    match attr_str(node, "padding").unwrap_or("SAME") {
        "SAME" | "same" => Ok(Padding::Same),
        "VALID" | "valid" => Ok(Padding::Valid),
        other => Err(Error::Serialization { message: format!("unknown padding {other}") }),
    }
}

/// Decode the optional bias input and activation of a `_Fused*` node.
fn fused_epilogue_args<'a>(
    node: &NodeDef,
    get: &impl Fn(usize) -> Result<&'a Tensor>,
) -> Result<(Option<&'a Tensor>, Option<UnaryOp>)> {
    let has_bias = node.attrs.get("has_bias").and_then(Value::as_bool).unwrap_or(false);
    let bias = if has_bias { Some(get(2)?) } else { None };
    let act = match attr_str(node, "activation") {
        Some(name) => Some(fusable_unary(name).ok_or_else(|| Error::Serialization {
            message: format!("unknown fused activation {name}"),
        })?),
        None => None,
    };
    Ok((bias, act))
}

/// Decode the `steps` attr of a `_FusedElementwise` node.
fn parse_steps(node: &NodeDef) -> Result<Vec<FusedStep>> {
    let malformed = || Error::Serialization {
        message: format!("_FusedElementwise {} has a malformed steps attr", node.name),
    };
    let arr = node.attrs.get("steps").and_then(Value::as_array).ok_or_else(malformed)?;
    arr.iter()
        .map(|s| {
            let parts = s.as_array().ok_or_else(malformed)?;
            let name = parts.first().and_then(Value::as_str).ok_or_else(malformed)?;
            if let Some(u) = fusable_unary(name) {
                Ok(FusedStep::Unary(u))
            } else if let Some(b) = fusable_binary(name) {
                let idx = parts.get(1).and_then(Value::as_u64).ok_or_else(malformed)? as usize;
                Ok(FusedStep::Binary(b, idx))
            } else {
                Err(malformed())
            }
        })
        .collect()
}

/// Kahn topological sort (GraphDefs are not guaranteed ordered).
fn toposort(graph: &GraphDef) -> Result<Vec<usize>> {
    let index: HashMap<&str, usize> =
        graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
    let mut indegree = vec![0usize; graph.nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        for input in &node.inputs {
            let clean = input.trim_start_matches('^');
            let &j = index.get(clean).ok_or_else(|| Error::Serialization {
                message: format!("node {} references unknown input {clean}", node.name),
            })?;
            indegree[i] += 1;
            dependents[j].push(i);
        }
    }
    let mut queue: Vec<usize> = (0..graph.nodes.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(graph.nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != graph.nodes.len() {
        return Err(Error::Serialization { message: "graph contains a cycle".into() });
    }
    Ok(order)
}

fn fusable_unary(op: &str) -> Option<UnaryOp> {
    match op {
        "Relu" => Some(UnaryOp::Relu),
        "Relu6" => Some(UnaryOp::Relu6),
        "Sigmoid" => Some(UnaryOp::Sigmoid),
        "Tanh" => Some(UnaryOp::Tanh),
        _ => None,
    }
}

fn fusable_binary(op: &str) -> Option<BinaryOp> {
    match op {
        "Add" | "AddV2" | "BiasAdd" => Some(BinaryOp::Add),
        "Sub" => Some(BinaryOp::Sub),
        "Mul" => Some(BinaryOp::Mul),
        "RealDiv" | "Div" => Some(BinaryOp::Div),
        _ => None,
    }
}

fn unary_name(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Relu => "Relu",
        UnaryOp::Relu6 => "Relu6",
        UnaryOp::Sigmoid => "Sigmoid",
        UnaryOp::Tanh => "Tanh",
        _ => "Relu",
    }
}

fn binary_name(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "Add",
        BinaryOp::Sub => "Sub",
        BinaryOp::Mul => "Mul",
        BinaryOp::Div => "Div",
        _ => "Add",
    }
}

/// The kernel-fusion pass: collapse matmul/conv → bias-add → activation
/// triples into one `_Fused*` node, then collapse remaining runs of
/// single-consumer element-wise ops into `_FusedElementwise` chains. Fused
/// nodes take the NAME of the last node they replace, so downstream input
/// references stay valid; swallowed intermediates disappear from the graph.
fn fuse_graph(graph: &GraphDef, weights: &HashMap<String, Tensor>) -> GraphDef {
    let index: HashMap<&str, usize> =
        graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
    // Consumer lists; nodes with control inputs never participate in fusion.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    let mut has_control = vec![false; graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        for input in &node.inputs {
            if input.starts_with('^') {
                has_control[i] = true;
            }
            if let Some(&j) = index.get(input.trim_start_matches('^')) {
                consumers[j].push(i);
            }
        }
    }
    let sole_consumer = |i: usize| -> Option<usize> {
        match consumers[i].as_slice() {
            [c] if !has_control[*c] => Some(*c),
            _ => None,
        }
    };
    // Whether a node is a rank-1 weight (a valid fused-kernel bias).
    let is_bias = |name: &str| weights.get(name).map(|t| t.rank() == 1).unwrap_or(false);

    let mut swallowed: HashSet<usize> = HashSet::new();
    let mut replacement: HashMap<usize, NodeDef> = HashMap::new();

    // Pass A: matmul/conv epilogues.
    for (i, node) in graph.nodes.iter().enumerate() {
        let fused_op = match node.op.as_str() {
            "MatMul" => "_FusedMatMul",
            "Conv2D" => "_FusedConv2D",
            "DepthwiseConv2dNative" => "_FusedDepthwiseConv2dNative",
            _ => continue,
        };
        if has_control[i] {
            continue;
        }
        // Optional bias add: sole consumer, this node as lhs, rank-1 weight
        // as rhs (the fused kernels require a `[channels]` bias).
        let mut last = i;
        let mut bias: Option<&str> = None;
        if let Some(c) = sole_consumer(i) {
            let cn = &graph.nodes[c];
            if matches!(cn.op.as_str(), "BiasAdd" | "Add" | "AddV2")
                && cn.inputs.len() == 2
                && cn.inputs[0] == node.name
                && is_bias(&cn.inputs[1])
            {
                bias = Some(cn.inputs[1].as_str());
                last = c;
            }
        }
        // Optional activation on whatever the chain currently ends at.
        let mut activation: Option<&str> = None;
        if let Some(a) = sole_consumer(last) {
            let an = &graph.nodes[a];
            if fusable_unary(&an.op).is_some() && an.inputs[0] == graph.nodes[last].name {
                activation = Some(an.op.as_str());
                last = a;
            }
        }
        if last == i {
            continue; // Nothing to fuse into this kernel.
        }
        let mut inputs = node.inputs.clone();
        if let Some(b) = bias {
            inputs.push(b.to_string());
        }
        let mut attrs = if node.attrs.is_object() { node.attrs.clone() } else { json!({}) };
        if let Value::Object(entries) = &mut attrs {
            entries.push(("has_bias".to_string(), json!(bias.is_some())));
            if let Some(act) = activation {
                entries.push(("activation".to_string(), json!(act)));
            }
        }
        // Mark every member between i and last as swallowed except `last`,
        // which carries the fused node (so downstream names resolve).
        let mut member = i;
        while member != last {
            swallowed.insert(member);
            member = sole_consumer(member).expect("chain member has sole consumer");
        }
        replacement.insert(
            last,
            NodeDef { name: graph.nodes[last].name.clone(), op: fused_op.to_string(), inputs, attrs },
        );
    }

    // Pass B: element-wise chains over nodes not already part of a fusion.
    let in_fusion =
        |i: usize, swallowed: &HashSet<usize>, replacement: &HashMap<usize, NodeDef>| {
            swallowed.contains(&i) || replacement.contains_key(&i)
        };
    for (i, node) in graph.nodes.iter().enumerate() {
        if in_fusion(i, &swallowed, &replacement) || has_control[i] {
            continue;
        }
        let head_step = fusable_unary(&node.op).is_some()
            || (fusable_binary(&node.op).is_some() && node.inputs.len() == 2);
        if !head_step {
            continue;
        }
        // Only start a chain at its head: the producer of input 0 must not
        // itself be a chain candidate about to swallow this node.
        if let Some(&p) = index.get(node.inputs[0].trim_start_matches('^')) {
            let pn = &graph.nodes[p];
            let p_fusable = !in_fusion(p, &swallowed, &replacement)
                && !has_control[p]
                && (fusable_unary(&pn.op).is_some()
                    || (fusable_binary(&pn.op).is_some() && pn.inputs.len() == 2))
                && sole_consumer(p) == Some(i);
            if p_fusable {
                continue;
            }
        }
        // Greedily extend the chain downstream.
        let mut members = vec![i];
        let mut last = i;
        while let Some(c) = sole_consumer(last) {
            if in_fusion(c, &swallowed, &replacement) || has_control[c] {
                break;
            }
            let cn = &graph.nodes[c];
            let ok = (fusable_unary(&cn.op).is_some()
                || (fusable_binary(&cn.op).is_some() && cn.inputs.len() == 2))
                && cn.inputs[0] == graph.nodes[last].name;
            if !ok {
                break;
            }
            members.push(c);
            last = c;
        }
        if members.len() < 2 {
            continue;
        }
        let mut inputs = vec![node.inputs[0].clone()];
        let mut steps = Vec::new();
        for &m in &members {
            let mn = &graph.nodes[m];
            if let Some(u) = fusable_unary(&mn.op) {
                steps.push(json!([unary_name(u)]));
            } else {
                let b = fusable_binary(&mn.op).expect("checked fusable");
                inputs.push(mn.inputs[1].clone());
                steps.push(json!([binary_name(b), inputs.len() - 2]));
            }
        }
        for &m in &members {
            if m != last {
                swallowed.insert(m);
            }
        }
        replacement.insert(
            last,
            NodeDef {
                name: graph.nodes[last].name.clone(),
                op: "_FusedElementwise".to_string(),
                inputs,
                attrs: json!({ "steps": steps }),
            },
        );
    }

    GraphDef {
        nodes: graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !swallowed.contains(i))
            .map(|(i, n)| replacement.remove(&i).unwrap_or_else(|| n.clone()))
            .collect(),
    }
}

impl GraphModel {
    /// Build an executable model from a graph and its weight values. The
    /// graph is additionally run through the kernel-fusion pass; execution
    /// uses the fused graph whenever the requested fetches survive fusion.
    ///
    /// # Errors
    /// Fails when the graph has cycles, unknown input references, or a
    /// `Const`/`VariableV2` node without a supplied weight.
    pub fn new(
        engine: &Engine,
        graph: GraphDef,
        weights: HashMap<String, Tensor>,
    ) -> Result<GraphModel> {
        let order = toposort(&graph)?;
        for node in &graph.nodes {
            if matches!(node.op.as_str(), "Const" | "VariableV2") && !weights.contains_key(&node.name)
            {
                return Err(Error::Serialization {
                    message: format!("missing weight for node {}", node.name),
                });
            }
        }
        let fused = fuse_graph(&graph, &weights);
        let fused_order = toposort(&fused)?;
        Ok(GraphModel { engine: engine.clone(), graph, fused, weights, order, fused_order })
    }

    /// Node count of the fused graph (< the original when patterns matched).
    pub fn fused_node_count(&self) -> usize {
        self.fused.nodes.len()
    }

    /// Node count of the original (unfused) graph.
    pub fn node_count(&self) -> usize {
        self.graph.nodes.len()
    }

    /// The engine this model executes on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Names of the graph's `Placeholder` nodes — the feeds a serving layer
    /// must bind.
    pub fn placeholder_names(&self) -> Vec<&str> {
        self.graph
            .nodes
            .iter()
            .filter(|n| n.op == "Placeholder")
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Names of the graph's terminal nodes (no consumers) — the natural
    /// fetches for inference.
    pub fn output_names(&self) -> Vec<&str> {
        let consumed: HashSet<&str> = self
            .graph
            .nodes
            .iter()
            .flat_map(|n| n.inputs.iter().map(|i| i.trim_start_matches('^')))
            .collect();
        self.graph
            .nodes
            .iter()
            .filter(|n| !consumed.contains(n.name.as_str()) && n.op != "Placeholder")
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Bytes resident in this model's uploaded weight tensors.
    pub fn weight_bytes(&self) -> usize {
        self.weights.values().map(Tensor::bytes).sum()
    }

    /// Dispose every uploaded weight tensor. The model is unusable
    /// afterwards — this is the serving-cache eviction path, which releases
    /// the weights' device memory back to `Engine::memory()` accounting.
    pub fn dispose_weights(&self) {
        for t in self.weights.values() {
            t.dispose();
        }
    }

    /// Execute the graph: bind `feeds` to placeholders, return the tensors
    /// of `fetches`. All intermediates are disposed. Runs the fused graph
    /// unless a fetch names a node the fusion pass eliminated, in which case
    /// the original graph runs instead.
    ///
    /// # Errors
    /// Fails on missing feeds/fetches or unsupported ops.
    pub fn execute(&self, feeds: &[(&str, &Tensor)], fetches: &[&str]) -> Result<Vec<Tensor>> {
        let fused_has_all = fetches
            .iter()
            .all(|f| self.fused.nodes.iter().any(|n| n.name == *f));
        let (graph, order) = if fused_has_all {
            (&self.fused, &self.fused_order)
        } else {
            (&self.graph, &self.order)
        };
        self.engine.clone().tidy(|| self.execute_inner(graph, order, feeds, fetches))
    }

    fn execute_inner(
        &self,
        graph: &GraphDef,
        order: &[usize],
        feeds: &[(&str, &Tensor)],
        fetches: &[&str],
    ) -> Result<Vec<Tensor>> {
        let mut values: HashMap<&str, Tensor> = HashMap::new();
        for &i in order {
            let node = &graph.nodes[i];
            let get = |k: usize| -> Result<&Tensor> {
                let name = node.inputs[k].trim_start_matches('^');
                values
                    .get(name)
                    .ok_or_else(|| Error::invalid("GraphModel", format!("input {name} not computed")))
            };
            let out = match node.op.as_str() {
                "Placeholder" => {
                    let fed = feeds.iter().find(|(n, _)| *n == node.name).ok_or_else(|| {
                        Error::invalid("GraphModel", format!("no feed for placeholder {}", node.name))
                    })?;
                    ops::identity(fed.1)?
                }
                "Const" | "VariableV2" => {
                    ops::identity(&self.weights[&node.name])?
                }
                "MatMul" => ops::matmul(get(0)?, get(1)?, false, false)?,
                "Add" | "AddV2" | "BiasAdd" => ops::add(get(0)?, get(1)?)?,
                "Sub" => ops::sub(get(0)?, get(1)?)?,
                "Mul" => ops::mul(get(0)?, get(1)?)?,
                "RealDiv" | "Div" => ops::div(get(0)?, get(1)?)?,
                "Relu" => ops::relu(get(0)?)?,
                "Relu6" => ops::relu6(get(0)?)?,
                "Sigmoid" => ops::sigmoid(get(0)?)?,
                "Tanh" => ops::tanh(get(0)?)?,
                "Softmax" => ops::softmax(get(0)?)?,
                "Identity" => ops::identity(get(0)?)?,
                "Reshape" => {
                    let target: Vec<usize> = node
                        .attrs
                        .get("shape")
                        .and_then(Value::as_array)
                        .map(|a| a.iter().filter_map(Value::as_u64).map(|d| d as usize).collect())
                        .ok_or_else(|| Error::Serialization {
                            message: format!("Reshape {} missing shape attr", node.name),
                        })?;
                    let x = get(0)?;
                    // A leading 0 means "keep the batch dim".
                    let dims: Vec<usize> = target
                        .iter()
                        .enumerate()
                        .map(|(i, &d)| if d == 0 && i == 0 { x.shape_ref().dim(0) } else { d })
                        .collect();
                    ops::reshape(x, Shape::new(dims))?
                }
                "Conv2D" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::conv2d(get(0)?, get(1)?, strides, attr_padding(node)?, (1, 1))?
                }
                "DepthwiseConv2dNative" => {
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::depthwise_conv2d(get(0)?, get(1)?, strides, attr_padding(node)?, (1, 1))?
                }
                "MaxPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::max_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "AvgPool" => {
                    let window = attr_pair(node, "ksize", (2, 2));
                    let strides = attr_pair(node, "strides", window);
                    ops::avg_pool(get(0)?, window, strides, attr_padding(node)?)?
                }
                "_FusedMatMul" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    ops::fused_matmul(get(0)?, get(1)?, bias, act, false, false)?
                }
                "_FusedConv2D" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::fused_conv2d(
                        get(0)?,
                        get(1)?,
                        bias,
                        act,
                        strides,
                        attr_padding(node)?,
                        (1, 1),
                    )?
                }
                "_FusedDepthwiseConv2dNative" => {
                    let (bias, act) = fused_epilogue_args(node, &get)?;
                    let strides = attr_pair(node, "strides", (1, 1));
                    ops::fused_depthwise_conv2d(
                        get(0)?,
                        get(1)?,
                        bias,
                        act,
                        strides,
                        attr_padding(node)?,
                        (1, 1),
                    )?
                }
                "_FusedElementwise" => {
                    let steps = parse_steps(node)?;
                    let extras: Vec<&Tensor> =
                        (1..node.inputs.len()).map(&get).collect::<Result<_>>()?;
                    ops::fused_elementwise(get(0)?, &extras, &steps)?
                }
                "Mean" => {
                    // Reduce over attr axes (default: spatial dims 1,2).
                    let axes: Vec<isize> = node
                        .attrs
                        .get("axes")
                        .and_then(Value::as_array)
                        .map(|a| a.iter().filter_map(Value::as_i64).map(|d| d as isize).collect())
                        .unwrap_or_else(|| vec![1, 2]);
                    ops::mean(get(0)?, Some(&axes), false)?
                }
                other => {
                    return Err(Error::invalid(
                        "GraphModel",
                        format!("unsupported op {other} (node {})", node.name),
                    ))
                }
            };
            values.insert(node.name.as_str(), out);
        }
        fetches
            .iter()
            .map(|&f| {
                values
                    .get(f)
                    .cloned()
                    .ok_or_else(|| Error::invalid("GraphModel", format!("unknown fetch {f}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn mlp_graph() -> GraphDef {
        let mut g = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w1", "VariableV2", &[]),
            ("b1", "VariableV2", &[]),
            ("mm1", "MatMul", &["x", "w1"]),
            ("z1", "BiasAdd", &["mm1", "b1"]),
            ("h", "Relu", &["z1"]),
            ("w2", "VariableV2", &[]),
            ("logits", "MatMul", &["h", "w2"]),
            ("probs", "Softmax", &["logits"]),
        ]);
        // Deliberately shuffle to exercise the topological sort.
        g.nodes.reverse();
        g
    }

    fn mlp_weights(e: &Engine) -> HashMap<String, Tensor> {
        let mut w = HashMap::new();
        w.insert("w1".to_string(), e.tensor_2d(&[1.0, -1.0, 0.5, 0.5], 2, 2).unwrap());
        w.insert("b1".to_string(), e.tensor_1d(&[0.1, -0.1]).unwrap());
        w.insert("w2".to_string(), e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap());
        w
    }

    #[test]
    fn executes_an_mlp_graph() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert_eq!(probs.len(), 2);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-5);
        // Manual forward: z = [1*1+2*0.5+0.1, -1+1-0.1] = [2.1, -0.1];
        // h = [2.1, 0]; logits = h; softmax(2.1, 0).
        let e0 = (2.1f32).exp();
        let expect = e0 / (e0 + 1.0);
        assert!((probs[0] - expect).abs() < 1e-4);
    }

    #[test]
    fn pruned_training_graph_executes(){
        // End-to-end Sec 5.1 path: prune the training graph, execute it.
        let e = engine();
        let training = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("y", "MatMul", &["x", "w"]),
            ("out", "Softmax", &["y"]),
            ("labels", "Placeholder", &[]),
            ("grad", "MatMul", &["x", "labels"]),
            ("train", "ApplyGradientDescent", &["w", "grad"]),
            ("save", "SaveV2", &["w"]),
        ]);
        let pruned = training.prune(&["out"]).unwrap();
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        let model = GraphModel::new(&e, pruned, weights).unwrap();
        let x = e.tensor_2d(&[3.0, 1.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["out"]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert!(probs[0] > probs[1]);
    }

    #[test]
    fn conv_graph_with_attrs() {
        let e = engine();
        let mut graph = GraphDef::from_triples(&[
            ("img", "Placeholder", &[]),
            ("filter", "Const", &[]),
            ("conv", "Conv2D", &["img", "filter"]),
            ("act", "Relu6", &["conv"]),
            ("pool", "MaxPool", &["act"]),
        ]);
        graph.nodes[2].attrs = serde_json::json!({ "strides": [1, 1], "padding": "SAME" });
        graph.nodes[4].attrs = serde_json::json!({ "ksize": [2, 2], "padding": "VALID" });
        let mut weights = HashMap::new();
        weights.insert("filter".to_string(), e.tensor_4d(&[1.0], 1, 1, 1, 1).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        let img = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let out = model.execute(&[("img", &img)], &["pool"]).unwrap();
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![4.0]);
    }

    #[test]
    fn missing_weight_and_unknown_op_error() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("w", "VariableV2", &[])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());

        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[]), ("q", "QuantumOp", &["x"])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(model.execute(&[("x", &x)], &["q"]).is_err());
    }

    #[test]
    fn fusion_collapses_matmul_bias_relu() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        // mm1 + z1 + h collapse into one _FusedMatMul named "h".
        assert_eq!(model.node_count(), 9);
        assert_eq!(model.fused_node_count(), 7);
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedMatMul" && n.name == "h"));
    }

    #[test]
    fn fused_graph_matches_unfused_bitwise() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0, -0.5, 3.0], 2, 2).unwrap();
        // "probs" survives fusion → fused execution; "z1" was swallowed →
        // the same call falls back to the unfused graph.
        let fused = model.execute(&[("x", &x)], &["probs"]).unwrap();
        let unfused = model.execute(&[("x", &x)], &["probs", "z1"]).unwrap();
        assert_eq!(fused[0].to_f32_vec().unwrap(), unfused[0].to_f32_vec().unwrap());
    }

    #[test]
    fn fetching_swallowed_intermediate_falls_back() {
        let e = engine();
        let model = GraphModel::new(&e, mlp_graph(), mlp_weights(&e)).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["z1"]).unwrap();
        // z = [1*1+2*0.5+0.1, -1+1-0.1].
        let z = out[0].to_f32_vec().unwrap();
        assert!((z[0] - 2.1).abs() < 1e-5);
        assert!((z[1] + 0.1).abs() < 1e-5);
    }

    #[test]
    fn elementwise_chain_fuses() {
        let e = engine();
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("s", "Const", &[]),
            ("scaled", "Mul", &["x", "s"]),
            ("shifted", "Add", &["scaled", "s"]),
            ("act", "Relu", &["shifted"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("s".to_string(), e.tensor_1d(&[2.0]).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        // scaled + shifted + act collapse into one _FusedElementwise.
        assert_eq!(model.fused_node_count(), 3);
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedElementwise" && n.name == "act"));
        let x = e.tensor_1d(&[-3.0, 0.5]).unwrap();
        let out = model.execute(&[("x", &x)], &["act"]).unwrap();
        // relu(x*2 + 2) = [0, 3].
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![0.0, 3.0]);
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let e = engine();
        // z feeds both the activation and a second add: not fusable.
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("b", "VariableV2", &[]),
            ("mm", "MatMul", &["x", "w"]),
            ("z", "BiasAdd", &["mm", "b"]),
            ("h", "Relu", &["z"]),
            ("sum", "Add", &["h", "z"]),
        ]);
        let mut weights = HashMap::new();
        weights.insert("w".to_string(), e.eye(2).unwrap());
        weights.insert("b".to_string(), e.tensor_1d(&[1.0, -1.0]).unwrap());
        let model = GraphModel::new(&e, graph, weights).unwrap();
        // mm+z fuse (z has 2 consumers → stops there? No: z is the bias add
        // and must be the sole consumer chain END; mm's sole consumer z
        // qualifies, z keeps its name, so "h" and "sum" still resolve).
        assert!(model.fused.nodes.iter().any(|n| n.op == "_FusedMatMul" && n.name == "z"));
        let x = e.tensor_2d(&[3.0, 4.0], 1, 2).unwrap();
        let out = model.execute(&[("x", &x)], &["sum"]).unwrap();
        // z = [4, 3]; h = [4, 3]; sum = [8, 6].
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![8.0, 6.0]);
    }

    #[test]
    fn cycle_detection() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("a", "Relu", &["b"]), ("b", "Relu", &["a"])]);
        assert!(GraphModel::new(&e, graph, HashMap::new()).is_err());
    }

    #[test]
    fn missing_feed_errors() {
        let e = engine();
        let graph = GraphDef::from_triples(&[("x", "Placeholder", &[])]);
        let model = GraphModel::new(&e, graph, HashMap::new()).unwrap();
        assert!(model.execute(&[], &["x"]).is_err());
    }
}
