//! Serialized model artifacts: topology, weight specs, weight bytes.

use crate::quantize::Quantization;
use serde_json::{json, Value};
use webml_core::Error;

/// Per-channel quantization parameters along one axis (conv filters).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQuant {
    /// The channel axis (output channels: last axis for HWIO filters).
    pub axis: usize,
    /// One dequantization scale per channel.
    pub scales: Vec<f32>,
    /// One dequantization minimum per channel.
    pub mins: Vec<f32>,
}

/// Quantization metadata attached to a weight spec.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantInfo {
    /// Integer width used.
    pub kind: Quantization,
    /// Dequantization scale (per-tensor; envelope scale when per-channel).
    pub scale: f32,
    /// Dequantization minimum (per-tensor; envelope min when per-channel).
    pub min: f32,
    /// Per-channel parameters, when quantized per channel. `scale`/`min`
    /// then hold a whole-tensor envelope for error-bound reporting only.
    pub per_channel: Option<ChannelQuant>,
}

/// Description of one weight inside the flattened weight-data buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSpec {
    /// Canonical weight name (`layer/kernel`).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Quantization, if any.
    pub quantization: Option<QuantInfo>,
}

impl WeightSpec {
    /// A full-precision (f32) weight.
    pub fn full(name: String, shape: Vec<usize>) -> WeightSpec {
        WeightSpec { name, shape, quantization: None }
    }

    /// A quantized weight with per-tensor scale/min.
    pub fn quantized(
        name: String,
        shape: Vec<usize>,
        kind: Quantization,
        scale: f32,
        min: f32,
    ) -> WeightSpec {
        WeightSpec {
            name,
            shape,
            quantization: Some(QuantInfo { kind, scale, min, per_channel: None }),
        }
    }

    /// A weight quantized per channel along `axis`. The envelope
    /// `scale`/`min` are derived from the channel extremes.
    pub fn quantized_per_channel(
        name: String,
        shape: Vec<usize>,
        kind: Quantization,
        axis: usize,
        scales: Vec<f32>,
        mins: Vec<f32>,
    ) -> WeightSpec {
        let scale = scales.iter().copied().fold(0.0f32, f32::max).max(f32::MIN_POSITIVE);
        let min = mins.iter().copied().fold(f32::INFINITY, f32::min);
        let min = if min.is_finite() { min } else { 0.0 };
        WeightSpec {
            name,
            shape,
            quantization: Some(QuantInfo {
                kind,
                scale,
                min,
                per_channel: Some(ChannelQuant { axis, scales, mins }),
            }),
        }
    }

    /// Bytes this weight occupies in the data buffer.
    pub fn byte_len(&self) -> usize {
        let count: usize = self.shape.iter().product();
        match &self.quantization {
            None => count * 4,
            Some(q) => count * q.kind.byte_size(),
        }
    }

    /// Manifest JSON entry (tfjs `weightsManifest[].weights[]` style).
    pub fn to_json(&self) -> Value {
        match &self.quantization {
            None => json!({ "name": self.name, "shape": self.shape, "dtype": "float32" }),
            Some(q) => {
                let mut quant = vec![
                    ("dtype".to_string(), json!(q.kind.name())),
                    ("scale".to_string(), json!(q.scale)),
                    ("min".to_string(), json!(q.min)),
                ];
                if let Some(pc) = &q.per_channel {
                    quant.push(("axis".to_string(), json!(pc.axis)));
                    quant.push(("scales".to_string(), json!(pc.scales)));
                    quant.push(("mins".to_string(), json!(pc.mins)));
                }
                json!({
                    "name": self.name,
                    "shape": self.shape,
                    "dtype": "float32",
                    "quantization": Value::Object(quant),
                })
            }
        }
    }

    /// Parse a manifest entry.
    ///
    /// # Errors
    /// Fails on missing fields.
    pub fn from_json(v: &Value) -> Result<WeightSpec, Error> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::Serialization { message: "weight missing name".into() })?
            .to_string();
        let shape: Vec<usize> = v
            .get("shape")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Serialization { message: "weight missing shape".into() })?
            .iter()
            .filter_map(Value::as_u64)
            .map(|d| d as usize)
            .collect();
        let quantization = match v.get("quantization") {
            None => None,
            Some(q) => {
                let dtype_str = q.get("dtype").and_then(Value::as_str).ok_or_else(|| {
                    Error::Serialization {
                        message: format!("weight '{name}': quantization entry is missing a dtype"),
                    }
                })?;
                // An unrecognized dtype (e.g. "int8") must be a hard error:
                // treating it as unquantized would reinterpret the raw
                // quantized bytes as f32 garbage.
                let kind = Quantization::from_name(dtype_str).ok_or_else(|| {
                    Error::invalid(
                        "weight_spec",
                        format!(
                            "weight '{name}': unsupported quantization dtype '{dtype_str}' (supported: uint8, uint16); refusing to reinterpret quantized bytes as float32"
                        ),
                    )
                })?;
                let per_channel = match q.get("scales").and_then(Value::as_array) {
                    None => None,
                    Some(scales_json) => {
                        let axis = q.get("axis").and_then(Value::as_u64).ok_or_else(|| {
                            Error::Serialization {
                                message: format!(
                                    "weight '{name}': per-channel quantization is missing its axis"
                                ),
                            }
                        })? as usize;
                        let scales: Vec<f32> = scales_json
                            .iter()
                            .filter_map(Value::as_f64)
                            .map(|s| s as f32)
                            .collect();
                        let mins: Vec<f32> = q
                            .get("mins")
                            .and_then(Value::as_array)
                            .map(|a| a.iter().filter_map(Value::as_f64).map(|m| m as f32).collect())
                            .unwrap_or_default();
                        if scales.len() != mins.len() || scales.len() != shape.get(axis).copied().unwrap_or(0) {
                            return Err(Error::Serialization {
                                message: format!(
                                    "weight '{name}': per-channel scales/mins do not match axis {axis} of shape {shape:?}"
                                ),
                            });
                        }
                        Some(ChannelQuant { axis, scales, mins })
                    }
                };
                Some(QuantInfo {
                    kind,
                    scale: q.get("scale").and_then(Value::as_f64).unwrap_or(1.0) as f32,
                    min: q.get("min").and_then(Value::as_f64).unwrap_or(0.0) as f32,
                    per_channel,
                })
            }
        };
        Ok(WeightSpec { name, shape, quantization })
    }
}

/// A complete serialized model: topology JSON plus weights.
#[derive(Debug, Clone)]
pub struct ModelArtifacts {
    /// The Keras-style topology.
    pub topology: Value,
    /// Weight layout within [`ModelArtifacts::weight_data`].
    pub weight_specs: Vec<WeightSpec>,
    /// Concatenated weight bytes.
    pub weight_data: bytes::Bytes,
}

impl ModelArtifacts {
    /// The `model.json` content referencing the given shard paths.
    pub fn manifest_json(&self, shard_paths: &[String]) -> Value {
        json!({
            "format": "webml-layers-model",
            "generatedBy": "webml-converter",
            "modelTopology": self.topology,
            "weightsManifest": [{
                "paths": shard_paths,
                "weights": self.weight_specs.iter().map(WeightSpec::to_json).collect::<Vec<_>>(),
            }],
        })
    }

    /// Total weight bytes.
    pub fn weight_bytes(&self) -> usize {
        self.weight_data.len()
    }

    /// Stable content hash over topology, weight specs, and weight bytes
    /// (FNV-1a). Two artifacts hash equal iff they describe the same model
    /// with the same weights — the key used by serving-layer model caches.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(serde_json::to_string(&self.topology).unwrap_or_default().as_bytes());
        for spec in &self.weight_specs {
            eat(spec.name.as_bytes());
            eat(&[0]);
            for &d in &spec.shape {
                eat(&(d as u64).to_le_bytes());
            }
            if let Some(q) = &spec.quantization {
                eat(q.kind.name().as_bytes());
                eat(&q.scale.to_le_bytes());
                eat(&q.min.to_le_bytes());
                if let Some(pc) = &q.per_channel {
                    eat(&(pc.axis as u64).to_le_bytes());
                    for s in &pc.scales {
                        eat(&s.to_le_bytes());
                    }
                    for m in &pc.mins {
                        eat(&m.to_le_bytes());
                    }
                }
            }
        }
        eat(&self.weight_data);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trip_full() {
        let s = WeightSpec::full("dense/kernel".into(), vec![3, 4]);
        let parsed = WeightSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(s.byte_len(), 48);
    }

    #[test]
    fn spec_json_round_trip_quantized() {
        let s = WeightSpec::quantized("w".into(), vec![10], Quantization::U8, 0.5, -1.0);
        let parsed = WeightSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(s.byte_len(), 10);
        let s16 = WeightSpec::quantized("w".into(), vec![10], Quantization::U16, 0.5, -1.0);
        assert_eq!(s16.byte_len(), 20);
    }

    #[test]
    fn malformed_spec_errors() {
        assert!(WeightSpec::from_json(&json!({"shape": [1]})).is_err());
        assert!(WeightSpec::from_json(&json!({"name": "w"})).is_err());
    }

    #[test]
    fn unknown_quantization_dtype_is_rejected_naming_dtype_and_tensor() {
        // Regression: an unrecognized quantization dtype used to produce a
        // generic "bad quantization dtype" serialization error; anything
        // weaker (e.g. ignoring the entry) would reinterpret quantized
        // bytes as f32 garbage. The error must be InvalidArgument and name
        // both the offending dtype and the tensor.
        let v = json!({
            "name": "conv1/kernel",
            "shape": [3, 3, 8, 16],
            "dtype": "float32",
            "quantization": {"dtype": "int8", "scale": 0.1, "min": -1.0},
        });
        let err = WeightSpec::from_json(&v).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("int8"), "{msg}");
        assert!(msg.contains("conv1/kernel"), "{msg}");
    }

    #[test]
    fn per_channel_spec_round_trips() {
        let s = WeightSpec::quantized_per_channel(
            "conv/kernel".into(),
            vec![1, 1, 2, 3],
            Quantization::U8,
            3,
            vec![0.1, 0.2, 0.3],
            vec![-1.0, 0.0, 1.0],
        );
        let parsed = WeightSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(s.byte_len(), 6);
    }

    #[test]
    fn per_channel_spec_mismatched_lengths_error() {
        let v = json!({
            "name": "w", "shape": [4], "dtype": "float32",
            "quantization": {
                "dtype": "uint8", "scale": 1.0, "min": 0.0,
                "axis": 0, "scales": [1.0, 2.0], "mins": [0.0, 0.0],
            },
        });
        assert!(WeightSpec::from_json(&v).is_err());
    }

    #[test]
    fn content_hash_distinguishes_weights_and_is_stable() {
        let make = |byte: u8| ModelArtifacts {
            topology: json!({"layers": ["dense"]}),
            weight_specs: vec![WeightSpec::full("w".into(), vec![2])],
            weight_data: bytes::Bytes::from(vec![byte; 8]),
        };
        assert_eq!(make(1).content_hash(), make(1).content_hash());
        assert_ne!(make(1).content_hash(), make(2).content_hash());
        let mut other_topology = make(1);
        other_topology.topology = json!({"layers": ["conv"]});
        assert_ne!(make(1).content_hash(), other_topology.content_hash());
    }
}
