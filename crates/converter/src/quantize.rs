//! Affine weight quantization (paper Sec 5.1: "the user can also quantize
//! the weights, reducing the model size by 4X").

use webml_core::{Error, Result};

/// Integer width for quantized storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantization {
    /// One byte per weight: 4x smaller than f32.
    U8,
    /// Two bytes per weight: 2x smaller than f32.
    U16,
}

impl Quantization {
    /// Bytes per stored value.
    pub fn byte_size(self) -> usize {
        match self {
            Quantization::U8 => 1,
            Quantization::U16 => 2,
        }
    }

    /// Number of representable levels.
    fn levels(self) -> f64 {
        match self {
            Quantization::U8 => 255.0,
            Quantization::U16 => 65_535.0,
        }
    }

    /// Manifest dtype name.
    pub fn name(self) -> &'static str {
        match self {
            Quantization::U8 => "uint8",
            Quantization::U16 => "uint16",
        }
    }

    /// Parse a manifest dtype name.
    pub fn from_name(name: &str) -> Option<Quantization> {
        match name {
            "uint8" => Some(Quantization::U8),
            "uint16" => Some(Quantization::U16),
            _ => None,
        }
    }

    /// Quantize values to bytes plus `(scale, min)` for dequantization:
    /// `value ≈ q * scale + min`.
    ///
    /// `tensor_name` identifies the weight in error messages.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when any value is NaN or ±infinity: NaN
    /// would otherwise silently encode as level 0 (dequantizing to the
    /// range minimum) and any non-finite value corrupts the min/max fold,
    /// so the whole tensor's scale would be garbage.
    pub fn quantize(self, tensor_name: &str, values: &[f32]) -> Result<(Vec<u8>, f32, f32)> {
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(Error::invalid(
                "quantize",
                format!("weight tensor '{tensor_name}' has non-finite value {v} at index {i}; refusing to quantize (NaN would decode as the range minimum)"),
            ));
        }
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (min, max) = if values.is_empty() { (0.0, 0.0) } else { (min, max) };
        let range = (max - min) as f64;
        let scale = if range == 0.0 { 1.0 } else { range / self.levels() };
        let encode = |v: f32| -> u64 {
            if range == 0.0 {
                0
            } else {
                (((v - min) as f64 / scale).round() as u64).min(self.levels() as u64)
            }
        };
        let mut out = Vec::with_capacity(values.len() * self.byte_size());
        for &v in values {
            let q = encode(v);
            match self {
                Quantization::U8 => out.push(q as u8),
                Quantization::U16 => out.extend_from_slice(&(q as u16).to_le_bytes()),
            }
        }
        Ok((out, scale as f32, min))
    }

    /// Quantize values with one `(scale, min)` pair **per channel** along
    /// `axis` — the standard treatment for conv filters, whose per-output-
    /// channel dynamic ranges differ by orders of magnitude. Returns the
    /// packed bytes (same row-major layout as the input) plus parallel
    /// `scales`/`mins` vectors of length `shape[axis]`.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `axis` is out of range, `values.len()`
    /// does not match `shape`, or any value is non-finite (same policy as
    /// [`Quantization::quantize`]).
    pub fn quantize_per_channel(
        self,
        tensor_name: &str,
        values: &[f32],
        shape: &[usize],
        axis: usize,
    ) -> Result<(Vec<u8>, Vec<f32>, Vec<f32>)> {
        let count: usize = shape.iter().product();
        if values.len() != count {
            return Err(Error::invalid(
                "quantize_per_channel",
                format!("weight tensor '{tensor_name}': {} values do not match shape {shape:?}", values.len()),
            ));
        }
        if axis >= shape.len() {
            return Err(Error::invalid(
                "quantize_per_channel",
                format!("weight tensor '{tensor_name}': axis {axis} out of range for shape {shape:?}"),
            ));
        }
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(Error::invalid(
                "quantize_per_channel",
                format!("weight tensor '{tensor_name}' has non-finite value {v} at index {i}; refusing to quantize"),
            ));
        }
        let channels = shape[axis];
        let stride: usize = shape[axis + 1..].iter().product();
        let channel_of = |i: usize| (i / stride) % channels;
        let mut mins = vec![f32::INFINITY; channels];
        let mut maxs = vec![f32::NEG_INFINITY; channels];
        for (i, &v) in values.iter().enumerate() {
            let c = channel_of(i);
            mins[c] = mins[c].min(v);
            maxs[c] = maxs[c].max(v);
        }
        let mut scales = vec![1.0f32; channels];
        for c in 0..channels {
            if !mins[c].is_finite() {
                // Empty channel slice (zero-sized tensor): neutral params.
                mins[c] = 0.0;
                maxs[c] = 0.0;
            }
            let range = (maxs[c] - mins[c]) as f64;
            scales[c] = if range == 0.0 { 1.0 } else { (range / self.levels()) as f32 };
        }
        let mut out = Vec::with_capacity(values.len() * self.byte_size());
        for (i, &v) in values.iter().enumerate() {
            let c = channel_of(i);
            let range = maxs[c] - mins[c];
            let q = if range == 0.0 {
                0u64
            } else {
                (((v - mins[c]) as f64 / scales[c] as f64).round() as u64).min(self.levels() as u64)
            };
            match self {
                Quantization::U8 => out.push(q as u8),
                Quantization::U16 => out.extend_from_slice(&(q as u16).to_le_bytes()),
            }
        }
        Ok((out, scales, mins))
    }

    /// Dequantize bytes back to f32 values.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `bytes.len()` is not a whole number
    /// of stored values: `chunks_exact` would otherwise silently drop the
    /// trailing byte(s) of a truncated or corrupt shard, producing a
    /// shorter-than-declared tensor downstream.
    pub fn dequantize(self, bytes: &[u8], scale: f32, min: f32) -> Result<Vec<f32>> {
        let rem = bytes.len() % self.byte_size();
        if rem != 0 {
            return Err(Error::invalid(
                "dequantize",
                format!(
                    "{}-byte buffer is not a whole number of {} values ({} bytes each); refusing to drop {rem} trailing byte(s) from a truncated or corrupt shard",
                    bytes.len(),
                    self.name(),
                    self.byte_size(),
                ),
            ));
        }
        Ok(match self {
            Quantization::U8 => bytes.iter().map(|&b| b as f32 * scale + min).collect(),
            Quantization::U16 => bytes
                .chunks_exact(2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]) as f32 * scale + min)
                .collect(),
        })
    }

    /// Validate that a byte buffer holds exactly the elements a declared
    /// shape calls for. Catches shard truncation/corruption that happens to
    /// stay `byte_size`-aligned, which [`Quantization::dequantize`]'s
    /// alignment check alone cannot see.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] naming the tensor on any mismatch.
    pub fn check_buffer(self, tensor_name: &str, byte_len: usize, shape: &[usize]) -> Result<()> {
        let count: usize = shape.iter().product();
        if byte_len != count * self.byte_size() {
            return Err(Error::invalid(
                "dequantize",
                format!(
                    "weight tensor '{tensor_name}': {byte_len} bytes does not match declared shape {shape:?} ({count} x {}-byte {} values = {} bytes)",
                    self.byte_size(),
                    self.name(),
                    count * self.byte_size(),
                ),
            ));
        }
        Ok(())
    }

    /// Worst-case absolute reconstruction error for a value range.
    pub fn max_error(self, min: f32, max: f32) -> f32 {
        ((max - min) as f64 / self.levels() / 2.0) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_gives_4x_reduction() {
        let values: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let (bytes, _, _) = Quantization::U8.quantize("w", &values).unwrap();
        assert_eq!(bytes.len() * 4, values.len() * 4);
        assert_eq!(bytes.len(), 100);
    }

    #[test]
    fn u16_gives_2x_reduction() {
        let values = vec![1.0f32; 50];
        let (bytes, _, _) = Quantization::U16.quantize("w", &values).unwrap();
        assert_eq!(bytes.len(), 100);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let values: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        for q in [Quantization::U8, Quantization::U16] {
            let (bytes, scale, min) = q.quantize("w", &values).unwrap();
            let back = q.dequantize(&bytes, scale, min).unwrap();
            let bound = q.max_error(-3.0, 3.0) * 1.01;
            for (a, b) in values.iter().zip(&back) {
                assert!((a - b).abs() <= bound, "{q:?}: {a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let values = vec![-2.0f32, 0.0, 2.0];
        let (bytes, scale, min) = Quantization::U8.quantize("w", &values).unwrap();
        let back = Quantization::U8.dequantize(&bytes, scale, min).unwrap();
        assert_eq!(back[0], -2.0);
        assert!((back[2] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn constant_tensor_survives() {
        let values = vec![0.7f32; 8];
        let (bytes, scale, min) = Quantization::U8.quantize("w", &values).unwrap();
        let back = Quantization::U8.dequantize(&bytes, scale, min).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn empty_input() {
        let (bytes, _, _) = Quantization::U8.quantize("w", &[]).unwrap();
        assert!(bytes.is_empty());
    }

    #[test]
    fn nan_is_rejected_naming_the_tensor() {
        for q in [Quantization::U8, Quantization::U16] {
            let err = q.quantize("conv1/kernel", &[0.5, f32::NAN, 1.0]).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("conv1/kernel"), "{msg}");
            assert!(msg.contains("index 1"), "{msg}");
        }
    }

    #[test]
    fn infinities_are_rejected() {
        for bad in [f32::INFINITY, f32::NEG_INFINITY] {
            let err = Quantization::U8.quantize("dense/bias", &[bad, 0.0]).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("dense/bias"), "{msg}");
            assert!(msg.contains("index 0"), "{msg}");
        }
    }

    #[test]
    fn finite_values_after_fix_still_round_trip() {
        // Regression guard: the finiteness check must not change the
        // encoding of healthy tensors.
        let values = vec![-1.5f32, -0.25, 0.0, 0.75, 3.0];
        let (bytes, scale, min) = Quantization::U16.quantize("w", &values).unwrap();
        let back = Quantization::U16.dequantize(&bytes, scale, min).unwrap();
        let bound = Quantization::U16.max_error(-1.5, 3.0) * 1.01;
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= bound);
        }
    }

    #[test]
    fn truncated_u16_buffer_is_rejected_not_silently_shortened() {
        // Regression: chunks_exact(2) used to drop the trailing odd byte,
        // so a truncated shard decoded to one fewer value than declared.
        let (mut bytes, scale, min) = Quantization::U16.quantize("w", &[1.0, 2.0, 3.0]).unwrap();
        bytes.pop(); // simulate a truncated shard
        let err = Quantization::U16.dequantize(&bytes, scale, min).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("uint16"), "{msg}");
        assert!(msg.contains("trailing"), "{msg}");
        assert!(matches!(err, Error::InvalidArgument { .. }));
    }

    #[test]
    fn check_buffer_catches_aligned_truncation() {
        // A U16 buffer short by a whole value passes the alignment check
        // but must fail shape validation.
        assert!(Quantization::U16.check_buffer("w", 6, &[2, 2]).is_err());
        assert!(Quantization::U16.check_buffer("w", 8, &[2, 2]).is_ok());
        let err = Quantization::U8.check_buffer("conv/kernel", 3, &[2, 2]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("conv/kernel"), "{msg}");
        assert!(msg.contains("[2, 2]"), "{msg}");
    }

    #[test]
    fn per_channel_tracks_each_channel_range() {
        // Two output channels with wildly different ranges: per-tensor
        // quantization would burn all resolution on the large channel.
        let shape = [4usize, 2usize];
        // Column 0 in [0, 100], column 1 in [0, 0.1].
        let values = vec![0.0, 0.0, 30.0, 0.03, 70.0, 0.07, 100.0, 0.1];
        let (bytes, scales, mins) =
            Quantization::U8.quantize_per_channel("w", &values, &shape, 1).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(scales.len(), 2);
        assert_eq!(mins.len(), 2);
        for (i, &v) in values.iter().enumerate() {
            let c = i % 2;
            let back = bytes[i] as f32 * scales[c] + mins[c];
            let bound = if c == 0 {
                Quantization::U8.max_error(0.0, 100.0)
            } else {
                Quantization::U8.max_error(0.0, 0.1)
            } * 1.01;
            assert!((back - v).abs() <= bound, "channel {c}: {back} vs {v}");
        }
        // The small channel keeps fine resolution: error way below the
        // per-tensor bound of ~0.2.
        assert!(scales[1] < 1e-3, "scales: {scales:?}");
    }

    #[test]
    fn per_channel_rejects_bad_axis_and_length() {
        assert!(Quantization::U8.quantize_per_channel("w", &[1.0; 4], &[2, 2], 2).is_err());
        assert!(Quantization::U8.quantize_per_channel("w", &[1.0; 3], &[2, 2], 1).is_err());
        let err = Quantization::U8
            .quantize_per_channel("w", &[1.0, f32::NAN], &[2], 0)
            .unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
