//! Affine weight quantization (paper Sec 5.1: "the user can also quantize
//! the weights, reducing the model size by 4X").

use webml_core::{Error, Result};

/// Integer width for quantized storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantization {
    /// One byte per weight: 4x smaller than f32.
    U8,
    /// Two bytes per weight: 2x smaller than f32.
    U16,
}

impl Quantization {
    /// Bytes per stored value.
    pub fn byte_size(self) -> usize {
        match self {
            Quantization::U8 => 1,
            Quantization::U16 => 2,
        }
    }

    /// Number of representable levels.
    fn levels(self) -> f64 {
        match self {
            Quantization::U8 => 255.0,
            Quantization::U16 => 65_535.0,
        }
    }

    /// Manifest dtype name.
    pub fn name(self) -> &'static str {
        match self {
            Quantization::U8 => "uint8",
            Quantization::U16 => "uint16",
        }
    }

    /// Parse a manifest dtype name.
    pub fn from_name(name: &str) -> Option<Quantization> {
        match name {
            "uint8" => Some(Quantization::U8),
            "uint16" => Some(Quantization::U16),
            _ => None,
        }
    }

    /// Quantize values to bytes plus `(scale, min)` for dequantization:
    /// `value ≈ q * scale + min`.
    ///
    /// `tensor_name` identifies the weight in error messages.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when any value is NaN or ±infinity: NaN
    /// would otherwise silently encode as level 0 (dequantizing to the
    /// range minimum) and any non-finite value corrupts the min/max fold,
    /// so the whole tensor's scale would be garbage.
    pub fn quantize(self, tensor_name: &str, values: &[f32]) -> Result<(Vec<u8>, f32, f32)> {
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(Error::invalid(
                "quantize",
                format!("weight tensor '{tensor_name}' has non-finite value {v} at index {i}; refusing to quantize (NaN would decode as the range minimum)"),
            ));
        }
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (min, max) = if values.is_empty() { (0.0, 0.0) } else { (min, max) };
        let range = (max - min) as f64;
        let scale = if range == 0.0 { 1.0 } else { range / self.levels() };
        let encode = |v: f32| -> u64 {
            if range == 0.0 {
                0
            } else {
                (((v - min) as f64 / scale).round() as u64).min(self.levels() as u64)
            }
        };
        let mut out = Vec::with_capacity(values.len() * self.byte_size());
        for &v in values {
            let q = encode(v);
            match self {
                Quantization::U8 => out.push(q as u8),
                Quantization::U16 => out.extend_from_slice(&(q as u16).to_le_bytes()),
            }
        }
        Ok((out, scale as f32, min))
    }

    /// Dequantize bytes back to f32 values.
    pub fn dequantize(self, bytes: &[u8], scale: f32, min: f32) -> Vec<f32> {
        match self {
            Quantization::U8 => bytes.iter().map(|&b| b as f32 * scale + min).collect(),
            Quantization::U16 => bytes
                .chunks_exact(2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]) as f32 * scale + min)
                .collect(),
        }
    }

    /// Worst-case absolute reconstruction error for a value range.
    pub fn max_error(self, min: f32, max: f32) -> f32 {
        ((max - min) as f64 / self.levels() / 2.0) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_gives_4x_reduction() {
        let values: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let (bytes, _, _) = Quantization::U8.quantize("w", &values).unwrap();
        assert_eq!(bytes.len() * 4, values.len() * 4);
        assert_eq!(bytes.len(), 100);
    }

    #[test]
    fn u16_gives_2x_reduction() {
        let values = vec![1.0f32; 50];
        let (bytes, _, _) = Quantization::U16.quantize("w", &values).unwrap();
        assert_eq!(bytes.len(), 100);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let values: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        for q in [Quantization::U8, Quantization::U16] {
            let (bytes, scale, min) = q.quantize("w", &values).unwrap();
            let back = q.dequantize(&bytes, scale, min);
            let bound = q.max_error(-3.0, 3.0) * 1.01;
            for (a, b) in values.iter().zip(&back) {
                assert!((a - b).abs() <= bound, "{q:?}: {a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let values = vec![-2.0f32, 0.0, 2.0];
        let (bytes, scale, min) = Quantization::U8.quantize("w", &values).unwrap();
        let back = Quantization::U8.dequantize(&bytes, scale, min);
        assert_eq!(back[0], -2.0);
        assert!((back[2] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn constant_tensor_survives() {
        let values = vec![0.7f32; 8];
        let (bytes, scale, min) = Quantization::U8.quantize("w", &values).unwrap();
        let back = Quantization::U8.dequantize(&bytes, scale, min);
        assert_eq!(back, values);
    }

    #[test]
    fn empty_input() {
        let (bytes, _, _) = Quantization::U8.quantize("w", &[]).unwrap();
        assert!(bytes.is_empty());
    }

    #[test]
    fn nan_is_rejected_naming_the_tensor() {
        for q in [Quantization::U8, Quantization::U16] {
            let err = q.quantize("conv1/kernel", &[0.5, f32::NAN, 1.0]).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("conv1/kernel"), "{msg}");
            assert!(msg.contains("index 1"), "{msg}");
        }
    }

    #[test]
    fn infinities_are_rejected() {
        for bad in [f32::INFINITY, f32::NEG_INFINITY] {
            let err = Quantization::U8.quantize("dense/bias", &[bad, 0.0]).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("dense/bias"), "{msg}");
            assert!(msg.contains("index 0"), "{msg}");
        }
    }

    #[test]
    fn finite_values_after_fix_still_round_trip() {
        // Regression guard: the finiteness check must not change the
        // encoding of healthy tensors.
        let values = vec![-1.5f32, -0.25, 0.0, 0.75, 3.0];
        let (bytes, scale, min) = Quantization::U16.quantize("w", &values).unwrap();
        let back = Quantization::U16.dequantize(&bytes, scale, min);
        let bound = Quantization::U16.max_error(-1.5, 3.0) * 1.01;
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= bound);
        }
    }
}
