//! Training-op pruning (paper Sec 5.1: "TensorFlow.js optimizes the model
//! by pruning unnecessary operations (e.g. training operations)").
//!
//! A serialized TensorFlow graph carries optimizer update ops, gradient
//! subgraphs, and checkpoint save/restore machinery that inference never
//! touches. Pruning keeps only the nodes reachable backwards from the
//! requested outputs, after dropping nodes whose op type is training-only.

use serde_json::{json, Value};
use std::collections::{HashMap, HashSet};
use webml_core::{Error, Result};

/// One node of a (simplified) GraphDef.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDef {
    /// Node name.
    pub name: String,
    /// Op type (`"MatMul"`, `"ApplyGradientDescent"`, ...).
    pub op: String,
    /// Input node names.
    pub inputs: Vec<String>,
    /// Op attributes (strides, padding, ...), JSON-encoded; `Null` when the
    /// op has none.
    pub attrs: Value,
}

/// A simplified TensorFlow GraphDef.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDef {
    /// Graph nodes.
    pub nodes: Vec<NodeDef>,
}

/// Op types that only exist for training/checkpointing and are never needed
/// at inference time.
pub const TRAINING_OPS: &[&str] = &[
    "ApplyGradientDescent",
    "ApplyAdam",
    "ApplyMomentum",
    "ApplyRMSProp",
    "AssignAddVariableOp",
    "ResourceApplyGradientDescent",
    "SaveV2",
    "RestoreV2",
    "ShardedFilename",
    "MergeV2Checkpoints",
    "BroadcastGradientArgs",
    "StopGradient",
    "NoOp",
];

impl GraphDef {
    /// Build from `(name, op, inputs)` triples.
    pub fn from_triples(triples: &[(&str, &str, &[&str])]) -> GraphDef {
        GraphDef {
            nodes: triples
                .iter()
                .map(|(name, op, inputs)| NodeDef {
                    name: name.to_string(),
                    op: op.to_string(),
                    inputs: inputs.iter().map(|s| s.to_string()).collect(),
                    attrs: Value::Null,
                })
                .collect(),
        }
    }

    /// Prune to the inference subgraph feeding `outputs`: training-only ops
    /// are removed, then only nodes reachable backwards from the outputs
    /// survive. Node order is preserved.
    ///
    /// # Errors
    /// Fails when an output name does not exist.
    pub fn prune(&self, outputs: &[&str]) -> Result<GraphDef> {
        let by_name: HashMap<&str, &NodeDef> =
            self.nodes.iter().map(|n| (n.name.as_str(), n)).collect();
        for &out in outputs {
            if !by_name.contains_key(out) {
                return Err(Error::invalid("prune", format!("unknown output node {out}")));
            }
        }
        let is_training = |op: &str| TRAINING_OPS.contains(&op);
        // Backwards reachability from outputs, never entering training ops.
        let mut keep: HashSet<&str> = HashSet::new();
        let mut stack: Vec<&str> = outputs.to_vec();
        while let Some(name) = stack.pop() {
            if !keep.insert(name) {
                continue;
            }
            if let Some(node) = by_name.get(name) {
                if is_training(&node.op) {
                    return Err(Error::invalid(
                        "prune",
                        format!("output {name} is a training op ({})", node.op),
                    ));
                }
                for input in &node.inputs {
                    // Control inputs are prefixed with '^' in GraphDef.
                    let clean = input.trim_start_matches('^');
                    if let Some(dep) = by_name.get(clean) {
                        if !is_training(&dep.op) {
                            stack.push(clean);
                        }
                    }
                }
            }
        }
        Ok(GraphDef {
            nodes: self
                .nodes
                .iter()
                .filter(|n| keep.contains(n.name.as_str()))
                .map(|n| NodeDef {
                    name: n.name.clone(),
                    op: n.op.clone(),
                    // Drop references to pruned control inputs.
                    inputs: n
                        .inputs
                        .iter()
                        .filter(|i| keep.contains(i.trim_start_matches('^')))
                        .cloned()
                        .collect(),
                    attrs: n.attrs.clone(),
                })
                .collect(),
        })
    }

    /// Count of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "node": self.nodes.iter().map(|n| json!({
                "name": n.name, "op": n.op, "input": n.inputs, "attr": n.attrs,
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small training graph: inference path conv -> relu -> softmax, plus
    /// gradient and optimizer nodes, plus checkpointing.
    fn training_graph() -> GraphDef {
        GraphDef::from_triples(&[
            ("input", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("conv", "Conv2D", &["input", "w"]),
            ("relu", "Relu", &["conv"]),
            ("softmax", "Softmax", &["relu"]),
            ("labels", "Placeholder", &[]),
            ("xent", "SoftmaxCrossEntropyWithLogits", &["relu", "labels"]),
            ("grad_w", "Conv2DBackpropFilter", &["input", "xent"]),
            ("train", "ApplyGradientDescent", &["w", "grad_w"]),
            ("save", "SaveV2", &["w"]),
            ("restore", "RestoreV2", &[]),
        ])
    }

    #[test]
    fn prune_keeps_only_inference_path() {
        let g = training_graph();
        let pruned = g.prune(&["softmax"]).unwrap();
        let names: Vec<&str> = pruned.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["input", "w", "conv", "relu", "softmax"]);
        // 11 -> 5 nodes.
        assert_eq!(g.len(), 11);
        assert_eq!(pruned.len(), 5);
    }

    #[test]
    fn prune_drops_gradient_subgraph_even_if_reachable() {
        // xent reaches labels/grad path, but softmax output does not.
        let pruned = training_graph().prune(&["softmax"]).unwrap();
        assert!(!pruned.nodes.iter().any(|n| n.op.contains("Backprop")));
        assert!(!pruned.nodes.iter().any(|n| n.op == "SaveV2" || n.op == "RestoreV2"));
    }

    #[test]
    fn unknown_output_errors() {
        assert!(training_graph().prune(&["nonexistent"]).is_err());
    }

    #[test]
    fn training_output_errors() {
        assert!(training_graph().prune(&["train"]).is_err());
    }

    #[test]
    fn control_inputs_are_followed_and_cleaned() {
        let g = GraphDef::from_triples(&[
            ("a", "Const", &[]),
            ("init", "NoOp", &[]),
            ("b", "Identity", &["a", "^init"]),
        ]);
        let pruned = g.prune(&["b"]).unwrap();
        assert_eq!(pruned.len(), 2);
        // The control edge to the pruned NoOp is dropped.
        let b = pruned.nodes.iter().find(|n| n.name == "b").unwrap();
        assert_eq!(b.inputs, vec!["a"]);
    }

    #[test]
    fn json_shape() {
        let g = GraphDef::from_triples(&[("a", "Const", &[])]);
        let v = g.to_json();
        assert_eq!(v["node"][0]["op"], "Const");
    }
}
