//! Ahead-of-time execution plans for [`crate::GraphModel`] inference.
//!
//! The interpreter in `graph_exec` re-does per-model work on every request:
//! string op matching, JSON attribute parsing, string-keyed value maps, and
//! scope-end disposal that keeps every intermediate alive until the tidy
//! closes — so peak bytes grow with graph length. A [`Plan`] does that work
//! once per (graph, feed-shape signature, fetch set):
//!
//! * ops are pre-lowered into a flat `Vec<PlannedOp>` with **typed,
//!   pre-parsed attributes** ([`OpKind`]) — no `serde_json::Value` on the
//!   hot path;
//! * inputs resolve to **dense value slots** ([`Arg::Slot`]) instead of
//!   `HashMap<&str, Tensor>` lookups;
//! * weights are referenced **in place** ([`Arg::Weight`]) — no
//!   `ops::identity` dispatch per weight per call;
//! * output shapes are **inferred at build time**, which also resolves
//!   `Reshape` `0`/`-1` wildcards once instead of per call;
//! * a **liveness pass** records each slot's final consumer so the executor
//!   disposes intermediates eagerly ([`PlannedOp::dispose_after`]); peak
//!   live bytes stay bounded by the widest op window rather than the whole
//!   graph (the paper's texture-recycling argument, Sec 3.9/3.10 — under a
//!   texture byte budget this is what keeps the pager idle).
//!
//! Plans only prune to the ancestor closure of the requested fetches
//! (matching what the fetch values depend on), and are invalidated by the
//! owning model whenever [`webml_core::Engine::degradation_generation`]
//! changes, so a context loss rebuilds them against the fallback backend.

use crate::graph_exec::{
    attr_pair, attr_padding, attr_str, fusable_unary, parse_steps, resolve_reshape_dims,
};
use crate::prune::{GraphDef, NodeDef};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use webml_core::backend::{BinaryOp, UnaryOp};
use webml_core::conv_util::{conv2d_info, depthwise_conv2d_info, pool2d_info, Padding};
use webml_core::shape::{broadcast_shapes, normalize_axes, reduced_shape};
use std::sync::Mutex;
use webml_core::backend::DataFuture;
use webml_core::{
    ops, DType, Engine, Error, FenceToken, FusedStep, Result, Shape, Tensor, TensorData,
};

/// Where a planned op (or a fetch) reads a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// Output slot of an earlier op in the plan.
    Slot(usize),
    /// A resident weight tensor, referenced in place (never disposed, never
    /// copied through an identity dispatch).
    Weight(usize),
    /// A caller-supplied feed, positional in [`Plan::feed_names`] order.
    Feed(usize),
}

/// A graph op with its attributes fully pre-parsed.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// 2-D matrix multiply (no transposes in the converter op set).
    MatMul,
    /// Broadcasting element-wise binary op (`BiasAdd` lowers to `Add`).
    Binary(BinaryOp),
    /// Element-wise unary activation.
    Unary(UnaryOp),
    /// Softmax over the trailing axis.
    Softmax,
    /// Data alias (free: shares the input's data container).
    Identity,
    /// Data alias under a new shape, wildcards already resolved into
    /// [`PlannedOp::out_shape`].
    Reshape,
    /// NHWC convolution.
    Conv2d {
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
    },
    /// NHWC depthwise convolution.
    DepthwiseConv2d {
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
    },
    /// Max pooling.
    MaxPool {
        /// `(window_h, window_w)`.
        window: (usize, usize),
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
    },
    /// Average pooling.
    AvgPool {
        /// `(window_h, window_w)`.
        window: (usize, usize),
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
    },
    /// Fused matmul + optional bias + optional activation.
    FusedMatMul {
        /// Whether a bias input rides in `args[2]`.
        has_bias: bool,
        /// Fused activation epilogue.
        activation: Option<UnaryOp>,
    },
    /// Fused conv2d epilogue.
    FusedConv2d {
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
        /// Whether a bias input rides in `args[2]`.
        has_bias: bool,
        /// Fused activation epilogue.
        activation: Option<UnaryOp>,
    },
    /// Fused depthwise-conv2d epilogue.
    FusedDepthwiseConv2d {
        /// `(stride_h, stride_w)`.
        strides: (usize, usize),
        /// Padding scheme.
        padding: Padding,
        /// Whether a bias input rides in `args[2]`.
        has_bias: bool,
        /// Fused activation epilogue.
        activation: Option<UnaryOp>,
    },
    /// Fused element-wise chain; extras are `args[1..]`.
    FusedElementwise {
        /// The pre-parsed chain.
        steps: Vec<FusedStep>,
    },
    /// Mean reduction over `axes` (never keeps reduced dims).
    Mean {
        /// Normalized-at-build reduction axes.
        axes: Vec<isize>,
    },
}

/// One fully lowered op in a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Typed op + attributes.
    pub kind: OpKind,
    /// Resolved data inputs (control deps only constrain the order and are
    /// dropped here).
    pub args: Vec<Arg>,
    /// Slot this op writes.
    pub out_slot: usize,
    /// Inferred output shape.
    pub out_shape: Shape,
    /// Slots whose final consumer is this op — disposed immediately after
    /// it runs. Fetched slots are exempt.
    pub dispose_after: Vec<usize>,
    /// Whether dispatch must run inside its own `tidy` scope: composite
    /// ops (matmul's rank-3 normalization, softmax's chain, the fused ops'
    /// unfused fallbacks) allocate internal handles that would otherwise
    /// pin data containers until the run's outer scope closed. Single-kernel
    /// ops skip the scope entirely — computed once at build so the hot loop
    /// pays no scope bookkeeping for them.
    pub scoped: bool,
    /// Precomputed kernel-view shapes for direct dispatch: when set, the
    /// executor calls the backend kernel through
    /// [`Engine::run_kernel_shaped`] with these per-input shapes instead of
    /// going through the composite op layer — no rank-normalization alias
    /// tensors, no per-op scope. Only populated where the reinterpretation
    /// is a pure build-time fact (rank-2 `FusedMatMul` presented as its
    /// batch-1 rank-3 kernel view).
    pub kernel_shapes: Option<Vec<Shape>>,
    /// Output dtype, propagated at build: aliases keep their input's dtype
    /// (a reshaped quantized weight stays U8), compute ops emit f32. Feeds
    /// the dtype-aware peak-memory simulation.
    pub out_dtype: DType,
    /// Whether the weight operand (`args[1]`) is a resident quantized
    /// tensor: dispatch routes to the dequant-free `fused_*_quant` op
    /// instead of the f32 kernel. Resolved once at build — the hot loop
    /// never inspects tensor dtypes.
    pub quant_rhs: bool,
    /// Source node name (error messages only).
    pub name: String,
}

/// Kernel-view shapes for ops the executor can dispatch directly, skipping
/// the composite op layer and its rank-normalization alias tensors: a
/// rank-2 `FusedMatMul` is presented to the (batched rank-3) kernel as the
/// batch-1 view `[1, m, k] x [1, k, n]` — the same reinterpretation
/// `ops::fused_matmul`'s reshapes express, resolved once at build. Bias
/// shape validation moves here too (the op layer would have done it per
/// call); a shape the kernel contract rejects simply stays on the
/// composite path.
fn direct_kernel_shapes(kind: &OpKind, arg_shapes: &[Shape]) -> Option<Vec<Shape>> {
    match kind {
        OpKind::FusedMatMul { has_bias, .. } => {
            let a = arg_shapes.first()?;
            let b = arg_shapes.get(1)?;
            if a.rank() != 2 || b.rank() != 2 {
                return None;
            }
            let mut shapes = vec![
                Shape::new(vec![1, a.dim(0), a.dim(1)]),
                Shape::new(vec![1, b.dim(0), b.dim(1)]),
            ];
            if *has_bias {
                let bias = arg_shapes.get(2)?;
                if bias.rank() != 1 || bias.dim(0) != b.dim(1) {
                    return None;
                }
                shapes.push(bias.clone());
            }
            Some(shapes)
        }
        _ => None,
    }
}

/// Ops whose dispatch may create intermediate tensor handles beyond the
/// output (and therefore need a per-op tidy scope for eager disposal to
/// stay exact). Everything else is a single `run_kernel` call.
fn needs_scope(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::MatMul
            | OpKind::Softmax
            | OpKind::FusedMatMul { .. }
            | OpKind::FusedConv2d { .. }
            | OpKind::FusedDepthwiseConv2d { .. }
            | OpKind::FusedElementwise { .. }
    )
}

/// A compiled execution plan for one (feed-shape signature, fetch set).
pub struct Plan {
    ops: Vec<PlannedOp>,
    num_slots: usize,
    /// Placeholder name + expected shape per feed index.
    feeds: Vec<(String, Shape)>,
    /// Weight node name per weight index (diagnostics).
    weight_names: Vec<String>,
    /// Resident weight handles, resolved once at build.
    weight_tensors: Vec<Tensor>,
    fetch_sources: Vec<Arg>,
    predicted_peak_bytes: usize,
    fused: bool,
    /// Recycled slot table: `run` would otherwise allocate a
    /// `Vec<Option<Tensor>>` per call, which dominates tiny-model plan
    /// overhead. Concurrent runs fall back to a fresh allocation (the pool
    /// holds at most one table; `Mutex::lock` is held only to swap).
    scratch: Mutex<Vec<Option<Tensor>>>,
}

/// Shape and dtype of a value as known during plan construction.
type BuildVal = (Arg, Shape, DType);

impl Plan {
    /// Number of executable ops in the plan (≤ graph nodes: weights and
    /// placeholders become references, unreachable nodes are pruned).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The planned ops, in execution order.
    pub fn ops(&self) -> &[PlannedOp] {
        &self.ops
    }

    /// Build-time prediction of peak live *intermediate* bytes during
    /// [`Plan::run`] (weights and feeds are resident throughout and not
    /// counted). Aliases (`Identity`/`Reshape`) are modeled as zero-byte:
    /// they share their producer's data container, exactly like the engine.
    pub fn predicted_peak_bytes(&self) -> usize {
        self.predicted_peak_bytes
    }

    /// Whether the plan was compiled from the fused graph.
    pub fn uses_fused_graph(&self) -> bool {
        self.fused
    }

    /// Bytes held by the resident weight tensors the plan references,
    /// dtype-aware: a U8 quantized weight counts one byte per code, so a
    /// quantized model reports ~4x less than its f32 twin.
    pub fn weight_bytes(&self) -> usize {
        self.weight_tensors.iter().map(Tensor::bytes).sum()
    }

    /// Build-time prediction of total resident bytes at the run's peak:
    /// weights (resident throughout) plus peak live intermediates.
    pub fn predicted_resident_bytes(&self) -> usize {
        self.weight_bytes() + self.predicted_peak_bytes
    }

    /// Placeholder names the plan binds, in feed-index order.
    pub fn feed_names(&self) -> Vec<&str> {
        self.feeds.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Compile `graph` (already toposorted via `order`) into a plan for the
    /// given feed shapes and fetches. Prunes to the ancestor closure of the
    /// fetches; resolves weights in place; infers every output shape; runs
    /// the liveness pass.
    ///
    /// # Errors
    /// Fails on unknown fetches, placeholders without a matching feed,
    /// unsupported ops, or shape mismatches discovered at build time.
    pub(crate) fn build(
        graph: &GraphDef,
        order: &[usize],
        weights: &HashMap<String, Tensor>,
        feed_shapes: &[(String, Vec<usize>)],
        fetches: &[&str],
        fused: bool,
    ) -> Result<Plan> {
        let _span = webml_telemetry::span("plan.build", "plan");
        let index: HashMap<&str, usize> =
            graph.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();

        // Ancestor closure of the fetches (control deps count: they
        // constrain execution even though they carry no data).
        let mut needed: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = Vec::new();
        for &f in fetches {
            let &i = index.get(f).ok_or_else(|| {
                Error::invalid("plan", format!("unknown fetch {f}"))
            })?;
            if needed.insert(i) {
                stack.push(i);
            }
        }
        while let Some(i) = stack.pop() {
            for input in &graph.nodes[i].inputs {
                let clean = input.trim_start_matches('^');
                let &j = index.get(clean).ok_or_else(|| Error::Serialization {
                    message: format!(
                        "node {} references unknown input {clean}",
                        graph.nodes[i].name
                    ),
                })?;
                if needed.insert(j) {
                    stack.push(j);
                }
            }
        }

        let feed_lookup: HashMap<&str, usize> =
            feed_shapes.iter().enumerate().map(|(i, (n, _))| (n.as_str(), i)).collect();
        let mut vals: HashMap<&str, BuildVal> = HashMap::new();
        let mut weight_names: Vec<String> = Vec::new();
        let mut weight_tensors: Vec<Tensor> = Vec::new();
        let mut ops_list: Vec<PlannedOp> = Vec::new();

        for &i in order {
            if !needed.contains(&i) {
                continue;
            }
            let node = &graph.nodes[i];
            match node.op.as_str() {
                "Placeholder" => {
                    let &fi = feed_lookup.get(node.name.as_str()).ok_or_else(|| {
                        Error::invalid(
                            "plan",
                            format!("no feed for placeholder {}", node.name),
                        )
                    })?;
                    let shape = Shape::new(feed_shapes[fi].1.clone());
                    vals.insert(node.name.as_str(), (Arg::Feed(fi), shape, DType::F32));
                }
                "Const" | "VariableV2" => {
                    let t = weights.get(&node.name).ok_or_else(|| Error::Serialization {
                        message: format!("missing weight for node {}", node.name),
                    })?;
                    let wi = weight_tensors.len();
                    weight_names.push(node.name.clone());
                    weight_tensors.push(t.clone());
                    vals.insert(
                        node.name.as_str(),
                        (Arg::Weight(wi), t.shape_ref().clone(), t.dtype()),
                    );
                }
                _ => {
                    let mut args: Vec<Arg> = Vec::new();
                    let mut arg_shapes: Vec<Shape> = Vec::new();
                    let mut arg_dtypes: Vec<DType> = Vec::new();
                    for input in node.inputs.iter().filter(|s| !s.starts_with('^')) {
                        let (arg, shape, dtype) = vals.get(input.as_str()).ok_or_else(|| {
                            Error::invalid(
                                "plan",
                                format!("input {input} of {} not computed", node.name),
                            )
                        })?;
                        args.push(*arg);
                        arg_shapes.push(shape.clone());
                        arg_dtypes.push(*dtype);
                    }
                    let (kind, out_shape) = lower_node(node, &arg_shapes)?;
                    // Aliases carry their input's dtype (a reshaped U8
                    // weight stays one byte per code); compute ops emit f32.
                    let out_dtype = match kind {
                        OpKind::Identity | OpKind::Reshape => {
                            arg_dtypes.first().copied().unwrap_or(DType::F32)
                        }
                        _ => DType::F32,
                    };
                    // A quantized weight operand routes to the dequant-free
                    // fused quant kernels: no direct f32 kernel dispatch,
                    // and the composite quant op needs a scope.
                    let quant_rhs = matches!(
                        kind,
                        OpKind::MatMul
                            | OpKind::Conv2d { .. }
                            | OpKind::DepthwiseConv2d { .. }
                            | OpKind::FusedMatMul { .. }
                            | OpKind::FusedConv2d { .. }
                            | OpKind::FusedDepthwiseConv2d { .. }
                    ) && matches!(
                        args.get(1),
                        Some(Arg::Weight(w)) if weight_tensors[*w].is_quantized()
                    );
                    let out_slot = ops_list.len();
                    vals.insert(
                        node.name.as_str(),
                        (Arg::Slot(out_slot), out_shape.clone(), out_dtype),
                    );
                    let kernel_shapes = if quant_rhs {
                        None
                    } else {
                        direct_kernel_shapes(&kind, &arg_shapes)
                    };
                    let scoped = quant_rhs || (needs_scope(&kind) && kernel_shapes.is_none());
                    ops_list.push(PlannedOp {
                        kind,
                        args,
                        out_slot,
                        out_shape,
                        dispose_after: Vec::new(),
                        scoped,
                        kernel_shapes,
                        out_dtype,
                        quant_rhs,
                        name: node.name.clone(),
                    });
                }
            }
        }

        let fetch_sources: Vec<Arg> = fetches
            .iter()
            .map(|&f| vals.get(f).map(|(a, _, _)| *a).expect("fetch resolved above"))
            .collect();
        let feeds: Vec<(String, Shape)> = feed_shapes
            .iter()
            .map(|(n, d)| (n.clone(), Shape::new(d.clone())))
            .collect();

        let num_slots = ops_list.len();
        Self::analyze_liveness(&mut ops_list, num_slots, &fetch_sources);
        let predicted_peak_bytes = Self::simulate_peak_bytes(&ops_list, num_slots);

        Ok(Plan {
            ops: ops_list,
            num_slots,
            feeds,
            weight_names,
            weight_tensors,
            fetch_sources,
            predicted_peak_bytes,
            fused,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Record each slot's final consumer in `dispose_after`. A slot nobody
    /// consumes (control-dep-only producers) dies right after its own op;
    /// fetched slots are exempt and survive the run.
    fn analyze_liveness(ops: &mut [PlannedOp], num_slots: usize, fetch_sources: &[Arg]) {
        const KEEP: usize = usize::MAX;
        let mut last_use: Vec<usize> = vec![0; num_slots];
        for (oi, op) in ops.iter().enumerate() {
            last_use[op.out_slot] = oi;
        }
        for (oi, op) in ops.iter().enumerate() {
            for arg in &op.args {
                if let Arg::Slot(s) = arg {
                    last_use[*s] = oi;
                }
            }
        }
        for src in fetch_sources {
            if let Arg::Slot(s) = src {
                last_use[*s] = KEEP;
            }
        }
        for (s, &oi) in last_use.iter().enumerate() {
            if oi != KEEP {
                ops[oi].dispose_after.push(s);
            }
        }
    }

    /// Replay the plan against the engine's accounting rules: every
    /// non-alias op allocates `size * dtype_bytes` bytes (f32 data
    /// containers for compute ops; U8 containers — one byte per code — for
    /// quantized values); aliases join their producer's container and free
    /// nothing until the whole alias group is disposed; `dispose_after`
    /// releases eagerly.
    fn simulate_peak_bytes(ops: &[PlannedOp], num_slots: usize) -> usize {
        let mut slot_group: Vec<Option<usize>> = vec![None; num_slots];
        let mut group_bytes: Vec<usize> = Vec::new();
        let mut group_refs: Vec<usize> = Vec::new();
        let mut live = 0usize;
        let mut peak = 0usize;
        for op in ops {
            let alias = matches!(op.kind, OpKind::Identity | OpKind::Reshape);
            let group = if alias {
                // Aliasing a weight or feed never allocates and never frees.
                match op.args.first() {
                    Some(Arg::Slot(s)) => slot_group[*s],
                    _ => None,
                }
            } else {
                let g = group_bytes.len();
                let bytes = op.out_shape.size() * op.out_dtype.byte_size();
                group_bytes.push(bytes);
                group_refs.push(0);
                live += bytes;
                peak = peak.max(live);
                Some(g)
            };
            if let Some(g) = group {
                group_refs[g] += 1;
            }
            slot_group[op.out_slot] = group;
            for &s in &op.dispose_after {
                if let Some(g) = slot_group[s] {
                    group_refs[g] -= 1;
                    if group_refs[g] == 0 {
                        live -= group_bytes[g];
                    }
                }
            }
        }
        peak
    }

    /// Execute the plan: bind `feeds`, run every op in order, dispose each
    /// intermediate at its final consumer, return the fetch tensors.
    /// Fetches that resolve to weights or feeds are returned as identity
    /// aliases so callers may dispose them freely.
    ///
    /// # Errors
    /// Fails when a feed is missing or its shape differs from the plan's
    /// signature, or when a kernel fails.
    pub fn run(&self, engine: &Engine, feeds: &[(&str, &Tensor)]) -> Result<Vec<Tensor>> {
        let mut feed_tensors: Vec<&Tensor> = Vec::with_capacity(self.feeds.len());
        for (name, shape) in &self.feeds {
            let fed = feeds.iter().find(|(n, _)| n == name).ok_or_else(|| {
                Error::invalid("plan", format!("no feed for placeholder {name}"))
            })?;
            if fed.1.shape_ref() != shape {
                return Err(Error::shape(
                    "plan",
                    format!(
                        "feed {name} has shape {} but the plan was built for {shape}",
                        fed.1.shape_ref()
                    ),
                ));
            }
            feed_tensors.push(fed.1);
        }
        engine.tidy(|| self.run_inner(engine, &feed_tensors))
    }

    /// Execute the plan **without synchronizing**: every op is enqueued,
    /// asynchronous readbacks are issued for each fetch, and a fence marks
    /// the end of the submission (paper Fig 3's `data()` path). The caller
    /// gets a [`PendingFetches`] immediately and may submit further work —
    /// on an async backend the device crunches this run while the host
    /// prepares the next one.
    ///
    /// # Errors
    /// Same conditions as [`Plan::run`], plus readback submission failures.
    pub fn begin_run(&self, engine: &Engine, feeds: &[(&str, &Tensor)]) -> Result<PendingFetches> {
        let tensors = self.run(engine, feeds)?;
        PendingFetches::capture(engine, tensors)
    }

    fn run_inner(&self, engine: &Engine, feed_tensors: &[&Tensor]) -> Result<Vec<Tensor>> {
        // Recycle the slot table across runs; a poisoned or contended pool
        // just means one fresh allocation.
        let mut slots: Vec<Option<Tensor>> =
            self.scratch.lock().map(|mut p| std::mem::take(&mut *p)).unwrap_or_default();
        slots.clear();
        slots.resize_with(self.num_slots, || None);
        let result = self.run_ops(engine, feed_tensors, &mut slots);
        // Drop any handles still parked in the table (fetched slots keep
        // clones; the surrounding tidy scope owns actual disposal) and park
        // the empty table for the next run.
        slots.clear();
        if let Ok(mut p) = self.scratch.lock() {
            *p = slots;
        }
        result
    }

    fn run_ops(
        &self,
        engine: &Engine,
        feed_tensors: &[&Tensor],
        slots: &mut [Option<Tensor>],
    ) -> Result<Vec<Tensor>> {
        for op in &self.ops {
            let out = {
                let mut args: Vec<&Tensor> = Vec::with_capacity(op.args.len());
                for arg in &op.args {
                    args.push(match arg {
                        Arg::Slot(s) => slots[*s].as_ref().ok_or_else(|| {
                            Error::invalid(
                                "plan",
                                format!("slot {s} consumed before {} (planner bug)", op.name),
                            )
                        })?,
                        Arg::Weight(w) => &self.weight_tensors[*w],
                        Arg::Feed(f) => feed_tensors[*f],
                    });
                }
                // Per-op cleanup only where dispatch allocates internal
                // handles (see `needs_scope`): composite ops register
                // aliases that would otherwise pin the output's data
                // container until the whole run's scope closed — defeating
                // eager slot disposal. `trim_scope` disposes exactly those
                // registrations without a nested scope's push/pop cost;
                // single-kernel ops go straight through.
                if op.scoped {
                    let mark = engine.scope_mark();
                    let out = self.dispatch(op, &args)?;
                    engine.trim_scope(mark, out.id());
                    out
                } else {
                    self.dispatch(op, &args)?
                }
            };
            slots[op.out_slot] = Some(out);
            for &s in &op.dispose_after {
                if let Some(t) = slots[s].take() {
                    t.dispose();
                }
            }
        }
        self.fetch_sources
            .iter()
            .map(|src| match src {
                Arg::Slot(s) => slots[*s].clone().ok_or_else(|| {
                    Error::invalid("plan", "fetched slot was disposed (planner bug)")
                }),
                Arg::Weight(w) => ops::identity(&self.weight_tensors[*w]),
                Arg::Feed(f) => ops::identity(feed_tensors[*f]),
            })
            .collect()
    }

    fn dispatch(&self, op: &PlannedOp, args: &[&Tensor]) -> Result<Tensor> {
        match &op.kind {
            OpKind::MatMul => {
                if op.quant_rhs {
                    ops::fused_matmul_quant(args[0], args[1], None, None, false, false)
                } else {
                    ops::matmul(args[0], args[1], false, false)
                }
            }
            OpKind::Binary(b) => match b {
                BinaryOp::Add => ops::add(args[0], args[1]),
                BinaryOp::Sub => ops::sub(args[0], args[1]),
                BinaryOp::Mul => ops::mul(args[0], args[1]),
                BinaryOp::Div => ops::div(args[0], args[1]),
                other => Err(Error::invalid("plan", format!("unplannable binary {other:?}"))),
            },
            OpKind::Unary(u) => apply_unary(*u, args[0]),
            OpKind::Softmax => ops::softmax(args[0]),
            OpKind::Identity => ops::identity(args[0]),
            OpKind::Reshape => ops::reshape(args[0], op.out_shape.clone()),
            OpKind::Conv2d { strides, padding } => {
                if op.quant_rhs {
                    ops::fused_conv2d_quant(args[0], args[1], None, None, *strides, *padding, (1, 1))
                } else {
                    ops::conv2d(args[0], args[1], *strides, *padding, (1, 1))
                }
            }
            OpKind::DepthwiseConv2d { strides, padding } => {
                if op.quant_rhs {
                    ops::fused_depthwise_conv2d_quant(
                        args[0],
                        args[1],
                        None,
                        None,
                        *strides,
                        *padding,
                        (1, 1),
                    )
                } else {
                    ops::depthwise_conv2d(args[0], args[1], *strides, *padding, (1, 1))
                }
            }
            OpKind::MaxPool { window, strides, padding } => {
                ops::max_pool(args[0], *window, *strides, *padding)
            }
            OpKind::AvgPool { window, strides, padding } => {
                ops::avg_pool(args[0], *window, *strides, *padding)
            }
            OpKind::FusedMatMul { has_bias, activation } => {
                if let Some(shapes) = &op.kernel_shapes {
                    let engine = args[0].engine();
                    // The composite path exists for tape recording (unfused
                    // entries) and fusion-disabled debugging; neither holds
                    // on a planned inference pass, where this dispatches
                    // the kernel with zero alias tensors.
                    if !engine.is_recording() && engine.fusion_enabled() {
                        return fused_matmul_direct(engine, op, args, shapes, *activation);
                    }
                }
                let bias = if *has_bias { Some(args[2]) } else { None };
                if op.quant_rhs {
                    ops::fused_matmul_quant(args[0], args[1], bias, *activation, false, false)
                } else {
                    ops::fused_matmul(args[0], args[1], bias, *activation, false, false)
                }
            }
            OpKind::FusedConv2d { strides, padding, has_bias, activation } => {
                let bias = if *has_bias { Some(args[2]) } else { None };
                if op.quant_rhs {
                    ops::fused_conv2d_quant(
                        args[0],
                        args[1],
                        bias,
                        *activation,
                        *strides,
                        *padding,
                        (1, 1),
                    )
                } else {
                    ops::fused_conv2d(
                        args[0],
                        args[1],
                        bias,
                        *activation,
                        *strides,
                        *padding,
                        (1, 1),
                    )
                }
            }
            OpKind::FusedDepthwiseConv2d { strides, padding, has_bias, activation } => {
                let bias = if *has_bias { Some(args[2]) } else { None };
                if op.quant_rhs {
                    ops::fused_depthwise_conv2d_quant(
                        args[0],
                        args[1],
                        bias,
                        *activation,
                        *strides,
                        *padding,
                        (1, 1),
                    )
                } else {
                    ops::fused_depthwise_conv2d(
                        args[0],
                        args[1],
                        bias,
                        *activation,
                        *strides,
                        *padding,
                        (1, 1),
                    )
                }
            }
            OpKind::FusedElementwise { steps } => {
                ops::fused_elementwise(args[0], &args[1..], steps)
            }
            OpKind::Mean { axes } => ops::mean(args[0], Some(axes), false),
        }
    }
}

/// Dispatch a fused matmul straight to the backend kernel using the plan's
/// precomputed batch-1 rank-3 input views ([`PlannedOp::kernel_shapes`]).
/// Bitwise identical to `ops::fused_matmul`: the kernel sees the same data
/// ids under the same shapes the op layer's reshape aliases would present,
/// and the output is registered under the rank-2 result shape directly —
/// the layout the rank-3 result aliases to anyway.
fn fused_matmul_direct(
    engine: &Engine,
    op: &PlannedOp,
    args: &[&Tensor],
    shapes: &[Shape],
    activation: Option<UnaryOp>,
) -> Result<Tensor> {
    let outs = engine.run_kernel_shaped(
        "FusedMatMul",
        args,
        shapes,
        &mut |backend, ins| {
            let id =
                backend.fused_matmul(&ins[0], &ins[1], ins.get(2), activation, false, false)?;
            Ok(vec![(id, op.out_shape.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// In-flight results of a pipelined run (paper Sec 4.1.1, Fig 3).
///
/// Holds the fetch tensors, one asynchronous readback future per fetch
/// (enqueued at submission time, so the device copies results out as soon
/// as they are produced — never a pipeline-draining synchronous read), and
/// the fence submitted *after* the readbacks. When the fence has passed,
/// every future has resolved. On synchronous backends the fence is `None`
/// ("everything already done") and the futures are already resolved.
#[derive(Debug)]
pub struct PendingFetches {
    tensors: Vec<Tensor>,
    futures: Vec<DataFuture>,
    fence: Option<FenceToken>,
}

impl PendingFetches {
    /// Issue async readbacks for `tensors` and fence the submission.
    pub(crate) fn capture(engine: &Engine, tensors: Vec<Tensor>) -> Result<PendingFetches> {
        let futures: Vec<DataFuture> =
            tensors.iter().map(Tensor::data).collect::<Result<Vec<_>>>()?;
        let fence = engine.submit_fence();
        Ok(PendingFetches { tensors, futures, fence })
    }

    /// Number of in-flight fetches.
    pub fn len(&self) -> usize {
        self.futures.len()
    }

    /// Whether there are no fetches at all.
    pub fn is_empty(&self) -> bool {
        self.futures.is_empty()
    }

    /// The fence marking the end of this run's submission, if the backend
    /// is asynchronous.
    pub fn fence(&self) -> Option<FenceToken> {
        self.fence
    }

    /// Non-blocking completion probe: true once the device has executed
    /// everything submitted for this run (fence passed ⇒ the readbacks,
    /// enqueued before the fence, have completed).
    pub fn is_done(&self, engine: &Engine) -> bool {
        engine.fence_passed(self.fence)
    }

    /// Block until every fetch value is resident on the host and return
    /// them in fetch order. Disposes the fetch tensors — after `wait` the
    /// engine's memory accounting is exactly as before the run (feeds
    /// excluded; they stay caller-owned).
    ///
    /// # Errors
    /// Surfaces readback failures (e.g. a transient fault injected on the
    /// read path).
    pub fn wait(self) -> Result<Vec<TensorData>> {
        let mut out = Vec::with_capacity(self.futures.len());
        let mut err = None;
        for (fut, t) in self.futures.iter().zip(&self.tensors) {
            match fut.wait() {
                Ok(d) => out.push(d),
                // The async read path has no transient-retry machinery; the
                // sync path does, and also re-locates the data if the
                // backend degraded after submission (host-side shadows stay
                // readable across a context loss).
                Err(_) => match t.data_sync() {
                    Ok(d) => out.push(d),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                },
            }
        }
        for t in &self.tensors {
            t.dispose();
        }
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("ops", &self.ops.len())
            .field("feeds", &self.feeds)
            .field("weights", &self.weight_names.len())
            .field("predicted_peak_bytes", &self.predicted_peak_bytes)
            .field("fused", &self.fused)
            .finish()
    }
}

fn apply_unary(u: UnaryOp, x: &Tensor) -> Result<Tensor> {
    match u {
        UnaryOp::Relu => ops::relu(x),
        UnaryOp::Relu6 => ops::relu6(x),
        UnaryOp::Sigmoid => ops::sigmoid(x),
        UnaryOp::Tanh => ops::tanh(x),
        other => Err(Error::invalid("plan", format!("unplannable unary {other:?}"))),
    }
}

fn matmul_shape(name: &str, a: &Shape, b: &Shape) -> Result<Shape> {
    if a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0) {
        return Err(Error::shape(
            "plan",
            format!("{name}: cannot matmul {a} with {b}"),
        ));
    }
    Ok(Shape::new(vec![a.dim(0), b.dim(1)]))
}

fn fused_epilogue_attrs(node: &NodeDef) -> Result<(bool, Option<UnaryOp>)> {
    let has_bias = node.attrs.get("has_bias").and_then(Value::as_bool).unwrap_or(false);
    let activation = match attr_str(node, "activation") {
        Some(name) => Some(fusable_unary(name).ok_or_else(|| Error::Serialization {
            message: format!("unknown fused activation {name}"),
        })?),
        None => None,
    };
    Ok((has_bias, activation))
}

/// Lower one graph node into a typed op and its inferred output shape.
fn lower_node(node: &NodeDef, arg_shapes: &[Shape]) -> Result<(OpKind, Shape)> {
    let arg = |k: usize| -> Result<&Shape> {
        arg_shapes.get(k).ok_or_else(|| {
            Error::invalid("plan", format!("node {} is missing input {k}", node.name))
        })
    };
    Ok(match node.op.as_str() {
        "MatMul" => (OpKind::MatMul, matmul_shape(&node.name, arg(0)?, arg(1)?)?),
        "Add" | "AddV2" | "BiasAdd" => {
            (OpKind::Binary(BinaryOp::Add), broadcast_shapes("plan", arg(0)?, arg(1)?)?)
        }
        "Sub" => (OpKind::Binary(BinaryOp::Sub), broadcast_shapes("plan", arg(0)?, arg(1)?)?),
        "Mul" => (OpKind::Binary(BinaryOp::Mul), broadcast_shapes("plan", arg(0)?, arg(1)?)?),
        "RealDiv" | "Div" => {
            (OpKind::Binary(BinaryOp::Div), broadcast_shapes("plan", arg(0)?, arg(1)?)?)
        }
        "Relu" => (OpKind::Unary(UnaryOp::Relu), arg(0)?.clone()),
        "Relu6" => (OpKind::Unary(UnaryOp::Relu6), arg(0)?.clone()),
        "Sigmoid" => (OpKind::Unary(UnaryOp::Sigmoid), arg(0)?.clone()),
        "Tanh" => (OpKind::Unary(UnaryOp::Tanh), arg(0)?.clone()),
        "Softmax" => (OpKind::Softmax, arg(0)?.clone()),
        "Identity" => (OpKind::Identity, arg(0)?.clone()),
        "Reshape" => {
            let dims = resolve_reshape_dims(node, arg(0)?)?;
            (OpKind::Reshape, Shape::new(dims))
        }
        "Conv2D" => {
            let strides = attr_pair(node, "strides", (1, 1));
            let padding = attr_padding(node)?;
            let info = conv2d_info("Conv2D", arg(0)?, arg(1)?, strides, padding, (1, 1))?;
            (OpKind::Conv2d { strides, padding }, info.out_shape())
        }
        "DepthwiseConv2dNative" => {
            let strides = attr_pair(node, "strides", (1, 1));
            let padding = attr_padding(node)?;
            let info = depthwise_conv2d_info(
                "DepthwiseConv2dNative",
                arg(0)?,
                arg(1)?,
                strides,
                padding,
                (1, 1),
            )?;
            (OpKind::DepthwiseConv2d { strides, padding }, info.out_shape())
        }
        "MaxPool" => {
            let window = attr_pair(node, "ksize", (2, 2));
            let strides = attr_pair(node, "strides", window);
            let padding = attr_padding(node)?;
            let info = pool2d_info("MaxPool", arg(0)?, window, strides, padding)?;
            (OpKind::MaxPool { window, strides, padding }, info.out_shape())
        }
        "AvgPool" => {
            let window = attr_pair(node, "ksize", (2, 2));
            let strides = attr_pair(node, "strides", window);
            let padding = attr_padding(node)?;
            let info = pool2d_info("AvgPool", arg(0)?, window, strides, padding)?;
            (OpKind::AvgPool { window, strides, padding }, info.out_shape())
        }
        "_FusedMatMul" => {
            let (has_bias, activation) = fused_epilogue_attrs(node)?;
            (
                OpKind::FusedMatMul { has_bias, activation },
                matmul_shape(&node.name, arg(0)?, arg(1)?)?,
            )
        }
        "_FusedConv2D" => {
            let (has_bias, activation) = fused_epilogue_attrs(node)?;
            let strides = attr_pair(node, "strides", (1, 1));
            let padding = attr_padding(node)?;
            let info = conv2d_info("Conv2D", arg(0)?, arg(1)?, strides, padding, (1, 1))?;
            (
                OpKind::FusedConv2d { strides, padding, has_bias, activation },
                info.out_shape(),
            )
        }
        "_FusedDepthwiseConv2dNative" => {
            let (has_bias, activation) = fused_epilogue_attrs(node)?;
            let strides = attr_pair(node, "strides", (1, 1));
            let padding = attr_padding(node)?;
            let info = depthwise_conv2d_info(
                "DepthwiseConv2dNative",
                arg(0)?,
                arg(1)?,
                strides,
                padding,
                (1, 1),
            )?;
            (
                OpKind::FusedDepthwiseConv2d { strides, padding, has_bias, activation },
                info.out_shape(),
            )
        }
        "_FusedElementwise" => {
            let steps = parse_steps(node)?;
            let mut shape = arg(0)?.clone();
            for step in &steps {
                if let FusedStep::Binary(_, idx) = step {
                    shape = broadcast_shapes("plan", &shape, arg(idx + 1)?)?;
                }
            }
            (OpKind::FusedElementwise { steps }, shape)
        }
        "Mean" => {
            let axes: Vec<isize> = node
                .attrs
                .get("axes")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_i64).map(|d| d as isize).collect())
                .unwrap_or_else(|| vec![1, 2]);
            let input = arg(0)?;
            let normalized = normalize_axes("Mean", Some(&axes), input.rank())?;
            (OpKind::Mean { axes }, reduced_shape(input, &normalized, false))
        }
        other => {
            return Err(Error::invalid(
                "plan",
                format!("unsupported op {other} (node {})", node.name),
            ))
        }
    })
}
