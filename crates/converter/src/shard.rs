//! Weight sharding (paper Sec 5.1: "packs weights into 4MB files,
//! optimizing for browser auto-caching").

/// The shard size the paper chose for browser cache friendliness.
pub const SHARD_BYTES: usize = 4 * 1024 * 1024;

/// Split a byte buffer into shards of at most `shard_bytes`.
pub fn split(data: &[u8], shard_bytes: usize) -> Vec<Vec<u8>> {
    if data.is_empty() {
        return vec![Vec::new()];
    }
    data.chunks(shard_bytes.max(1)).map(|c| c.to_vec()).collect()
}

/// Reassemble shards into the original buffer.
pub fn join(shards: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(shards.iter().map(Vec::len).sum());
    for s in shards {
        out.extend_from_slice(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_round_trip() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let shards = split(&data, 1024);
        assert_eq!(shards.len(), 10);
        assert!(shards[..9].iter().all(|s| s.len() == 1024));
        assert_eq!(shards[9].len(), 10_000 - 9 * 1024);
        assert_eq!(join(&shards), data);
    }

    #[test]
    fn exact_multiple_has_no_empty_tail() {
        let data = vec![0u8; 2048];
        let shards = split(&data, 1024);
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn all_shards_at_most_4mb_for_large_models() {
        // A MobileNet-scale weight buffer (17 MB).
        let data = vec![7u8; 17 * 1024 * 1024];
        let shards = split(&data, SHARD_BYTES);
        assert_eq!(shards.len(), 5);
        assert!(shards.iter().all(|s| s.len() <= SHARD_BYTES));
        assert_eq!(join(&shards).len(), data.len());
    }

    #[test]
    fn empty_data_yields_single_empty_shard() {
        let shards = split(&[], SHARD_BYTES);
        assert_eq!(shards.len(), 1);
        assert!(shards[0].is_empty());
    }
}
