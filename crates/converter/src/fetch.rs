//! A simulated HTTP layer with a browser-style cache.
//!
//! The 4 MB shard size exists because browsers cache fetched files
//! per-URL: on a model update only the changed shards re-download, and on a
//! page reload everything comes from cache. [`SimulatedNetwork`] models a
//! host (url → bytes) plus a cache, counting transferred vs cached bytes so
//! the benefit is measurable.

use parking_lot::Mutex;
use std::collections::HashMap;
use webml_core::{Error, Result};

/// Transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Requests served from the network.
    pub network_requests: u64,
    /// Requests served from the cache.
    pub cache_hits: u64,
    /// Bytes that crossed the simulated network.
    pub bytes_transferred: u64,
    /// Bytes served from cache.
    pub bytes_from_cache: u64,
}

#[derive(Default)]
struct State {
    host: HashMap<String, Vec<u8>>,
    cache: HashMap<String, Vec<u8>>,
    stats: FetchStats,
}

/// A simulated origin server plus browser cache.
#[derive(Default)]
pub struct SimulatedNetwork {
    state: Mutex<State>,
}

impl SimulatedNetwork {
    /// An empty network.
    pub fn new() -> SimulatedNetwork {
        SimulatedNetwork::default()
    }

    /// Publish bytes at a URL (hosting a file on the server).
    pub fn host(&self, url: impl Into<String>, bytes: Vec<u8>) {
        let url = url.into();
        let mut state = self.state.lock();
        // Publishing new content invalidates the cached entry (the cache
        // key would change via ETag in a real browser).
        state.cache.remove(&url);
        state.host.insert(url, bytes);
    }

    /// Fetch a URL through the cache.
    ///
    /// # Errors
    /// Fails (404) when the URL is not hosted.
    pub fn fetch(&self, url: &str) -> Result<Vec<u8>> {
        let mut state = self.state.lock();
        if let Some(bytes) = state.cache.get(url).cloned() {
            state.stats.cache_hits += 1;
            state.stats.bytes_from_cache += bytes.len() as u64;
            return Ok(bytes);
        }
        let bytes = state
            .host
            .get(url)
            .cloned()
            .ok_or_else(|| Error::Serialization { message: format!("404: {url}") })?;
        state.stats.network_requests += 1;
        state.stats.bytes_transferred += bytes.len() as u64;
        state.cache.insert(url.to_string(), bytes.clone());
        Ok(bytes)
    }

    /// Current statistics.
    pub fn stats(&self) -> FetchStats {
        self.state.lock().stats
    }

    /// Clear the cache (a fresh browser profile).
    pub fn clear_cache(&self) {
        self.state.lock().cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_fetch_hits_cache() {
        let net = SimulatedNetwork::new();
        net.host("a.bin", vec![1, 2, 3]);
        assert_eq!(net.fetch("a.bin").unwrap(), vec![1, 2, 3]);
        assert_eq!(net.fetch("a.bin").unwrap(), vec![1, 2, 3]);
        let s = net.stats();
        assert_eq!(s.network_requests, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes_transferred, 3);
        assert_eq!(s.bytes_from_cache, 3);
    }

    #[test]
    fn missing_url_404s() {
        let net = SimulatedNetwork::new();
        assert!(net.fetch("nope.bin").is_err());
    }

    #[test]
    fn republishing_invalidates_only_that_shard() {
        let net = SimulatedNetwork::new();
        net.host("shard1.bin", vec![1; 100]);
        net.host("shard2.bin", vec![2; 100]);
        net.fetch("shard1.bin").unwrap();
        net.fetch("shard2.bin").unwrap();
        // Update shard2 only (a model revision touching few weights).
        net.host("shard2.bin", vec![3; 100]);
        net.fetch("shard1.bin").unwrap();
        net.fetch("shard2.bin").unwrap();
        let s = net.stats();
        // shard1 came from cache the second time; shard2 re-downloaded.
        assert_eq!(s.network_requests, 3);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn clear_cache_forces_redownload() {
        let net = SimulatedNetwork::new();
        net.host("a.bin", vec![9; 10]);
        net.fetch("a.bin").unwrap();
        net.clear_cache();
        net.fetch("a.bin").unwrap();
        assert_eq!(net.stats().network_requests, 2);
    }
}
