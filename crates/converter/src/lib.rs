//! # webml-converter
//!
//! The model converter (paper Sec 5.1): serializes models to the "web
//! format" — a topology JSON plus binary weight files — and loads them
//! back.
//!
//! Reproduced design points:
//! - weights are packed into **4 MB shards**, "optimizing for browser
//!   auto-caching" ([`shard`]);
//! - optional **quantization** reduces the model size by 4x (u8) or 2x
//!   (u16) ([`quantize`]);
//! - **training-op pruning** strips optimizer/save/restore subgraphs from a
//!   graph before serving it for inference ([`prune`]);
//! - a simulated HTTP layer with a browser-style cache demonstrates the
//!   shard-granularity caching benefit ([`fetch`]).

#![warn(missing_docs)]

pub mod artifacts;
pub mod fetch;
pub mod graph_exec;
pub mod plan;
pub mod prune;
pub mod quantize;
pub mod shard;

pub use artifacts::{ModelArtifacts, WeightSpec};
pub use fetch::{FetchStats, SimulatedNetwork};
pub use graph_exec::{GraphModel, PlanStats};
pub use plan::{Arg, OpKind, PendingFetches, Plan, PlannedOp};
pub use prune::{GraphDef, NodeDef};
pub use quantize::Quantization;

use serde_json::Value;
use std::path::Path;
use webml_core::{Engine, Error, Result, Tensor};
use webml_layers::Sequential;

/// Convert a model into in-memory artifacts (topology + specs + bytes).
///
/// # Errors
/// Fails when weight data cannot be read.
pub fn to_artifacts(model: &Sequential, quantization: Option<Quantization>) -> Result<ModelArtifacts> {
    let topology = model.to_topology();
    let mut specs = Vec::new();
    let mut data = Vec::new();
    for (name, var) in model.named_weights() {
        let tensor = var.value();
        let values = tensor.to_f32_vec()?;
        let spec = match quantization {
            None => {
                for v in &values {
                    data.extend_from_slice(&v.to_le_bytes());
                }
                WeightSpec::full(name, tensor.shape().0)
            }
            Some(q) => {
                let (bytes, scale, min) = q.quantize(&name, &values)?;
                data.extend_from_slice(&bytes);
                WeightSpec::quantized(name, tensor.shape().0, q, scale, min)
            }
        };
        specs.push(spec);
    }
    Ok(ModelArtifacts { topology, weight_specs: specs, weight_data: bytes::Bytes::from(data) })
}

/// Reconstruct a model from artifacts on `engine`.
///
/// # Errors
/// Fails on malformed artifacts.
pub fn from_artifacts(engine: &Engine, artifacts: &ModelArtifacts) -> Result<Sequential> {
    let mut model = Sequential::from_topology(engine, &artifacts.topology)?;
    let weights = decode_weights(engine, &artifacts.weight_specs, &artifacts.weight_data)?;
    model.set_weights_by_name(&weights)?;
    Ok(model)
}

/// Decode weight tensors from specs plus concatenated bytes.
///
/// # Errors
/// Fails when byte counts do not line up with the specs.
pub fn decode_weights(
    engine: &Engine,
    specs: &[WeightSpec],
    data: &[u8],
) -> Result<Vec<(String, Tensor)>> {
    let mut offset = 0usize;
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let count = spec.shape.iter().product::<usize>();
        let byte_len = spec.byte_len();
        if offset + byte_len > data.len() {
            return Err(Error::Serialization {
                message: format!("weight {} overruns data buffer", spec.name),
            });
        }
        let slice = &data[offset..offset + byte_len];
        offset += byte_len;
        let values: Vec<f32> = match &spec.quantization {
            None => slice
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
            Some(q) => q.kind.dequantize(slice, q.scale, q.min),
        };
        if values.len() != count {
            return Err(Error::Serialization {
                message: format!("weight {}: expected {count} values, got {}", spec.name, values.len()),
            });
        }
        let tensor = engine.tensor(values, spec.shape.clone())?;
        out.push((spec.name.clone(), tensor));
    }
    Ok(out)
}

/// Save a model to a directory in the web format:
/// `model.json` plus `group1-shard{i}of{n}.bin` files of at most 4 MB.
///
/// # Errors
/// Fails on IO errors.
pub fn save_model(
    model: &Sequential,
    dir: impl AsRef<Path>,
    quantization: Option<Quantization>,
) -> Result<()> {
    let artifacts = to_artifacts(model, quantization)?;
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let shards = shard::split(&artifacts.weight_data, shard::SHARD_BYTES);
    let paths: Vec<String> =
        (0..shards.len()).map(|i| format!("group1-shard{}of{}.bin", i + 1, shards.len())).collect();
    let manifest = artifacts.manifest_json(&paths);
    std::fs::write(dir.join("model.json"), serde_json::to_vec_pretty(&manifest).map_err(json_err)?)
        .map_err(io_err)?;
    for (path, shard) in paths.iter().zip(&shards) {
        std::fs::write(dir.join(path), shard).map_err(io_err)?;
    }
    Ok(())
}

/// Load a model from a directory written by [`save_model`]
/// (`tf.loadModel(url)` for the filesystem case).
///
/// # Errors
/// Fails on IO errors or malformed files.
pub fn load_model(engine: &Engine, dir: impl AsRef<Path>) -> Result<Sequential> {
    let dir = dir.as_ref();
    let manifest: Value = serde_json::from_slice(
        &std::fs::read(dir.join("model.json")).map_err(io_err)?,
    )
    .map_err(json_err)?;
    let artifacts = artifacts_from_manifest(&manifest, |path| {
        std::fs::read(dir.join(path)).map_err(io_err)
    })?;
    from_artifacts(engine, &artifacts)
}

/// Load a model through the simulated network (`tf.loadModel(url)` over
/// HTTP with the browser cache).
///
/// # Errors
/// Fails on missing URLs or malformed payloads.
pub fn load_model_from_network(
    engine: &Engine,
    net: &SimulatedNetwork,
    base_url: &str,
) -> Result<Sequential> {
    let manifest_bytes = net.fetch(&format!("{base_url}/model.json"))?;
    let manifest: Value = serde_json::from_slice(&manifest_bytes).map_err(json_err)?;
    let artifacts =
        artifacts_from_manifest(&manifest, |path| net.fetch(&format!("{base_url}/{path}")))?;
    from_artifacts(engine, &artifacts)
}

/// Parse a manifest JSON, fetching shard bytes through `read`.
///
/// # Errors
/// Fails on malformed manifests.
pub fn artifacts_from_manifest(
    manifest: &Value,
    mut read: impl FnMut(&str) -> Result<Vec<u8>>,
) -> Result<ModelArtifacts> {
    let topology = manifest
        .get("modelTopology")
        .cloned()
        .ok_or_else(|| Error::Serialization { message: "missing modelTopology".into() })?;
    let groups = manifest
        .get("weightsManifest")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::Serialization { message: "missing weightsManifest".into() })?;
    let mut specs = Vec::new();
    let mut data = Vec::new();
    for group in groups {
        for w in group.get("weights").and_then(Value::as_array).into_iter().flatten() {
            specs.push(WeightSpec::from_json(w)?);
        }
        for path in group.get("paths").and_then(Value::as_array).into_iter().flatten() {
            let p = path.as_str().ok_or_else(|| Error::Serialization {
                message: "non-string shard path".into(),
            })?;
            data.extend_from_slice(&read(p)?);
        }
    }
    Ok(ModelArtifacts { topology, weight_specs: specs, weight_data: bytes::Bytes::from(data) })
}

fn io_err(e: std::io::Error) -> Error {
    Error::Serialization { message: format!("io error: {e}") }
}

fn json_err(e: serde_json::Error) -> Error {
    Error::Serialization { message: format!("json error: {e}") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;
    use webml_layers::{Activation, Dense};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn small_model(e: &Engine) -> Sequential {
        let mut m = Sequential::new(e).with_seed(11);
        m.add(Dense::new(8).with_input_dim(4).with_activation(Activation::Relu));
        m.add(Dense::new(3));
        m.build([4]).unwrap();
        m
    }

    #[test]
    fn artifacts_round_trip_exact() {
        let e = engine();
        let mut model = small_model(&e);
        let x = e.tensor_2d(&[0.1, -0.2, 0.3, 0.4], 1, 4).unwrap();
        let expect = model.predict(&x).unwrap().to_f32_vec().unwrap();
        let artifacts = to_artifacts(&model, None).unwrap();
        let mut restored = from_artifacts(&e, &artifacts).unwrap();
        let got = restored.predict(&x).unwrap().to_f32_vec().unwrap();
        assert_eq!(got, expect, "full-precision round trip must be exact");
    }

    #[test]
    fn quantized_round_trip_approximate() {
        let e = engine();
        let mut model = small_model(&e);
        let x = e.tensor_2d(&[0.1, -0.2, 0.3, 0.4], 1, 4).unwrap();
        let expect = model.predict(&x).unwrap().to_f32_vec().unwrap();
        let artifacts = to_artifacts(&model, Some(Quantization::U8)).unwrap();
        // 4x size reduction.
        let full = to_artifacts(&model, None).unwrap();
        assert_eq!(full.weight_data.len(), artifacts.weight_data.len() * 4);
        let mut restored = from_artifacts(&e, &artifacts).unwrap();
        let got = restored.predict(&x).unwrap().to_f32_vec().unwrap();
        for (g, w) in got.iter().zip(&expect) {
            assert!((g - w).abs() < 0.1, "quantized {g} vs {w}");
        }
    }

    #[test]
    fn save_load_directory() {
        let e = engine();
        let mut model = small_model(&e);
        let dir = std::env::temp_dir().join(format!("webml-test-{}", std::process::id()));
        save_model(&model, &dir, None).unwrap();
        assert!(dir.join("model.json").exists());
        assert!(dir.join("group1-shard1of1.bin").exists());
        let mut loaded = load_model(&e, &dir).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 1, 4).unwrap();
        assert_eq!(
            loaded.predict(&x).unwrap().to_f32_vec().unwrap(),
            model.predict(&x).unwrap().to_f32_vec().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_fields_error() {
        let e = engine();
        let bad = serde_json::json!({"weightsManifest": []});
        assert!(artifacts_from_manifest(&bad, |_| Ok(Vec::new())).is_err());
        let _ = e;
    }
}
