//! # webml-converter
//!
//! The model converter (paper Sec 5.1): serializes models to the "web
//! format" — a topology JSON plus binary weight files — and loads them
//! back.
//!
//! Reproduced design points:
//! - weights are packed into **4 MB shards**, "optimizing for browser
//!   auto-caching" ([`shard`]);
//! - optional **quantization** reduces the model size by 4x (u8) or 2x
//!   (u16) ([`quantize`]);
//! - **training-op pruning** strips optimizer/save/restore subgraphs from a
//!   graph before serving it for inference ([`prune`]);
//! - a simulated HTTP layer with a browser-style cache demonstrates the
//!   shard-granularity caching benefit ([`fetch`]).

#![warn(missing_docs)]

pub mod artifacts;
pub mod fetch;
pub mod graph_exec;
pub mod plan;
pub mod prune;
pub mod quantize;
pub mod shard;

pub use artifacts::{ModelArtifacts, WeightSpec};
pub use fetch::{FetchStats, SimulatedNetwork};
pub use graph_exec::{GraphModel, PlanStats};
pub use plan::{Arg, OpKind, PendingFetches, Plan, PlannedOp};
pub use prune::{GraphDef, NodeDef};
pub use quantize::Quantization;

use serde_json::Value;
use std::path::Path;
use webml_core::{Engine, Error, Result, Tensor};
use webml_layers::Sequential;

/// Convert a model into in-memory artifacts (topology + specs + bytes).
///
/// # Errors
/// Fails when weight data cannot be read.
pub fn to_artifacts(model: &Sequential, quantization: Option<Quantization>) -> Result<ModelArtifacts> {
    let topology = model.to_topology();
    let mut specs = Vec::new();
    let mut data = Vec::new();
    for (name, var) in model.named_weights() {
        let tensor = var.value();
        let values = tensor.to_f32_vec()?;
        let spec = match quantization {
            None => {
                for v in &values {
                    data.extend_from_slice(&v.to_le_bytes());
                }
                WeightSpec::full(name, tensor.shape().0)
            }
            Some(q) => {
                let (bytes, scale, min) = q.quantize(&name, &values)?;
                data.extend_from_slice(&bytes);
                WeightSpec::quantized(name, tensor.shape().0, q, scale, min)
            }
        };
        specs.push(spec);
    }
    Ok(ModelArtifacts { topology, weight_specs: specs, weight_data: bytes::Bytes::from(data) })
}

/// Reconstruct a model from artifacts on `engine`.
///
/// # Errors
/// Fails on malformed artifacts.
pub fn from_artifacts(engine: &Engine, artifacts: &ModelArtifacts) -> Result<Sequential> {
    let mut model = Sequential::from_topology(engine, &artifacts.topology)?;
    let weights = decode_weights(engine, &artifacts.weight_specs, &artifacts.weight_data)?;
    model.set_weights_by_name(&weights)?;
    Ok(model)
}

/// Decode weight tensors from specs plus concatenated bytes.
///
/// # Errors
/// Fails when byte counts do not line up with the specs.
pub fn decode_weights(
    engine: &Engine,
    specs: &[WeightSpec],
    data: &[u8],
) -> Result<Vec<(String, Tensor)>> {
    decode_weights_impl(engine, specs, data, false)
}

/// [`decode_weights`], but U8-quantized weights stay resident as raw codes
/// (`DType::U8` tensors carrying their [`webml_core::QuantParams`]) instead
/// of being decoded to f32 — load time never materializes an f32 copy, and
/// the weight holds one byte per element until a dequant-free fused kernel
/// consumes it. U16 and full-precision weights decode exactly as
/// [`decode_weights`] does.
///
/// # Errors
/// Fails when byte counts do not line up with the specs.
pub fn decode_weights_quantized(
    engine: &Engine,
    specs: &[WeightSpec],
    data: &[u8],
) -> Result<Vec<(String, Tensor)>> {
    decode_weights_impl(engine, specs, data, true)
}

fn decode_weights_impl(
    engine: &Engine,
    specs: &[WeightSpec],
    data: &[u8],
    keep_u8: bool,
) -> Result<Vec<(String, Tensor)>> {
    let mut offset = 0usize;
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let count = spec.shape.iter().product::<usize>();
        let byte_len = spec.byte_len();
        if offset + byte_len > data.len() {
            return Err(Error::Serialization {
                message: format!("weight {} overruns data buffer", spec.name),
            });
        }
        let slice = &data[offset..offset + byte_len];
        offset += byte_len;
        if keep_u8 {
            if let Some(q) = &spec.quantization {
                if q.kind == Quantization::U8 {
                    q.kind.check_buffer(&spec.name, slice.len(), &spec.shape)?;
                    let params = match &q.per_channel {
                        Some(pc) => webml_core::QuantParams::per_channel(
                            pc.axis,
                            pc.scales.clone(),
                            pc.mins.clone(),
                        ),
                        None => webml_core::QuantParams::per_tensor(q.scale, q.min),
                    };
                    let tensor =
                        engine.quantized_tensor(slice.to_vec(), spec.shape.clone(), params)?;
                    out.push((spec.name.clone(), tensor));
                    continue;
                }
            }
        }
        let values: Vec<f32> = match &spec.quantization {
            None => slice
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
            Some(q) => {
                q.kind.check_buffer(&spec.name, slice.len(), &spec.shape)?;
                match &q.per_channel {
                    None => q.kind.dequantize(slice, q.scale, q.min)?,
                    Some(pc) => {
                        // Per-channel dequantization via the core reference
                        // semantics (U8 only; per-channel U16 is not
                        // emitted by the converter).
                        webml_core::QuantParams::per_channel(
                            pc.axis,
                            pc.scales.clone(),
                            pc.mins.clone(),
                        )
                        .dequantize(slice, &spec.shape)
                    }
                }
            }
        };
        if values.len() != count {
            return Err(Error::Serialization {
                message: format!("weight {}: expected {count} values, got {}", spec.name, values.len()),
            });
        }
        let tensor = engine.tensor(values, spec.shape.clone())?;
        out.push((spec.name.clone(), tensor));
    }
    Ok(out)
}

/// Save a model to a directory in the web format:
/// `model.json` plus `group1-shard{i}of{n}.bin` files of at most 4 MB.
///
/// # Errors
/// Fails on IO errors.
pub fn save_model(
    model: &Sequential,
    dir: impl AsRef<Path>,
    quantization: Option<Quantization>,
) -> Result<()> {
    let artifacts = to_artifacts(model, quantization)?;
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let shards = shard::split(&artifacts.weight_data, shard::SHARD_BYTES);
    let paths: Vec<String> =
        (0..shards.len()).map(|i| format!("group1-shard{}of{}.bin", i + 1, shards.len())).collect();
    let manifest = artifacts.manifest_json(&paths);
    std::fs::write(dir.join("model.json"), serde_json::to_vec_pretty(&manifest).map_err(json_err)?)
        .map_err(io_err)?;
    for (path, shard) in paths.iter().zip(&shards) {
        std::fs::write(dir.join(path), shard).map_err(io_err)?;
    }
    Ok(())
}

/// Load a model from a directory written by [`save_model`]
/// (`tf.loadModel(url)` for the filesystem case).
///
/// # Errors
/// Fails on IO errors or malformed files.
pub fn load_model(engine: &Engine, dir: impl AsRef<Path>) -> Result<Sequential> {
    let dir = dir.as_ref();
    let manifest: Value = serde_json::from_slice(
        &std::fs::read(dir.join("model.json")).map_err(io_err)?,
    )
    .map_err(json_err)?;
    let artifacts = artifacts_from_manifest(&manifest, |path| {
        std::fs::read(dir.join(path)).map_err(io_err)
    })?;
    from_artifacts(engine, &artifacts)
}

/// Load a model through the simulated network (`tf.loadModel(url)` over
/// HTTP with the browser cache).
///
/// # Errors
/// Fails on missing URLs or malformed payloads.
pub fn load_model_from_network(
    engine: &Engine,
    net: &SimulatedNetwork,
    base_url: &str,
) -> Result<Sequential> {
    let manifest_bytes = net.fetch(&format!("{base_url}/model.json"))?;
    let manifest: Value = serde_json::from_slice(&manifest_bytes).map_err(json_err)?;
    let artifacts =
        artifacts_from_manifest(&manifest, |path| net.fetch(&format!("{base_url}/{path}")))?;
    from_artifacts(engine, &artifacts)
}

/// Parse a manifest JSON, fetching shard bytes through `read`.
///
/// # Errors
/// Fails on malformed manifests.
pub fn artifacts_from_manifest(
    manifest: &Value,
    mut read: impl FnMut(&str) -> Result<Vec<u8>>,
) -> Result<ModelArtifacts> {
    let topology = manifest
        .get("modelTopology")
        .cloned()
        .ok_or_else(|| Error::Serialization { message: "missing modelTopology".into() })?;
    let groups = manifest
        .get("weightsManifest")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::Serialization { message: "missing weightsManifest".into() })?;
    let mut specs = Vec::new();
    let mut data = Vec::new();
    for group in groups {
        for w in group.get("weights").and_then(Value::as_array).into_iter().flatten() {
            specs.push(WeightSpec::from_json(w)?);
        }
        for path in group.get("paths").and_then(Value::as_array).into_iter().flatten() {
            let p = path.as_str().ok_or_else(|| Error::Serialization {
                message: "non-string shard path".into(),
            })?;
            data.extend_from_slice(&read(p)?);
        }
    }
    Ok(ModelArtifacts { topology, weight_specs: specs, weight_data: bytes::Bytes::from(data) })
}

/// Which weights of `graph` can be stored quantized for dequant-free
/// inference, mapped to the per-channel quantization axis of their filter
/// layout. A weight qualifies only when **every** consumer uses it as the
/// weight operand (`inputs[1]`) of a matmul / conv2d / depthwise-conv2d
/// node (fused or not) — a weight also fed to any other op would force a
/// runtime dequantize there, so it stays f32. Axes follow the kernels'
/// channel layouts: matmul `[k, n]` → 1 (output columns), conv2d HWIO → 3
/// (output channels), depthwise HWIM → 2 (input channels).
pub fn quantizable_weights(graph: &GraphDef) -> std::collections::HashMap<String, usize> {
    let weight_names: std::collections::HashSet<&str> = graph
        .nodes
        .iter()
        .filter(|n| matches!(n.op.as_str(), "Const" | "VariableV2"))
        .map(|n| n.name.as_str())
        .collect();
    // `None` = disqualified; `Some(axis)` = consistent so far.
    let mut verdict: std::collections::HashMap<&str, Option<usize>> =
        std::collections::HashMap::new();
    for node in &graph.nodes {
        for (k, input) in node.inputs.iter().enumerate() {
            let name = input.trim_start_matches('^');
            if !weight_names.contains(name) {
                continue;
            }
            let axis = match (node.op.as_str(), k) {
                ("MatMul" | "_FusedMatMul", 1) => Some(1),
                ("Conv2D" | "_FusedConv2D", 1) => Some(3),
                ("DepthwiseConv2dNative" | "_FusedDepthwiseConv2dNative", 1) => Some(2),
                _ => None,
            };
            let entry = verdict.entry(name).or_insert(axis);
            if *entry != axis {
                *entry = None;
            }
        }
    }
    verdict
        .into_iter()
        .filter_map(|(name, axis)| axis.map(|a| (name.to_string(), a)))
        .collect()
}

fn io_err(e: std::io::Error) -> Error {
    Error::Serialization { message: format!("io error: {e}") }
}

fn json_err(e: serde_json::Error) -> Error {
    Error::Serialization { message: format!("json error: {e}") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;
    use webml_layers::{Activation, Dense};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn small_model(e: &Engine) -> Sequential {
        let mut m = Sequential::new(e).with_seed(11);
        m.add(Dense::new(8).with_input_dim(4).with_activation(Activation::Relu));
        m.add(Dense::new(3));
        m.build([4]).unwrap();
        m
    }

    #[test]
    fn artifacts_round_trip_exact() {
        let e = engine();
        let mut model = small_model(&e);
        let x = e.tensor_2d(&[0.1, -0.2, 0.3, 0.4], 1, 4).unwrap();
        let expect = model.predict(&x).unwrap().to_f32_vec().unwrap();
        let artifacts = to_artifacts(&model, None).unwrap();
        let mut restored = from_artifacts(&e, &artifacts).unwrap();
        let got = restored.predict(&x).unwrap().to_f32_vec().unwrap();
        assert_eq!(got, expect, "full-precision round trip must be exact");
    }

    #[test]
    fn quantized_round_trip_approximate() {
        let e = engine();
        let mut model = small_model(&e);
        let x = e.tensor_2d(&[0.1, -0.2, 0.3, 0.4], 1, 4).unwrap();
        let expect = model.predict(&x).unwrap().to_f32_vec().unwrap();
        let artifacts = to_artifacts(&model, Some(Quantization::U8)).unwrap();
        // 4x size reduction.
        let full = to_artifacts(&model, None).unwrap();
        assert_eq!(full.weight_data.len(), artifacts.weight_data.len() * 4);
        let mut restored = from_artifacts(&e, &artifacts).unwrap();
        let got = restored.predict(&x).unwrap().to_f32_vec().unwrap();
        for (g, w) in got.iter().zip(&expect) {
            assert!((g - w).abs() < 0.1, "quantized {g} vs {w}");
        }
    }

    #[test]
    fn decode_quantized_keeps_codes_resident() {
        let e = engine();
        let model = small_model(&e);
        let artifacts = to_artifacts(&model, Some(Quantization::U8)).unwrap();
        let full = decode_weights(&e, &artifacts.weight_specs, &artifacts.weight_data).unwrap();
        let kept =
            decode_weights_quantized(&e, &artifacts.weight_specs, &artifacts.weight_data)
                .unwrap();
        for ((_, f), (name, q)) in full.iter().zip(&kept) {
            assert!(q.is_quantized(), "{name} must stay resident as U8 codes");
            assert_eq!(q.bytes() * 4, f.bytes(), "{name} holds one byte per code");
            // Dequantizing the resident codes reproduces the f32 decode.
            let qv = webml_core::ops::dequantize(q).unwrap().to_f32_vec().unwrap();
            let fv = f.to_f32_vec().unwrap();
            for (a, b) in qv.iter().zip(&fv) {
                assert!((a - b).abs() < 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quantized_weights_survive_shard_boundaries() {
        // A single quantized weight larger than one 4 MB shard: its codes
        // span a shard boundary and must reassemble bitwise.
        let count = shard::SHARD_BYTES + 4096;
        let codes: Vec<u8> = (0..count).map(|i| (i % 251) as u8).collect();
        let spec = WeightSpec::quantized("big".to_string(), vec![count], Quantization::U8, 0.5, -1.0);
        let artifacts = ModelArtifacts {
            topology: serde_json::json!({}),
            weight_specs: vec![spec],
            weight_data: bytes::Bytes::from(codes.clone()),
        };
        let shards = shard::split(&artifacts.weight_data, shard::SHARD_BYTES);
        assert!(shards.len() >= 2, "weight must cross a shard boundary");
        let paths: Vec<String> = (0..shards.len())
            .map(|i| format!("group1-shard{}of{}.bin", i + 1, shards.len()))
            .collect();
        let manifest = artifacts.manifest_json(&paths);
        let reloaded = artifacts_from_manifest(&manifest, |path| {
            let i = paths.iter().position(|p| p == path).expect("known shard");
            Ok(shards[i].clone())
        })
        .unwrap();
        let e = engine();
        let ws =
            decode_weights_quantized(&e, &reloaded.weight_specs, &reloaded.weight_data).unwrap();
        assert_eq!(ws.len(), 1);
        let t = &ws[0].1;
        assert!(t.is_quantized());
        match t.data_sync().unwrap() {
            webml_core::TensorData::U8(v) => assert_eq!(v, codes, "codes reassemble bitwise"),
            other => panic!("expected U8 codes, got {other:?}"),
        }
        let params = t.quant_params().expect("params survive the manifest");
        assert_eq!(*params, webml_core::QuantParams::per_tensor(0.5, -1.0));
    }

    #[test]
    fn quantizable_weights_requires_kernel_only_consumers() {
        let g = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w_mm", "Const", &[]),
            ("w_conv", "Const", &[]),
            ("b", "Const", &[]),
            ("w_shared", "Const", &[]),
            ("mm", "MatMul", &["x", "w_mm"]),
            ("biased", "BiasAdd", &["mm", "b"]),
            ("conv", "Conv2D", &["biased", "w_conv"]),
            // Used both as a matmul weight and as a binary operand:
            // disqualified (the Add would need a runtime dequantize).
            ("mm2", "MatMul", &["biased", "w_shared"]),
            ("sum", "Add", &["mm2", "w_shared"]),
        ]);
        let eligible = quantizable_weights(&g);
        assert_eq!(eligible.get("w_mm"), Some(&1), "matmul weight quantizes on axis 1");
        assert_eq!(eligible.get("w_conv"), Some(&3), "conv weight quantizes on axis 3");
        assert!(!eligible.contains_key("b"), "bias is not a kernel weight operand");
        assert!(!eligible.contains_key("w_shared"), "mixed consumers disqualify");
    }

    #[test]
    fn save_load_directory() {
        let e = engine();
        let mut model = small_model(&e);
        let dir = std::env::temp_dir().join(format!("webml-test-{}", std::process::id()));
        save_model(&model, &dir, None).unwrap();
        assert!(dir.join("model.json").exists());
        assert!(dir.join("group1-shard1of1.bin").exists());
        let mut loaded = load_model(&e, &dir).unwrap();
        let x = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 1, 4).unwrap();
        assert_eq!(
            loaded.predict(&x).unwrap().to_f32_vec().unwrap(),
            model.predict(&x).unwrap().to_f32_vec().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_fields_error() {
        let e = engine();
        let bad = serde_json::json!({"weightsManifest": []});
        assert!(artifacts_from_manifest(&bad, |_| Ok(Vec::new())).is_err());
        let _ = e;
    }
}
