//! Shapes, strides, broadcasting and index arithmetic.
//!
//! These utilities are shared by the engine's shape inference and by every
//! backend's kernels, so that all three backends (cpu, webgl, native) agree
//! exactly on geometry.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical shape of a tensor: a list of dimension sizes.
///
/// Rank 0 (scalar) is the empty list. Shapes are cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Shape {
        Shape(dims.into())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn size(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major (C-order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Convert an N-D coordinate to a flat row-major index.
    pub fn flat_index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.rank());
        let mut idx = 0;
        let mut stride = 1;
        for i in (0..self.rank()).rev() {
            idx += coords[i] * stride;
            stride *= self.0[i];
        }
        idx
    }

    /// Convert a flat row-major index to an N-D coordinate.
    pub fn coords(&self, mut index: usize) -> Vec<usize> {
        let mut out = vec![0; self.rank()];
        for i in (0..self.rank()).rev() {
            out[i] = index % self.0[i];
            index /= self.0[i];
        }
        out
    }

    /// Remove all size-1 dimensions (the layout "squeeze" optimization of
    /// paper Sec 4.1: a `1x3x1x2` tensor maps to `3x2`).
    pub fn squeezed(&self) -> Shape {
        Shape(self.0.iter().copied().filter(|&d| d != 1).collect())
    }

    /// Indices of the dimensions kept by [`Shape::squeezed`].
    pub fn squeezed_axes(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether this shape can be reshaped into `other` (same element count).
    pub fn same_size(&self, other: &Shape) -> bool {
        self.size() == other.size()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Compute the broadcast shape of two shapes per NumPy/TensorFlow rules.
///
/// # Errors
/// Returns [`Error::ShapeMismatch`] when a dimension pair is incompatible
/// (neither equal nor 1).
#[allow(clippy::needless_range_loop)] // symmetric right-aligned index math
pub fn broadcast_shapes(op: &'static str, a: &Shape, b: &Shape) -> Result<Shape> {
    let rank = a.rank().max(b.rank());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let ad = if i < rank - a.rank() { 1 } else { a.0[i - (rank - a.rank())] };
        let bd = if i < rank - b.rank() { 1 } else { b.0[i - (rank - b.rank())] };
        if ad != bd && ad != 1 && bd != 1 {
            return Err(Error::shape(
                op,
                format!("cannot broadcast {a} with {b}: dim {i} ({ad} vs {bd})"),
            ));
        }
        out[i] = ad.max(bd);
    }
    Ok(Shape(out))
}

/// Map a coordinate in the broadcast output shape back to a flat index in an
/// input of shape `in_shape` (right-aligned, size-1 dims repeat).
pub fn broadcast_source_index(out_coords: &[usize], in_shape: &Shape) -> usize {
    let offset = out_coords.len() - in_shape.rank();
    let mut idx = 0;
    let mut stride = 1;
    for i in (0..in_shape.rank()).rev() {
        let d = in_shape.0[i];
        let c = if d == 1 { 0 } else { out_coords[i + offset] };
        idx += c * stride;
        stride *= d;
    }
    idx
}

/// The axes of `in_shape` (right-aligned inside `out_rank`) along which
/// broadcasting duplicated data; used by gradients of broadcasting binary ops
/// (sum the upstream gradient over these axes).
pub fn broadcast_reduce_axes(in_shape: &Shape, out_shape: &Shape) -> Vec<usize> {
    let offset = out_shape.rank() - in_shape.rank();
    let mut axes: Vec<usize> = (0..offset).collect();
    for i in 0..in_shape.rank() {
        if in_shape.0[i] == 1 && out_shape.0[i + offset] != 1 {
            axes.push(i + offset);
        }
    }
    axes
}

/// Normalize a possibly-negative axis into `0..rank`.
///
/// # Errors
/// Returns [`Error::InvalidArgument`] when out of range.
pub fn normalize_axis(op: &'static str, axis: isize, rank: usize) -> Result<usize> {
    let r = rank as isize;
    let a = if axis < 0 { axis + r } else { axis };
    if a < 0 || (a >= r && !(r == 0 && a == 0)) {
        return Err(Error::invalid(op, format!("axis {axis} out of range for rank {rank}")));
    }
    Ok(a as usize)
}

/// Normalize a list of axes; `None` means all axes.
///
/// # Errors
/// Returns [`Error::InvalidArgument`] when any axis is out of range or
/// duplicated.
pub fn normalize_axes(op: &'static str, axes: Option<&[isize]>, rank: usize) -> Result<Vec<usize>> {
    let mut out = match axes {
        None => (0..rank).collect::<Vec<_>>(),
        Some(list) => {
            let mut v = Vec::with_capacity(list.len());
            for &a in list {
                v.push(normalize_axis(op, a, rank)?);
            }
            v
        }
    };
    out.sort_unstable();
    out.dedup();
    if axes.is_some() && out.len() != axes.unwrap().len() {
        return Err(Error::invalid(op, "duplicate axes".to_string()));
    }
    Ok(out)
}

/// Output shape of a reduction over `axes`.
pub fn reduced_shape(shape: &Shape, axes: &[usize], keep_dims: bool) -> Shape {
    let mut dims = Vec::new();
    for (i, &d) in shape.0.iter().enumerate() {
        if axes.contains(&i) {
            if keep_dims {
                dims.push(1);
            }
        } else {
            dims.push(d);
        }
    }
    Shape(dims)
}

/// Iterator over all N-D coordinates of a shape, in row-major order.
///
/// For rank-0 shapes, yields a single empty coordinate.
pub struct CoordIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl CoordIter {
    /// Create a coordinate iterator over `shape`.
    pub fn new(shape: &Shape) -> CoordIter {
        let done = shape.size() == 0 && shape.rank() > 0;
        CoordIter { dims: shape.0.clone(), current: vec![0; shape.rank()], done }
    }
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance odometer.
        let mut i = self.dims.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.dims[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        for i in 0..s.size() {
            assert_eq!(s.flat_index(&s.coords(i)), i);
        }
    }

    #[test]
    fn broadcast_basic() {
        let out = broadcast_shapes("add", &Shape::new(vec![2, 1, 4]), &Shape::new(vec![3, 1])).unwrap();
        assert_eq!(out, Shape::new(vec![2, 3, 4]));
    }

    #[test]
    fn broadcast_scalar() {
        let out = broadcast_shapes("add", &Shape::scalar(), &Shape::new(vec![5, 2])).unwrap();
        assert_eq!(out, Shape::new(vec![5, 2]));
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let e = broadcast_shapes("add", &Shape::new(vec![2, 3]), &Shape::new(vec![2, 4]));
        assert!(e.is_err());
    }

    #[test]
    fn broadcast_source_index_repeats() {
        // in shape [1,3] broadcast to [2,3]: row coordinate ignored.
        let s = Shape::new(vec![1, 3]);
        assert_eq!(broadcast_source_index(&[0, 2], &s), 2);
        assert_eq!(broadcast_source_index(&[1, 2], &s), 2);
    }

    #[test]
    fn broadcast_reduce_axes_identifies_summed_dims() {
        let a = Shape::new(vec![3, 1]);
        let out = Shape::new(vec![2, 3, 4]);
        assert_eq!(broadcast_reduce_axes(&a, &out), vec![0, 2]);
    }

    #[test]
    fn squeezed_removes_unit_dims() {
        // The paper's 1x3x1x2 example maps to 3x2.
        let s = Shape::new(vec![1, 3, 1, 2]);
        assert_eq!(s.squeezed(), Shape::new(vec![3, 2]));
        assert_eq!(s.squeezed_axes(), vec![1, 3]);
    }

    #[test]
    fn normalize_axis_handles_negative() {
        assert_eq!(normalize_axis("t", -1, 3).unwrap(), 2);
        assert_eq!(normalize_axis("t", 0, 3).unwrap(), 0);
        assert!(normalize_axis("t", 3, 3).is_err());
        assert!(normalize_axis("t", -4, 3).is_err());
    }

    #[test]
    fn reduced_shape_keep_dims() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(reduced_shape(&s, &[1], false), Shape::new(vec![2, 4]));
        assert_eq!(reduced_shape(&s, &[1], true), Shape::new(vec![2, 1, 4]));
        assert_eq!(reduced_shape(&s, &[0, 1, 2], false), Shape::scalar());
    }

    #[test]
    fn coord_iter_covers_all_in_order() {
        let s = Shape::new(vec![2, 2]);
        let coords: Vec<_> = CoordIter::new(&s).collect();
        assert_eq!(coords, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn coord_iter_scalar_yields_once() {
        let coords: Vec<_> = CoordIter::new(&Shape::scalar()).collect();
        assert_eq!(coords, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn coord_iter_empty_shape_yields_none() {
        let coords: Vec<_> = CoordIter::new(&Shape::new(vec![0, 3])).collect();
        assert!(coords.is_empty());
    }
}
