//! The backend abstraction (paper Sec 3.4).
//!
//! A backend implements device-specific *kernels* plus data-management
//! methods (`register`, `read`, `read_sync`, `dispose_data`) that store the
//! buffer backing each tensor. Tensors are decoupled from their data: the
//! engine refcounts [`DataId`]s so `reshape`/`clone` are free shallow copies.

use crate::conv_util::Conv2dInfo;
use crate::dtype::{DType, TensorData};
use crate::error::{Error, Result};
use crate::shape::{broadcast_shapes, Shape};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Opaque identifier of a data container held by a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub u64);

/// A borrowed view of a tensor passed to backend kernels: the data handle
/// plus the logical geometry the kernel should interpret it with.
#[derive(Debug, Clone, Copy)]
pub struct KTensor<'a> {
    /// Backend data container.
    pub data: DataId,
    /// Logical shape.
    pub shape: &'a Shape,
    /// Element type.
    pub dtype: DType,
}

/// Element-wise unary kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `|x|`
    Abs,
    /// `e^x`
    Exp,
    /// `e^x - 1`
    Expm1,
    /// `ln x`
    Log,
    /// `ln (1 + x)`
    Log1p,
    /// `sqrt x`
    Sqrt,
    /// `1 / sqrt x`
    Rsqrt,
    /// `x^2`
    Square,
    /// `max(x, 0)`
    Relu,
    /// `min(max(x, 0), 6)`
    Relu6,
    /// logistic sigmoid
    Sigmoid,
    /// hyperbolic tangent
    Tanh,
    /// exponential linear unit
    Elu,
    /// scaled exponential linear unit
    Selu,
    /// `ln(1 + e^x)`
    Softplus,
    /// sine
    Sin,
    /// cosine
    Cos,
    /// tangent
    Tan,
    /// arcsine
    Asin,
    /// arccosine
    Acos,
    /// arctangent
    Atan,
    /// floor
    Floor,
    /// ceiling
    Ceil,
    /// round half away from zero
    Round,
    /// sign (-1, 0, 1)
    Sign,
    /// `1 / x`
    Reciprocal,
    /// logical negation (for bool tensors)
    LogicalNot,
    /// 1.0 where NaN else 0.0
    IsNan,
    /// 1.0 where infinite else 0.0
    IsInf,
    /// 1.0 where finite else 0.0
    IsFinite,
    /// leaky ReLU with the given negative slope
    LeakyRelu(f32),
    /// clip into `[min, max]`
    ClipByValue(f32, f32),
    /// Heaviside step: 1 where x > 0, else `alpha`
    Step(f32),
    /// Gauss error function.
    Erf,
}

impl UnaryOp {
    /// The shared scalar semantics of each unary kernel. All backends route
    /// their per-element math through this function (directly or as the body
    /// of a data-parallel program) so results agree bit-for-bit.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Abs => x.abs(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Expm1 => x.exp_m1(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Log1p => x.ln_1p(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Square => x * x,
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Relu6 => x.clamp(0.0, 6.0),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Elu => {
                if x >= 0.0 {
                    x
                } else {
                    x.exp_m1()
                }
            }
            UnaryOp::Selu => {
                const ALPHA: f32 = 1.673_263_2;
                const SCALE: f32 = 1.050_701;
                if x >= 0.0 {
                    SCALE * x
                } else {
                    SCALE * ALPHA * x.exp_m1()
                }
            }
            UnaryOp::Softplus => {
                // Numerically stable: max(x,0) + ln(1 + e^{-|x|}).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Tan => x.tan(),
            UnaryOp::Asin => x.asin(),
            UnaryOp::Acos => x.acos(),
            UnaryOp::Atan => x.atan(),
            UnaryOp::Floor => x.floor(),
            UnaryOp::Ceil => x.ceil(),
            UnaryOp::Round => x.round(),
            UnaryOp::Sign => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Reciprocal => 1.0 / x,
            UnaryOp::LogicalNot => {
                if x == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::IsNan => x.is_nan() as u8 as f32,
            UnaryOp::IsInf => x.is_infinite() as u8 as f32,
            UnaryOp::IsFinite => x.is_finite() as u8 as f32,
            UnaryOp::LeakyRelu(alpha) => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            UnaryOp::ClipByValue(lo, hi) => x.clamp(lo, hi),
            UnaryOp::Step(alpha) => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            UnaryOp::Erf => {
                // Abramowitz & Stegun 7.1.26 (|error| <= 1.5e-7).
                const A1: f32 = 0.254_829_6;
                const A2: f32 = -0.284_496_72;
                const A3: f32 = 1.421_413_8;
                const A4: f32 = -1.453_152_1;
                const A5: f32 = 1.061_405_4;
                const P: f32 = 0.327_591_1;
                let sign = if x < 0.0 { -1.0 } else { 1.0 };
                let x = x.abs();
                let t = 1.0 / (1.0 + P * x);
                let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * (-x * x).exp();
                sign * y
            }
        }
    }

    /// Output dtype of the kernel given the input dtype.
    pub fn out_dtype(self, input: DType) -> DType {
        match self {
            UnaryOp::LogicalNot | UnaryOp::IsNan | UnaryOp::IsInf | UnaryOp::IsFinite => DType::Bool,
            _ => input,
        }
    }

    /// Kernel name for profiling output.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "Neg",
            UnaryOp::Abs => "Abs",
            UnaryOp::Exp => "Exp",
            UnaryOp::Expm1 => "Expm1",
            UnaryOp::Log => "Log",
            UnaryOp::Log1p => "Log1p",
            UnaryOp::Sqrt => "Sqrt",
            UnaryOp::Rsqrt => "Rsqrt",
            UnaryOp::Square => "Square",
            UnaryOp::Relu => "Relu",
            UnaryOp::Relu6 => "Relu6",
            UnaryOp::Sigmoid => "Sigmoid",
            UnaryOp::Tanh => "Tanh",
            UnaryOp::Elu => "Elu",
            UnaryOp::Selu => "Selu",
            UnaryOp::Softplus => "Softplus",
            UnaryOp::Sin => "Sin",
            UnaryOp::Cos => "Cos",
            UnaryOp::Tan => "Tan",
            UnaryOp::Asin => "Asin",
            UnaryOp::Acos => "Acos",
            UnaryOp::Atan => "Atan",
            UnaryOp::Floor => "Floor",
            UnaryOp::Ceil => "Ceil",
            UnaryOp::Round => "Round",
            UnaryOp::Sign => "Sign",
            UnaryOp::Reciprocal => "Reciprocal",
            UnaryOp::LogicalNot => "LogicalNot",
            UnaryOp::IsNan => "IsNan",
            UnaryOp::IsInf => "IsInf",
            UnaryOp::IsFinite => "IsFinite",
            UnaryOp::LeakyRelu(_) => "LeakyRelu",
            UnaryOp::ClipByValue(_, _) => "ClipByValue",
            UnaryOp::Step(_) => "Step",
            UnaryOp::Erf => "Erf",
        }
    }
}

/// Element-wise binary kernels (with broadcasting resolved by the op layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `floor(a / b)`
    FloorDiv,
    /// `a ^ b`
    Pow,
    /// `max(a, b)`
    Maximum,
    /// `min(a, b)`
    Minimum,
    /// `a mod b` (Python semantics: sign follows divisor)
    Mod,
    /// `(a - b)^2`
    SquaredDifference,
    /// `atan2(a, b)`
    Atan2,
    /// `a == b` → bool
    Equal,
    /// `a != b` → bool
    NotEqual,
    /// `a > b` → bool
    Greater,
    /// `a >= b` → bool
    GreaterEqual,
    /// `a < b` → bool
    Less,
    /// `a <= b` → bool
    LessEqual,
    /// logical and → bool
    LogicalAnd,
    /// logical or → bool
    LogicalOr,
    /// logical xor → bool
    LogicalXor,
}

impl BinaryOp {
    /// Shared scalar semantics (see [`UnaryOp::apply`]).
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::FloorDiv => (a / b).floor(),
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Maximum => a.max(b),
            BinaryOp::Minimum => a.min(b),
            BinaryOp::Mod => a - b * (a / b).floor(),
            BinaryOp::SquaredDifference => (a - b) * (a - b),
            BinaryOp::Atan2 => a.atan2(b),
            BinaryOp::Equal => (a == b) as u8 as f32,
            BinaryOp::NotEqual => (a != b) as u8 as f32,
            BinaryOp::Greater => (a > b) as u8 as f32,
            BinaryOp::GreaterEqual => (a >= b) as u8 as f32,
            BinaryOp::Less => (a < b) as u8 as f32,
            BinaryOp::LessEqual => (a <= b) as u8 as f32,
            BinaryOp::LogicalAnd => ((a != 0.0) && (b != 0.0)) as u8 as f32,
            BinaryOp::LogicalOr => ((a != 0.0) || (b != 0.0)) as u8 as f32,
            BinaryOp::LogicalXor => ((a != 0.0) ^ (b != 0.0)) as u8 as f32,
        }
    }

    /// Whether the kernel produces a boolean output.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Equal
                | BinaryOp::NotEqual
                | BinaryOp::Greater
                | BinaryOp::GreaterEqual
                | BinaryOp::Less
                | BinaryOp::LessEqual
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr
                | BinaryOp::LogicalXor
        )
    }

    /// Kernel name for profiling output.
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "Add",
            BinaryOp::Sub => "Sub",
            BinaryOp::Mul => "Mul",
            BinaryOp::Div => "Div",
            BinaryOp::FloorDiv => "FloorDiv",
            BinaryOp::Pow => "Pow",
            BinaryOp::Maximum => "Maximum",
            BinaryOp::Minimum => "Minimum",
            BinaryOp::Mod => "Mod",
            BinaryOp::SquaredDifference => "SquaredDifference",
            BinaryOp::Atan2 => "Atan2",
            BinaryOp::Equal => "Equal",
            BinaryOp::NotEqual => "NotEqual",
            BinaryOp::Greater => "Greater",
            BinaryOp::GreaterEqual => "GreaterEqual",
            BinaryOp::Less => "Less",
            BinaryOp::LessEqual => "LessEqual",
            BinaryOp::LogicalAnd => "LogicalAnd",
            BinaryOp::LogicalOr => "LogicalOr",
            BinaryOp::LogicalXor => "LogicalXor",
        }
    }
}

/// One step of a fused elementwise chain (see [`Backend::fused_elementwise`]).
///
/// The chain threads a single running value through each step: a `Unary`
/// step maps it, a `Binary` step combines it (as the left operand) with one
/// of the extra inputs. This is the kernel-level form of fusing e.g.
/// `relu(x * scale + shift)` into one device program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedStep {
    /// Apply a unary op to the running chain value.
    Unary(UnaryOp),
    /// Combine the running chain value (left operand) with `extras[i]`
    /// (right operand), where `i` is the payload index.
    Binary(BinaryOp, usize),
}

/// Reduction kernels. Output shape never keeps reduced dims — the op layer
/// reshapes afterwards (reshape is free) when `keep_dims` is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Product of elements.
    Prod,
    /// Maximum element.
    Max,
    /// Minimum element.
    Min,
    /// Logical any (for bool tensors).
    Any,
    /// Logical all (for bool tensors).
    All,
}

impl ReduceOp {
    /// Identity element of the reduction.
    pub fn init(self) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean | ReduceOp::Any => 0.0,
            ReduceOp::Prod | ReduceOp::All => 1.0,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
        }
    }

    /// Combine an accumulator with the next element.
    pub fn combine(self, acc: f32, x: f32) -> f32 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => acc + x,
            ReduceOp::Prod => acc * x,
            ReduceOp::Max => acc.max(x),
            ReduceOp::Min => acc.min(x),
            ReduceOp::Any => ((acc != 0.0) || (x != 0.0)) as u8 as f32,
            ReduceOp::All => ((acc != 0.0) && (x != 0.0)) as u8 as f32,
        }
    }

    /// Finalize the accumulator given the reduced element count.
    pub fn finalize(self, acc: f32, count: usize) -> f32 {
        match self {
            ReduceOp::Mean => acc / count as f32,
            _ => acc,
        }
    }

    /// Output dtype of the reduction given the input dtype.
    pub fn out_dtype(self, input: DType) -> DType {
        match self {
            ReduceOp::Any | ReduceOp::All => DType::Bool,
            ReduceOp::Mean => {
                if input.is_float() {
                    input
                } else {
                    DType::F32
                }
            }
            ReduceOp::Sum | ReduceOp::Prod => {
                if input == DType::Bool {
                    DType::I32
                } else {
                    input
                }
            }
            ReduceOp::Max | ReduceOp::Min => input,
        }
    }

    /// Kernel name for profiling output.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "Sum",
            ReduceOp::Mean => "Mean",
            ReduceOp::Prod => "Prod",
            ReduceOp::Max => "Max",
            ReduceOp::Min => "Min",
            ReduceOp::Any => "Any",
            ReduceOp::All => "All",
        }
    }
}

/// Index-producing reductions over a single axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgReduceOp {
    /// Index of the maximum.
    ArgMax,
    /// Index of the minimum.
    ArgMin,
}

/// 2-D pooling kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolOp {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Memory usage snapshot of a backend (paper Sec 3.8, `tf.memory()`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackendMemory {
    /// Number of live data containers.
    pub num_buffers: usize,
    /// Total bytes held by live containers.
    pub num_bytes: usize,
    /// Backend-specific extra gauges (e.g. textures in GPU, bytes paged).
    pub details: Vec<(String, f64)>,
}

/// Kernel timing info returned by [`Backend::end_timing`] (paper Sec 3.8:
/// each backend is responsible for timing, e.g. WebGL reports pure GPU time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTiming {
    /// Device-measured kernel milliseconds (GPU time on webgl).
    pub kernel_ms: f64,
}

/// Shared state of a [`DataFuture`] / [`DataPromise`] pair.
#[derive(Debug)]
struct FutureState {
    slot: Mutex<Option<Result<TensorData>>>,
    cond: Condvar,
}

/// The write half of a pending async read; completed by the device thread.
#[derive(Debug, Clone)]
pub struct DataPromise {
    state: Arc<FutureState>,
}

impl DataPromise {
    /// Resolve the paired future.
    pub fn complete(&self, data: Result<TensorData>) {
        let mut slot = self.state.slot.lock();
        *slot = Some(data);
        self.state.cond.notify_all();
    }
}

/// A promise-like handle to tensor data being produced asynchronously — the
/// analogue of the Promise returned by `tensor.data()` (paper Sec 3.6).
#[derive(Debug)]
pub struct DataFuture {
    state: Arc<FutureState>,
}

impl DataFuture {
    /// Create an unresolved future plus its completing promise.
    pub fn pending() -> (DataFuture, DataPromise) {
        let state = Arc::new(FutureState { slot: Mutex::new(None), cond: Condvar::new() });
        (DataFuture { state: state.clone() }, DataPromise { state })
    }

    /// Create an already-resolved future (synchronous backends).
    pub fn ready(data: Result<TensorData>) -> DataFuture {
        let state =
            Arc::new(FutureState { slot: Mutex::new(Some(data)), cond: Condvar::new() });
        DataFuture { state }
    }

    /// Non-blocking poll: `Some` once the data is available.
    pub fn poll(&self) -> Option<Result<TensorData>> {
        self.state.slot.lock().clone()
    }

    /// Whether the future has resolved.
    pub fn is_ready(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Block until the data is available.
    pub fn wait(&self) -> Result<TensorData> {
        let mut slot = self.state.slot.lock();
        while slot.is_none() {
            self.state.cond.wait(&mut slot);
        }
        slot.clone().expect("future resolved")
    }
}

/// A backend-neutral fence token (`gl.fenceSync`, paper Sec 4.1.1):
/// covers all device work submitted before it was issued. Obtained from
/// [`Backend::submit_fence`]; awaited with [`Backend::wait_fence`] or
/// polled with [`Backend::fence_passed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FenceToken(pub u64);

/// A device-specific kernel implementation set (paper Sec 3.3/3.4).
///
/// Implementations must be thread-safe: the engine may be shared across
/// threads, and the webgl backend's device thread reads textures concurrently.
pub trait Backend: Send + Sync {
    /// Short identifier, e.g. `"cpu"`, `"webgl"`, `"native"`.
    fn name(&self) -> &str;

    /// Store a host buffer, returning its container id.
    fn register(&self, data: TensorData, dtype: DType) -> DataId;

    /// Synchronously read a container back to the host (blocking flush on
    /// queued backends — the `dataSync()` path, Figure 2).
    ///
    /// # Errors
    /// Fails if the id is unknown or the device errored.
    fn read_sync(&self, id: DataId) -> Result<TensorData>;

    /// Asynchronously read a container (the `data()` path, Figure 3).
    fn read(&self, id: DataId) -> DataFuture;

    /// Release a container's storage.
    fn dispose_data(&self, id: DataId);

    /// Memory usage snapshot.
    fn memory(&self) -> BackendMemory;

    /// Smallest positive value safely representable at this backend's float
    /// precision (paper Sec 4.1.3: adjusted per device, 1e-7 on f32 devices,
    /// 1e-4 on f16-only devices).
    fn epsilon(&self) -> f32 {
        1e-7
    }

    /// Bits of float precision (32 or 16).
    fn float_precision(&self) -> u8 {
        32
    }

    /// Start a kernel-timing window (`tf.time`, paper Sec 3.8).
    fn begin_timing(&self) {}

    /// Finish the timing window and report device kernel time.
    fn end_timing(&self) -> KernelTiming {
        KernelTiming::default()
    }

    /// Cumulative device-side kernel nanoseconds since backend creation,
    /// as measured by the device's own timer — the disjoint-timer-query
    /// counter on the webgl backend. `None` when the device exposes no
    /// timer (e.g. `EXT_disjoint_timer_query` absent), in which case
    /// profiles degrade gracefully to wall-clock only.
    ///
    /// Implementations may flush pending device work so the counter
    /// covers every kernel enqueued so far; callers should only sample it
    /// while profiling (the engine brackets each kernel with two samples).
    fn device_timer_ns(&self) -> Option<u64> {
        None
    }

    // --- async submission (paper Sec 4.1.1, Figs 2-3) ----------------------

    /// Insert a fence into the device command stream and return a token
    /// covering all work submitted so far (`gl.fenceSync`).
    ///
    /// Synchronous backends (cpu, native) return `None`: every kernel has
    /// already completed by the time it returned, so there is nothing to
    /// wait for — `None` means "all prior work is done". Queued backends
    /// override this to return a real token.
    fn submit_fence(&self) -> Option<FenceToken> {
        None
    }

    /// Poll whether `token`'s fence has passed (all work submitted before
    /// it has executed). Non-blocking.
    fn fence_passed(&self, _token: FenceToken) -> bool {
        true
    }

    /// Block until `token`'s fence passes (`gl.clientWaitSync`). Queued
    /// backends implement this as a condvar sleep on the device queue, not
    /// a spin.
    fn wait_fence(&self, _token: FenceToken) {}

    // --- kernels -----------------------------------------------------------

    /// Element-wise unary kernel.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId>;

    /// Element-wise binary kernel with broadcasting. `out_shape` is the
    /// broadcast shape computed by the op layer.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId>;

    /// Cast to another dtype.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId>;

    /// Reduction over `axes` (sorted, unique). Output drops reduced dims.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId>;

    /// Arg-reduction over a single axis; output dtype is I32.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId>;

    /// (Batched) matrix multiplication of rank-3 tensors `[b, m, k] x [b, k, n]`.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId>;

    /// 2-D convolution, NHWC x HWIO.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId>;

    /// Gradient of conv2d w.r.t. its input.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// Gradient of conv2d w.r.t. its filter.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// Depthwise 2-D convolution, filter `[fh, fw, c, mul]`.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// Gradient of depthwise conv2d w.r.t. its input.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// Gradient of depthwise conv2d w.r.t. its filter.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// 2-D max/avg pooling.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId>;

    /// Gradient of 2-D pooling.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId>;

    /// Contiguous slice `x[begin .. begin+size]` per axis.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId>;

    /// Concatenate along `axis`. All inputs share rank and non-axis dims.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId>;

    /// Permute dimensions.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId>;

    /// Pad with a constant value; `paddings[i] = (before, after)`.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId>;

    /// Gather slices along `axis` using integer `indices`.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId>;

    /// Tile (repeat) each dimension `reps[i]` times.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId>;

    /// Reverse along the given axes.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId>;

    /// Element-wise select: `cond ? a : b` (shapes already broadcast).
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId>;

    /// One-hot encode integer `indices` into a new trailing dim of `depth`.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId>;

    /// Bilinear image resize of an NHWC tensor.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId>;

    // --- fused kernels (paper Sec 3.9/4.1: draw-call overhead) -------------
    //
    // Each fused kernel has a default implementation that composes the
    // unfused kernels above, so backends stay correct with zero changes.
    // Backends that override these with a real single-pass kernel must keep
    // the epilogue order bit-identical to the composition: finish the full
    // accumulation, then `acc + bias[channel]`, then `activation(acc)` —
    // every scalar routed through [`BinaryOp::apply`] / [`UnaryOp::apply`].
    // An override that cannot run its fused program (e.g. the driver rejects
    // the shader) must fall back to the matching `fused_*_fallback` helper
    // on the SAME backend instead of surfacing the error.

    /// Batched matmul `[b, m, k] x [b, k, n]` with an optional rank-1 bias
    /// `[n]` added to every output row and an optional activation applied
    /// in the same kernel.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn fused_matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        fused_matmul_fallback(self, a, b, bias, activation, transpose_a, transpose_b)
    }

    /// 2-D convolution with an optional rank-1 bias `[out_channels]` and an
    /// optional activation applied in the same kernel.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn fused_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        fused_conv2d_fallback(self, x, filter, bias, activation, info)
    }

    /// Depthwise 2-D convolution with an optional rank-1 bias
    /// `[out_channels]` and an optional activation applied in the same
    /// kernel.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn fused_depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        fused_depthwise_conv2d_fallback(self, x, filter, bias, activation, info)
    }

    /// Execute a chain of elementwise steps over `x` as one kernel. Binary
    /// steps broadcast the extra input against the running chain shape; the
    /// final shape must equal `out_shape` (validated by the op layer).
    ///
    /// # Errors
    /// Backend-specific execution failure, or an empty `steps` list.
    fn fused_elementwise(
        &self,
        x: &KTensor<'_>,
        extras: &[KTensor<'_>],
        steps: &[FusedStep],
        out_shape: &Shape,
    ) -> Result<DataId> {
        fused_elementwise_fallback(self, x, extras, steps, out_shape)
    }

    // --- quantized fused kernels (paper Sec 5.1: uint8 weights) ------------
    //
    // The quantized variants take the right-hand operand / filter as raw U8
    // codes plus affine `QuantParams` and must be *dequant-free*: no f32
    // weight tensor is ever materialized. Real overrides use the factored
    // accumulation `Σ aₖ(qₖs+m) = s·Σ aₖqₖ + m·Σ aₖ` and apply scale/min in
    // the epilogue, before bias and activation — in exactly the epilogue
    // order documented above, every scalar through `BinaryOp::apply` /
    // `UnaryOp::apply`. The defaults below dequantize host-side and defer
    // to the f32 fused kernel, so every backend is correct with no changes.

    /// [`Backend::fused_matmul`] with a quantized right-hand operand: `b`
    /// holds raw U8 codes dequantizing as `code * scale + min` per
    /// `b_params` (per-tensor, or per-channel along the output-column axis).
    ///
    /// # Errors
    /// Backend-specific execution failure.
    #[allow(clippy::too_many_arguments)] // mirrors fused_matmul plus params
    fn fused_matmul_quant(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        b_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        fused_matmul_quant_fallback(self, a, b, b_params, bias, activation, transpose_a, transpose_b)
    }

    /// [`Backend::fused_conv2d`] with a quantized filter (U8 codes plus
    /// `filter_params`; per-channel params index the output-channel axis).
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn fused_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        fused_conv2d_quant_fallback(self, x, filter, filter_params, bias, activation, info)
    }

    /// [`Backend::fused_depthwise_conv2d`] with a quantized filter.
    ///
    /// # Errors
    /// Backend-specific execution failure.
    fn fused_depthwise_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        fused_depthwise_conv2d_quant_fallback(self, x, filter, filter_params, bias, activation, info)
    }
}

/// Materialize a quantized operand as a temporary f32 container on the same
/// backend, via the host-side reference dequantization. The returned id is
/// owned by the caller (dispose after use). This is the *fallback* path
/// only — real quantized kernels never materialize f32 weights.
fn dequantize_to_f32<B: Backend + ?Sized>(
    backend: &B,
    t: &KTensor<'_>,
    params: &crate::quant::QuantParams,
) -> Result<DataId> {
    let host = backend.read_sync(t.data)?;
    // Backends that store U8 codes as floats on the device (the WebGL R8
    // texture path) read back exact integer-valued f32s; round-trip them.
    let codes: Vec<u8> = match host {
        TensorData::U8(v) => v,
        other => other.to_f32_vec().iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect(),
    };
    let values = params.dequantize(&codes, t.shape.dims());
    Ok(backend.register(TensorData::F32(values), DType::F32))
}

/// Reference composition for [`Backend::fused_matmul_quant`]: host-side
/// dequantize, then the backend's own f32 fused matmul. Also the fallback a
/// quantized override uses when its program cannot run.
///
/// # Errors
/// Propagates the first failing kernel or read.
#[allow(clippy::too_many_arguments)] // mirrors the trait method
pub fn fused_matmul_quant_fallback<B: Backend + ?Sized>(
    backend: &B,
    a: &KTensor<'_>,
    b: &KTensor<'_>,
    b_params: &crate::quant::QuantParams,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<DataId> {
    let fid = dequantize_to_f32(backend, b, b_params)?;
    let batch = a.shape.dim(0);
    // Quantized weights broadcast a batch-1 `b` across the batch; the f32
    // fused kernel expects matching batch dims, so tile the temporary.
    if b.shape.dim(0) == 1 && batch > 1 {
        let fb = KTensor { data: fid, shape: b.shape, dtype: DType::F32 };
        let tiled = backend.tile(&fb, &[batch, 1, 1]);
        backend.dispose_data(fid);
        let tid = tiled?;
        let tiled_shape = Shape::new(vec![batch, b.shape.dim(1), b.shape.dim(2)]);
        let tb = KTensor { data: tid, shape: &tiled_shape, dtype: DType::F32 };
        let out = backend.fused_matmul(a, &tb, bias, activation, transpose_a, transpose_b);
        backend.dispose_data(tid);
        return out;
    }
    let fb = KTensor { data: fid, shape: b.shape, dtype: DType::F32 };
    let out = backend.fused_matmul(a, &fb, bias, activation, transpose_a, transpose_b);
    backend.dispose_data(fid);
    out
}

/// Reference composition for [`Backend::fused_conv2d_quant`] (see
/// [`fused_matmul_quant_fallback`]).
///
/// # Errors
/// Propagates the first failing kernel or read.
pub fn fused_conv2d_quant_fallback<B: Backend + ?Sized>(
    backend: &B,
    x: &KTensor<'_>,
    filter: &KTensor<'_>,
    filter_params: &crate::quant::QuantParams,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Result<DataId> {
    let fid = dequantize_to_f32(backend, filter, filter_params)?;
    let ff = KTensor { data: fid, shape: filter.shape, dtype: DType::F32 };
    let out = backend.fused_conv2d(x, &ff, bias, activation, info);
    backend.dispose_data(fid);
    out
}

/// Reference composition for [`Backend::fused_depthwise_conv2d_quant`] (see
/// [`fused_matmul_quant_fallback`]).
///
/// # Errors
/// Propagates the first failing kernel or read.
pub fn fused_depthwise_conv2d_quant_fallback<B: Backend + ?Sized>(
    backend: &B,
    x: &KTensor<'_>,
    filter: &KTensor<'_>,
    filter_params: &crate::quant::QuantParams,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Result<DataId> {
    let fid = dequantize_to_f32(backend, filter, filter_params)?;
    let ff = KTensor { data: fid, shape: filter.shape, dtype: DType::F32 };
    let out = backend.fused_depthwise_conv2d(x, &ff, bias, activation, info);
    backend.dispose_data(fid);
    out
}

/// Apply the shared bias+activation epilogue with unfused kernels, disposing
/// the intermediate containers. Takes ownership of `id` (disposes it if a
/// later stage replaces it, even on error).
fn epilogue_fallback<B: Backend + ?Sized>(
    backend: &B,
    mut id: DataId,
    out_shape: &Shape,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
) -> Result<DataId> {
    if let Some(bias) = bias {
        let cur = KTensor { data: id, shape: out_shape, dtype: DType::F32 };
        let next = backend.binary(BinaryOp::Add, &cur, bias, out_shape, DType::F32);
        backend.dispose_data(id);
        id = next?;
    }
    if let Some(act) = activation {
        let cur = KTensor { data: id, shape: out_shape, dtype: DType::F32 };
        let next = backend.unary(act, &cur);
        backend.dispose_data(id);
        id = next?;
    }
    Ok(id)
}

/// Reference composition for [`Backend::fused_matmul`]: unfused matmul, then
/// bias add, then activation. Also the fallback a fused-kernel override uses
/// when its program fails to compile on a faulted device.
///
/// # Errors
/// Propagates the first failing unfused kernel.
pub fn fused_matmul_fallback<B: Backend + ?Sized>(
    backend: &B,
    a: &KTensor<'_>,
    b: &KTensor<'_>,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<DataId> {
    let batch = a.shape.dim(0);
    let m = if transpose_a { a.shape.dim(2) } else { a.shape.dim(1) };
    let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
    let out_shape = Shape::new(vec![batch, m, n]);
    let id = backend.matmul(a, b, transpose_a, transpose_b)?;
    epilogue_fallback(backend, id, &out_shape, bias, activation)
}

/// Reference composition for [`Backend::fused_conv2d`] (see
/// [`fused_matmul_fallback`]).
///
/// # Errors
/// Propagates the first failing unfused kernel.
pub fn fused_conv2d_fallback<B: Backend + ?Sized>(
    backend: &B,
    x: &KTensor<'_>,
    filter: &KTensor<'_>,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Result<DataId> {
    let out_shape = info.out_shape();
    let id = backend.conv2d(x, filter, info)?;
    epilogue_fallback(backend, id, &out_shape, bias, activation)
}

/// Reference composition for [`Backend::fused_depthwise_conv2d`] (see
/// [`fused_matmul_fallback`]).
///
/// # Errors
/// Propagates the first failing unfused kernel.
pub fn fused_depthwise_conv2d_fallback<B: Backend + ?Sized>(
    backend: &B,
    x: &KTensor<'_>,
    filter: &KTensor<'_>,
    bias: Option<&KTensor<'_>>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Result<DataId> {
    let out_shape = info.out_shape();
    let id = backend.depthwise_conv2d(x, filter, info)?;
    epilogue_fallback(backend, id, &out_shape, bias, activation)
}

/// Reference composition for [`Backend::fused_elementwise`]: one unfused
/// unary/binary kernel per step, disposing every intermediate.
///
/// # Errors
/// Propagates the first failing unfused kernel; rejects empty `steps` and
/// out-of-range extra indices.
pub fn fused_elementwise_fallback<B: Backend + ?Sized>(
    backend: &B,
    x: &KTensor<'_>,
    extras: &[KTensor<'_>],
    steps: &[FusedStep],
    _out_shape: &Shape,
) -> Result<DataId> {
    if steps.is_empty() {
        return Err(Error::invalid("FusedElementwise", "steps must be non-empty"));
    }
    let mut shape = x.shape.clone();
    let mut id = x.data;
    let mut owned = false; // the incoming x is never disposed
    for step in steps {
        let cur = KTensor { data: id, shape: &shape, dtype: DType::F32 };
        let res: Result<(DataId, Shape)> = (|| match *step {
            FusedStep::Unary(op) => Ok((backend.unary(op, &cur)?, shape.clone())),
            FusedStep::Binary(op, i) => {
                let e = extras.get(i).ok_or_else(|| {
                    Error::invalid(
                        "FusedElementwise",
                        format!("binary step references extra {i} of {}", extras.len()),
                    )
                })?;
                let s = broadcast_shapes("FusedElementwise", &shape, e.shape)?;
                Ok((backend.binary(op, &cur, e, &s, DType::F32)?, s))
            }
        })();
        if owned {
            backend.dispose_data(id);
        }
        let (next, next_shape) = res?;
        id = next;
        shape = next_shape;
        owned = true;
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_scalar_semantics() {
        assert_eq!(UnaryOp::Relu.apply(-3.0), 0.0);
        assert_eq!(UnaryOp::Relu6.apply(9.0), 6.0);
        assert_eq!(UnaryOp::Sign.apply(-0.5), -1.0);
        assert_eq!(UnaryOp::LeakyRelu(0.2).apply(-10.0), -2.0);
        assert_eq!(UnaryOp::ClipByValue(-1.0, 1.0).apply(5.0), 1.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_is_stable_for_large_inputs() {
        assert!(UnaryOp::Softplus.apply(1000.0).is_finite());
        assert!((UnaryOp::Softplus.apply(1000.0) - 1000.0).abs() < 1e-3);
        assert!(UnaryOp::Softplus.apply(-1000.0).abs() < 1e-6);
    }

    #[test]
    fn binary_scalar_semantics() {
        assert_eq!(BinaryOp::Mod.apply(-7.0, 3.0), 2.0);
        assert_eq!(BinaryOp::FloorDiv.apply(7.0, 2.0), 3.0);
        assert_eq!(BinaryOp::SquaredDifference.apply(5.0, 2.0), 9.0);
        assert_eq!(BinaryOp::Greater.apply(2.0, 1.0), 1.0);
        assert_eq!(BinaryOp::LogicalXor.apply(1.0, 1.0), 0.0);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Equal.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Sum.init(), 0.0);
        assert_eq!(ReduceOp::Prod.init(), 1.0);
        assert_eq!(ReduceOp::Max.init(), f32::NEG_INFINITY);
        assert_eq!(ReduceOp::Mean.finalize(10.0, 4), 2.5);
    }

    #[test]
    fn future_resolves_via_promise() {
        let (fut, promise) = DataFuture::pending();
        assert!(!fut.is_ready());
        assert!(fut.poll().is_none());
        promise.complete(Ok(TensorData::F32(vec![1.0])));
        assert!(fut.is_ready());
        assert_eq!(fut.wait().unwrap(), TensorData::F32(vec![1.0]));
    }

    #[test]
    fn ready_future_is_immediate() {
        let fut = DataFuture::ready(Ok(TensorData::I32(vec![7])));
        assert_eq!(fut.poll().unwrap().unwrap(), TensorData::I32(vec![7]));
    }

    #[test]
    fn future_wait_blocks_until_complete() {
        let (fut, promise) = DataFuture::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            promise.complete(Ok(TensorData::F32(vec![2.0])));
        });
        assert_eq!(fut.wait().unwrap(), TensorData::F32(vec![2.0]));
        t.join().unwrap();
    }
}
