//! Convolution and pooling geometry shared by all backends.
//!
//! All spatial ops use NHWC layout (batch, height, width, channels), the
//! TensorFlow.js default, and HWIO filter layout (height, width, in-channels,
//! out-channels).

use crate::error::{Error, Result};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// Padding scheme for convolutions and pooling, per TensorFlow semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Padding {
    /// No implicit padding; output shrinks.
    Valid,
    /// Pad so that `out = ceil(in / stride)`.
    Same,
    /// Explicit symmetric padding `(top, bottom, left, right)`.
    Explicit(usize, usize, usize, usize),
}

impl Padding {
    /// The tfjs-style string name for serialization.
    pub fn name(&self) -> String {
        match self {
            Padding::Valid => "valid".to_string(),
            Padding::Same => "same".to_string(),
            Padding::Explicit(t, b, l, r) => format!("explicit({t},{b},{l},{r})"),
        }
    }
}

/// Fully resolved geometry of a conv2d / depthwise-conv2d / pool2d call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conv2dInfo {
    /// Batch size.
    pub batch: usize,
    /// Input spatial height.
    pub in_height: usize,
    /// Input spatial width.
    pub in_width: usize,
    /// Input channel count.
    pub in_channels: usize,
    /// Output spatial height.
    pub out_height: usize,
    /// Output spatial width.
    pub out_width: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Filter height.
    pub filter_height: usize,
    /// Filter width.
    pub filter_width: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical dilation.
    pub dilation_h: usize,
    /// Horizontal dilation.
    pub dilation_w: usize,
    /// Padding applied above the input.
    pub pad_top: usize,
    /// Padding applied left of the input.
    pub pad_left: usize,
    /// Channel multiplier (depthwise convs); 1 for regular convs.
    pub channel_mul: usize,
}

impl Conv2dInfo {
    /// Output shape in NHWC.
    pub fn out_shape(&self) -> Shape {
        Shape::new(vec![self.batch, self.out_height, self.out_width, self.out_channels])
    }

    /// The effective filter extent including dilation.
    pub fn effective_filter(&self) -> (usize, usize) {
        (
            self.filter_height + (self.filter_height - 1) * (self.dilation_h - 1),
            self.filter_width + (self.filter_width - 1) * (self.dilation_w - 1),
        )
    }
}

fn out_dim(input: usize, filter: usize, stride: usize, dilation: usize, pad: Padding) -> (usize, usize) {
    let eff = filter + (filter - 1) * (dilation - 1);
    match pad {
        Padding::Valid => {
            let out = if input >= eff { (input - eff) / stride + 1 } else { 0 };
            (out, 0)
        }
        Padding::Same => {
            let out = input.div_ceil(stride);
            let total_pad = ((out - 1) * stride + eff).saturating_sub(input);
            (out, total_pad / 2)
        }
        Padding::Explicit(before, after, _, _) => {
            let padded = input + before + after;
            let out = if padded >= eff { (padded - eff) / stride + 1 } else { 0 };
            (out, before)
        }
    }
}

/// Compute the geometry of a conv2d.
///
/// `x_shape` is NHWC, `filter_shape` is HWIO `[fh, fw, in_c, out_c]`.
///
/// # Errors
/// Returns a shape error if the input is not rank 4 or channels mismatch.
pub fn conv2d_info(
    op: &'static str,
    x_shape: &Shape,
    filter_shape: &Shape,
    strides: (usize, usize),
    pad: Padding,
    dilations: (usize, usize),
) -> Result<Conv2dInfo> {
    if x_shape.rank() != 4 {
        return Err(Error::shape(op, format!("input must be rank 4 NHWC, got {x_shape}")));
    }
    if filter_shape.rank() != 4 {
        return Err(Error::shape(op, format!("filter must be rank 4 HWIO, got {filter_shape}")));
    }
    let (batch, in_h, in_w, in_c) =
        (x_shape.dim(0), x_shape.dim(1), x_shape.dim(2), x_shape.dim(3));
    let (fh, fw, f_in, out_c) =
        (filter_shape.dim(0), filter_shape.dim(1), filter_shape.dim(2), filter_shape.dim(3));
    if f_in != in_c {
        return Err(Error::shape(
            op,
            format!("filter in-channels {f_in} does not match input channels {in_c}"),
        ));
    }
    if strides.0 == 0 || strides.1 == 0 {
        return Err(Error::invalid(op, "strides must be positive"));
    }
    let (out_h, pad_top) = out_dim(in_h, fh, strides.0, dilations.0, pad);
    let (out_w, pad_left) = match pad {
        Padding::Explicit(_, _, l, r) => out_dim(in_w, fw, strides.1, dilations.1, Padding::Explicit(l, r, 0, 0)),
        p => out_dim(in_w, fw, strides.1, dilations.1, p),
    };
    Ok(Conv2dInfo {
        batch,
        in_height: in_h,
        in_width: in_w,
        in_channels: in_c,
        out_height: out_h,
        out_width: out_w,
        out_channels: out_c,
        filter_height: fh,
        filter_width: fw,
        stride_h: strides.0,
        stride_w: strides.1,
        dilation_h: dilations.0,
        dilation_w: dilations.1,
        pad_top,
        pad_left,
        channel_mul: 1,
    })
}

/// Compute the geometry of a depthwise conv2d.
///
/// `filter_shape` is `[fh, fw, in_c, channel_mul]`; output channels are
/// `in_c * channel_mul`.
///
/// # Errors
/// Returns a shape error on rank or channel mismatches.
pub fn depthwise_conv2d_info(
    op: &'static str,
    x_shape: &Shape,
    filter_shape: &Shape,
    strides: (usize, usize),
    pad: Padding,
    dilations: (usize, usize),
) -> Result<Conv2dInfo> {
    let mut info = conv2d_info(op, x_shape, filter_shape, strides, pad, dilations)?;
    let channel_mul = filter_shape.dim(3);
    info.channel_mul = channel_mul;
    info.out_channels = info.in_channels * channel_mul;
    Ok(info)
}

/// Compute the geometry of a 2-D pooling op (`filter` is the window size).
///
/// # Errors
/// Returns a shape error if the input is not rank 4.
pub fn pool2d_info(
    op: &'static str,
    x_shape: &Shape,
    window: (usize, usize),
    strides: (usize, usize),
    pad: Padding,
) -> Result<Conv2dInfo> {
    if x_shape.rank() != 4 {
        return Err(Error::shape(op, format!("input must be rank 4 NHWC, got {x_shape}")));
    }
    let (batch, in_h, in_w, in_c) =
        (x_shape.dim(0), x_shape.dim(1), x_shape.dim(2), x_shape.dim(3));
    let (out_h, pad_top) = out_dim(in_h, window.0, strides.0, 1, pad);
    let (out_w, pad_left) = match pad {
        Padding::Explicit(_, _, l, r) => out_dim(in_w, window.1, strides.1, 1, Padding::Explicit(l, r, 0, 0)),
        p => out_dim(in_w, window.1, strides.1, 1, p),
    };
    Ok(Conv2dInfo {
        batch,
        in_height: in_h,
        in_width: in_w,
        in_channels: in_c,
        out_height: out_h,
        out_width: out_w,
        out_channels: in_c,
        filter_height: window.0,
        filter_width: window.1,
        stride_h: strides.0,
        stride_w: strides.1,
        dilation_h: 1,
        dilation_w: 1,
        pad_top,
        pad_left,
        channel_mul: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(d: &[usize]) -> Shape {
        Shape::new(d.to_vec())
    }

    #[test]
    fn conv_same_preserves_spatial_at_stride_1() {
        let info = conv2d_info(
            "conv2d",
            &shape(&[1, 224, 224, 3]),
            &shape(&[3, 3, 3, 32]),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        assert_eq!(info.out_shape(), shape(&[1, 224, 224, 32]));
        assert_eq!(info.pad_top, 1);
    }

    #[test]
    fn conv_same_stride_2_halves() {
        let info = conv2d_info(
            "conv2d",
            &shape(&[1, 224, 224, 3]),
            &shape(&[3, 3, 3, 32]),
            (2, 2),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        assert_eq!(info.out_shape(), shape(&[1, 112, 112, 32]));
    }

    #[test]
    fn conv_valid_shrinks() {
        let info = conv2d_info(
            "conv2d",
            &shape(&[2, 5, 5, 1]),
            &shape(&[3, 3, 1, 4]),
            (1, 1),
            Padding::Valid,
            (1, 1),
        )
        .unwrap();
        assert_eq!(info.out_shape(), shape(&[2, 3, 3, 4]));
        assert_eq!(info.pad_top, 0);
    }

    #[test]
    fn conv_dilation_extends_filter() {
        let info = conv2d_info(
            "conv2d",
            &shape(&[1, 7, 7, 1]),
            &shape(&[3, 3, 1, 1]),
            (1, 1),
            Padding::Valid,
            (2, 2),
        )
        .unwrap();
        // Effective filter 5x5 -> output 3x3.
        assert_eq!(info.out_shape(), shape(&[1, 3, 3, 1]));
        assert_eq!(info.effective_filter(), (5, 5));
    }

    #[test]
    fn conv_channel_mismatch_errors() {
        let e = conv2d_info(
            "conv2d",
            &shape(&[1, 8, 8, 3]),
            &shape(&[3, 3, 4, 8]),
            (1, 1),
            Padding::Same,
            (1, 1),
        );
        assert!(e.is_err());
    }

    #[test]
    fn depthwise_multiplies_channels() {
        let info = depthwise_conv2d_info(
            "depthwiseConv2d",
            &shape(&[1, 8, 8, 3]),
            &shape(&[3, 3, 3, 2]),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        assert_eq!(info.out_channels, 6);
        assert_eq!(info.channel_mul, 2);
    }

    #[test]
    fn pool_geometry() {
        let info =
            pool2d_info("maxPool", &shape(&[1, 4, 4, 8]), (2, 2), (2, 2), Padding::Valid).unwrap();
        assert_eq!(info.out_shape(), shape(&[1, 2, 2, 8]));
    }

    #[test]
    fn explicit_padding() {
        let info = conv2d_info(
            "conv2d",
            &shape(&[1, 4, 4, 1]),
            &shape(&[3, 3, 1, 1]),
            (1, 1),
            Padding::Explicit(1, 1, 1, 1),
            (1, 1),
        )
        .unwrap();
        assert_eq!(info.out_shape(), shape(&[1, 4, 4, 1]));
        assert_eq!((info.pad_top, info.pad_left), (1, 1));
    }

    #[test]
    fn zero_stride_is_rejected() {
        let e = conv2d_info(
            "conv2d",
            &shape(&[1, 4, 4, 1]),
            &shape(&[3, 3, 1, 1]),
            (0, 1),
            Padding::Same,
            (1, 1),
        );
        assert!(e.is_err());
    }
}
