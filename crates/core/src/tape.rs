//! The gradient tape for eager automatic differentiation (paper Sec 3.5).
//!
//! TensorFlow.js uses eager differentiation: while a gradient scope is
//! active, every kernel the engine runs appends a [`TapeNode`] recording its
//! inputs, outputs and a gradient function. Backpropagation walks the tape in
//! reverse, restricted to nodes on a path from the requested inputs `xs` to
//! the output `y`.

use crate::error::Result;
use crate::tensor::Tensor;
use std::collections::HashSet;
use std::sync::Arc;

/// Gradient function of a kernel: given the gradients flowing into each
/// output (`dys`), the saved input tensors and the saved output tensors,
/// produce the gradient for each input (or `None` for non-differentiable
/// inputs such as integer index tensors).
pub type GradFn =
    Arc<dyn Fn(&[Tensor], &[Tensor], &[Tensor]) -> Result<Vec<Option<Tensor>>> + Send + Sync>;

/// One recorded kernel invocation.
pub struct TapeNode {
    /// Kernel name, for error messages.
    pub kernel: &'static str,
    /// Tensor ids of the inputs, in call order.
    pub input_ids: Vec<usize>,
    /// Tensor ids of the outputs.
    pub output_ids: Vec<usize>,
    /// Saved input handles (kept alive for the backward pass).
    pub inputs: Vec<Tensor>,
    /// Saved output handles.
    pub outputs: Vec<Tensor>,
    /// The gradient function.
    pub grad_fn: GradFn,
}

impl std::fmt::Debug for TapeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapeNode")
            .field("kernel", &self.kernel)
            .field("input_ids", &self.input_ids)
            .field("output_ids", &self.output_ids)
            .finish()
    }
}

/// An append-only record of kernel invocations inside a gradient scope.
#[derive(Debug, Default)]
pub struct Tape {
    /// Recorded nodes, in execution order.
    pub nodes: Vec<TapeNode>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    /// Append a node.
    pub fn record(&mut self, node: TapeNode) {
        self.nodes.push(node);
    }

    /// Indices of nodes that lie on a path from any of `x_ids` to any of
    /// `y_ids` — the eager analogue of TensorFlow's pruned gradient graph.
    ///
    /// A node qualifies if (a) at least one input is reachable *from* an x
    /// (forward pass over the tape) and (b) at least one output *reaches* a y
    /// (backward pass). Nodes off this path are skipped during backprop.
    pub fn filter_nodes(&self, x_ids: &[usize], y_ids: &[usize]) -> Vec<usize> {
        // Forward reachability from xs.
        let mut from_x: HashSet<usize> = x_ids.iter().copied().collect();
        let mut fwd = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.input_ids.iter().any(|id| from_x.contains(id)) {
                fwd[i] = true;
                for &out in &node.output_ids {
                    from_x.insert(out);
                }
            }
        }
        // Backward reachability to ys.
        let mut to_y: HashSet<usize> = y_ids.iter().copied().collect();
        let mut bwd = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate().rev() {
            if node.output_ids.iter().any(|id| to_y.contains(id)) {
                bwd[i] = true;
                for &inp in &node.input_ids {
                    to_y.insert(inp);
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| fwd[i] && bwd[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_node(kernel: &'static str, inputs: Vec<usize>, outputs: Vec<usize>) -> TapeNode {
        TapeNode {
            kernel,
            input_ids: inputs,
            output_ids: outputs,
            inputs: Vec::new(),
            outputs: Vec::new(),
            grad_fn: Arc::new(|_, _, _| Ok(Vec::new())),
        }
    }

    #[test]
    fn filter_keeps_only_path_nodes() {
        let mut tape = Tape::new();
        tape.record(dummy_node("a", vec![1], vec![2])); // on path
        tape.record(dummy_node("b", vec![9], vec![10])); // unrelated
        tape.record(dummy_node("c", vec![2], vec![3])); // on path
        tape.record(dummy_node("d", vec![3], vec![4])); // past y? output 4 != y
        let kept = tape.filter_nodes(&[1], &[3]);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn filter_handles_fan_in() {
        let mut tape = Tape::new();
        tape.record(dummy_node("m1", vec![1, 2], vec![3]));
        tape.record(dummy_node("m2", vec![3, 4], vec![5]));
        // x = 4 only: node m1 is not reachable from x, m2 is.
        let kept = tape.filter_nodes(&[4], &[5]);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn filter_empty_when_no_path() {
        let mut tape = Tape::new();
        tape.record(dummy_node("a", vec![1], vec![2]));
        assert!(tape.filter_nodes(&[5], &[2]).is_empty());
        assert!(tape.filter_nodes(&[1], &[7]).is_empty());
    }
}
