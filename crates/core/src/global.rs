//! The process-wide default engine — the analogue of the global `tf`
//! namespace in TensorFlow.js.

use crate::cpu::CpuBackend;
use crate::engine::Engine;
use std::sync::Arc;
use std::sync::OnceLock;

static GLOBAL: OnceLock<Engine> = OnceLock::new();

/// The global engine. Lazily created with the bundled [`CpuBackend`]
/// registered at priority 1, the way TensorFlow.js always has its plain CPU
/// fallback available; accelerated backends register themselves on top with
/// higher priorities.
pub fn engine() -> Engine {
    GLOBAL
        .get_or_init(|| {
            let e = Engine::new();
            e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
            e
        })
        .clone()
}

/// Execute `f` inside a `tidy` scope on the global engine (`tf.tidy`).
pub fn tidy<R: crate::engine::TidyOutput>(f: impl FnOnce() -> R) -> R {
    engine().tidy(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_engine_is_singleton_with_cpu() {
        let a = engine();
        let b = engine();
        assert_eq!(a, b);
        assert!(a.backend_names().contains(&"cpu".to_string()));
    }
}
