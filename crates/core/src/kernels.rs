//! Reference implementations of every kernel, as straightforward scalar
//! loops over `f32` slices.
//!
//! These functions define the numeric ground truth all backends are tested
//! against. The bundled [`crate::cpu`] fallback backend calls them directly;
//! the optimized native backend replaces the hot ones and reuses the rest;
//! the webgl backend re-expresses the element-wise ones as data-parallel
//! shader programs whose per-texel math routes through the same
//! [`UnaryOp::apply`]/[`BinaryOp::apply`] scalar semantics.
//!
//! Backends must also preserve these loops' *accumulation order* (e.g. the
//! inner-dimension order of [`matmul`], the row-major reduction order of
//! [`reduce`]): with every backend bit-identical on `f32` devices, the
//! engine's graceful degradation — re-dispatching a kernel on the next
//! backend after a device fault — is numerically transparent, and the fault
//! suite can assert exact equality between faulted and fault-free runs.

use crate::backend::{ArgReduceOp, BinaryOp, PoolOp, ReduceOp, UnaryOp};
use crate::conv_util::Conv2dInfo;
use crate::quant::QuantParams;
use crate::shape::{broadcast_source_index, Shape};

/// Call `f(flat_index, coords)` for every coordinate of `dims` in row-major
/// order, without per-iteration allocation.
pub fn for_each_coord(dims: &[usize], mut f: impl FnMut(usize, &[usize])) {
    let size: usize = dims.iter().product();
    if size == 0 {
        return;
    }
    let mut coords = vec![0usize; dims.len()];
    for idx in 0..size {
        f(idx, &coords);
        for d in (0..dims.len()).rev() {
            coords[d] += 1;
            if coords[d] < dims[d] {
                break;
            }
            coords[d] = 0;
        }
    }
}

/// Element-wise unary kernel.
pub fn unary(op: UnaryOp, a: &[f32]) -> Vec<f32> {
    a.iter().map(|&x| op.apply(x)).collect()
}

/// Element-wise binary kernel with broadcasting.
pub fn binary(op: BinaryOp, a: &[f32], a_shape: &Shape, b: &[f32], b_shape: &Shape, out_shape: &Shape) -> Vec<f32> {
    if a_shape == b_shape {
        return a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect();
    }
    // Scalar fast paths.
    if a.len() == 1 {
        let x = a[0];
        return b.iter().map(|&y| op.apply(x, y)).collect();
    }
    if b.len() == 1 {
        let y = b[0];
        return a.iter().map(|&x| op.apply(x, y)).collect();
    }
    let mut out = vec![0.0; out_shape.size()];
    for_each_coord(out_shape.dims(), |idx, coords| {
        let ai = broadcast_source_index(coords, a_shape);
        let bi = broadcast_source_index(coords, b_shape);
        out[idx] = op.apply(a[ai], b[bi]);
    });
    out
}

/// Reduction over `axes` (sorted, unique); output drops the reduced dims.
pub fn reduce(op: ReduceOp, a: &[f32], shape: &Shape, axes: &[usize]) -> Vec<f32> {
    let out_dims: Vec<usize> = shape
        .dims()
        .iter()
        .enumerate()
        .filter(|(i, _)| !axes.contains(i))
        .map(|(_, &d)| d)
        .collect();
    let out_size: usize = out_dims.iter().product();
    let reduce_count: usize = axes.iter().map(|&i| shape.dim(i)).product();
    let mut out = vec![op.init(); out_size.max(1)];
    // Map each input coordinate to its output flat index.
    let out_strides = Shape::new(out_dims.clone()).strides();
    let mut contrib = vec![0usize; shape.rank()];
    let mut oi = 0;
    for (i, _) in shape.dims().iter().enumerate() {
        if !axes.contains(&i) {
            contrib[i] = out_strides[oi];
            oi += 1;
        }
    }
    for_each_coord(shape.dims(), |idx, coords| {
        let out_idx: usize = coords.iter().zip(&contrib).map(|(&c, &s)| c * s).sum();
        out[out_idx] = op.combine(out[out_idx], a[idx]);
    });
    for v in &mut out {
        *v = op.finalize(*v, reduce_count.max(1));
    }
    out
}

/// Arg-reduction along a single axis; returns indices as `i32`.
pub fn arg_reduce(op: ArgReduceOp, a: &[f32], shape: &Shape, axis: usize) -> Vec<i32> {
    let dims = shape.dims();
    let outer: usize = dims[..axis].iter().product();
    let n = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let mut out = vec![0i32; outer * inner];
    for o in 0..outer {
        for i in 0..inner {
            let mut best_idx = 0usize;
            let mut best = a[o * n * inner + i];
            for j in 1..n {
                let v = a[(o * n + j) * inner + i];
                let better = match op {
                    ArgReduceOp::ArgMax => v > best,
                    ArgReduceOp::ArgMin => v < best,
                };
                if better {
                    best = v;
                    best_idx = j;
                }
            }
            out[o * inner + i] = best_idx as i32;
        }
    }
    out
}

/// Batched matrix multiply `[batch, m, k] x [batch, k, n]`, naive loops.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let a_off = bi * m * k;
        let b_off = bi * k * n;
        let o_off = bi * m * n;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let av = if transpose_a { a[a_off + p * m + i] } else { a[a_off + i * k + p] };
                    let bv = if transpose_b { b[b_off + j * k + p] } else { b[b_off + p * n + j] };
                    acc += av * bv;
                }
                out[o_off + i * n + j] = acc;
            }
        }
    }
    out
}

/// Whether `params` can drive a factored (dequant-free) kernel whose
/// accumulation keeps one `(scale, min)` pair per output element: per-tensor
/// always can; per-channel only when the channel axis is `axis` with exactly
/// `channels` entries, so scale/min are constant over the inner loop.
pub fn quant_axis_ok(params: &QuantParams, axis: usize, channels: usize) -> bool {
    match params {
        QuantParams::PerTensor { .. } => true,
        QuantParams::PerChannel { axis: a, scales, .. } => *a == axis && scales.len() == channels,
    }
}

/// Quantized-weight fused matmul: f32 `a` times raw u8 codes `b_q` carrying
/// affine `params` (`value = code*scale + min`), with the shared fused
/// epilogue. Dequant-free — no f32 weight buffer is materialized; instead
/// the inner loop keeps two accumulators and factors the affine map out of
/// the dot product:
///
/// ```text
/// Σₚ aₚ·(qₚ·s + m)  =  s·Σₚ aₚqₚ  +  m·Σₚ aₚ
/// ```
///
/// Per-channel `params` index the output-column axis `j` (callers guarantee
/// `channel_count == n` via [`quant_axis_ok`]). Epilogue order matches the
/// fused f32 kernels: full accumulation, then `+ bias[j]`, then activation,
/// through [`BinaryOp::apply`] / [`UnaryOp::apply`].
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul_quant(
    a: &[f32],
    b_q: &[u8],
    params: &QuantParams,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let a_off = bi * m * k;
        // A batch-1 `b` (the usual weight case) broadcasts across the batch
        // instead of being tiled — tiling would copy the codes.
        let b_off = if b_q.len() == k * n { 0 } else { bi * k * n };
        let o_off = bi * m * n;
        for i in 0..m {
            // Σₚ aᵢₚ is shared by every output column of row i.
            let mut acc_a = 0.0f32;
            for p in 0..k {
                acc_a += if transpose_a { a[a_off + p * m + i] } else { a[a_off + i * k + p] };
            }
            for j in 0..n {
                let (s, mn) = params.scale_min(j);
                let mut acc_q = 0.0f32;
                for p in 0..k {
                    let av = if transpose_a { a[a_off + p * m + i] } else { a[a_off + i * k + p] };
                    let qv =
                        if transpose_b { b_q[b_off + j * k + p] } else { b_q[b_off + p * n + j] };
                    acc_q += av * qv as f32;
                }
                let mut v = s * acc_q + mn * acc_a;
                if let Some(bias) = bias {
                    v = BinaryOp::Add.apply(v, bias[j]);
                }
                if let Some(act) = activation {
                    v = act.apply(v);
                }
                out[o_off + i * n + j] = v;
            }
        }
    }
    out
}

/// Fully-integer quantized matmul `[b,m,k] x [b,k,n]`: *both* operands are
/// u8 codes, and all three data-dependent sums accumulate in `i32`:
///
/// ```text
/// Σ (qa·sa+ma)(qb·sb+mb) = sa·sb·Σqa·qb + sa·mb·Σqa + ma·sb·Σqb + k·ma·mb
/// ```
///
/// The affine expansion is applied once per output in f32. Overflow bound:
/// each product is at most `255·255`, so `k · 255·255 ≤ i32::MAX` holds for
/// `k ≤ 33025` — far above any inner dimension in the bundled models
/// (debug-asserted).
#[allow(clippy::too_many_arguments)]
pub fn matmul_q8_i32(
    a_q: &[u8],
    (a_scale, a_min): (f32, f32),
    b_q: &[u8],
    (b_scale, b_min): (f32, f32),
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    debug_assert!(k <= 33_025, "i32 accumulator would overflow: k={k} > 33025");
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let a_off = bi * m * k;
        let b_off = bi * k * n;
        let o_off = bi * m * n;
        for i in 0..m {
            let mut sum_a = 0i32;
            for p in 0..k {
                sum_a += a_q[a_off + i * k + p] as i32;
            }
            for j in 0..n {
                let mut dot = 0i32;
                let mut sum_b = 0i32;
                for p in 0..k {
                    let qa = a_q[a_off + i * k + p] as i32;
                    let qb = b_q[b_off + p * n + j] as i32;
                    dot += qa * qb;
                    sum_b += qb;
                }
                out[o_off + i * n + j] = a_scale * b_scale * dot as f32
                    + a_scale * b_min * sum_a as f32
                    + a_min * b_scale * sum_b as f32
                    + k as f32 * a_min * b_min;
            }
        }
    }
    out
}

/// Quantized-filter fused conv2d (see [`fused_matmul_quant`]): NHWC `x`
/// against raw u8 HWIO codes. Per output position the valid-tap input sum
/// `Σ x` is shared across output channels; per-channel `params` index the
/// HWIO output-channel axis 3 (callers guarantee via [`quant_axis_ok`]).
pub fn fused_conv2d_quant(
    x: &[f32],
    w_q: &[u8],
    params: &QuantParams,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Vec<f32> {
    let c = info;
    let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
    let x_strides =
        [c.in_height * c.in_width * c.in_channels, c.in_width * c.in_channels, c.in_channels];
    let w_strides = [
        c.filter_width * c.in_channels * c.out_channels,
        c.in_channels * c.out_channels,
        c.out_channels,
    ];
    let mut acc_q = vec![0.0f32; c.out_channels];
    let mut oi = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                acc_q.iter_mut().for_each(|v| *v = 0.0);
                let mut acc_x = 0.0f32;
                for fh in 0..c.filter_height {
                    let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                    if ih < 0 || ih >= c.in_height as isize {
                        continue;
                    }
                    for fw in 0..c.filter_width {
                        let iw =
                            (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                        if iw < 0 || iw >= c.in_width as isize {
                            continue;
                        }
                        let x_base = b * x_strides[0]
                            + ih as usize * x_strides[1]
                            + iw as usize * x_strides[2];
                        let w_base = fh * w_strides[0] + fw * w_strides[1];
                        for ic in 0..c.in_channels {
                            let xv = x[x_base + ic];
                            acc_x += xv;
                            let wq_base = w_base + ic * w_strides[2];
                            for (oc, acc) in acc_q.iter_mut().enumerate() {
                                *acc += xv * w_q[wq_base + oc] as f32;
                            }
                        }
                    }
                }
                for (oc, &aq) in acc_q.iter().enumerate() {
                    let (s, mn) = params.scale_min(oc);
                    let mut v = s * aq + mn * acc_x;
                    if let Some(bias) = bias {
                        v = BinaryOp::Add.apply(v, bias[oc]);
                    }
                    if let Some(act) = activation {
                        v = act.apply(v);
                    }
                    out[oi] = v;
                    oi += 1;
                }
            }
        }
    }
    out
}

/// Quantized-filter fused depthwise conv2d. Each output channel
/// `oc = ic·mul + m` reads one input channel, so a per-channel scale along
/// filter axis 2 (`ic`) or 3 (`m`) is constant over the accumulation and the
/// factored form still applies; the valid-tap input sum depends on `ic`.
pub fn fused_depthwise_conv2d_quant(
    x: &[f32],
    w_q: &[u8],
    params: &QuantParams,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    info: &Conv2dInfo,
) -> Vec<f32> {
    let c = info;
    let mul = c.channel_mul;
    let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
    let mut oi = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ic in 0..c.in_channels {
                    for m in 0..mul {
                        let ch = match params {
                            QuantParams::PerTensor { .. } => 0,
                            QuantParams::PerChannel { axis, .. } => {
                                if *axis == 2 {
                                    ic
                                } else {
                                    m
                                }
                            }
                        };
                        let (s, mn) = params.scale_min(ch);
                        let mut acc_q = 0.0f32;
                        let mut acc_x = 0.0f32;
                        for fh in 0..c.filter_height {
                            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize
                                - c.pad_top as isize;
                            if ih < 0 || ih >= c.in_height as isize {
                                continue;
                            }
                            for fw in 0..c.filter_width {
                                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize
                                    - c.pad_left as isize;
                                if iw < 0 || iw >= c.in_width as isize {
                                    continue;
                                }
                                let xv = x[((b * c.in_height + ih as usize) * c.in_width
                                    + iw as usize)
                                    * c.in_channels
                                    + ic];
                                let wq =
                                    w_q[((fh * c.filter_width + fw) * c.in_channels + ic) * mul + m];
                                acc_q += xv * wq as f32;
                                acc_x += xv;
                            }
                        }
                        let mut v = s * acc_q + mn * acc_x;
                        if let Some(bias) = bias {
                            v = BinaryOp::Add.apply(v, bias[ic * mul + m]);
                        }
                        if let Some(act) = activation {
                            v = act.apply(v);
                        }
                        out[oi] = v;
                        oi += 1;
                    }
                }
            }
        }
    }
    out
}

/// 2-D convolution, NHWC input, HWIO filter.
pub fn conv2d(x: &[f32], w: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
    let x_strides = [c.in_height * c.in_width * c.in_channels, c.in_width * c.in_channels, c.in_channels];
    let w_strides = [c.filter_width * c.in_channels * c.out_channels, c.in_channels * c.out_channels, c.out_channels];
    let mut oi = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for oc in 0..c.out_channels {
                    let mut acc = 0.0f32;
                    for fh in 0..c.filter_height {
                        let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            let x_base = b * x_strides[0] + ih as usize * x_strides[1] + iw as usize * x_strides[2];
                            let w_base = fh * w_strides[0] + fw * w_strides[1];
                            for ic in 0..c.in_channels {
                                acc += x[x_base + ic] * w[w_base + ic * w_strides[2] + oc];
                            }
                        }
                    }
                    out[oi] = acc;
                    oi += 1;
                }
            }
        }
    }
    out
}

/// Gradient of [`conv2d`] with respect to its input (scatter form).
pub fn conv2d_backprop_input(dy: &[f32], w: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mut dx = vec![0.0f32; c.batch * c.in_height * c.in_width * c.in_channels];
    let mut di = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for oc in 0..c.out_channels {
                    let g = dy[di];
                    di += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for fh in 0..c.filter_height {
                        let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            for ic in 0..c.in_channels {
                                let x_idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                    * c.in_channels
                                    + ic;
                                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic)
                                    * c.out_channels
                                    + oc;
                                dx[x_idx] += g * w[w_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Gradient of [`conv2d`] with respect to its filter.
pub fn conv2d_backprop_filter(x: &[f32], dy: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mut dw = vec![0.0f32; c.filter_height * c.filter_width * c.in_channels * c.out_channels];
    let mut di = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for oc in 0..c.out_channels {
                    let g = dy[di];
                    di += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for fh in 0..c.filter_height {
                        let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            for ic in 0..c.in_channels {
                                let x_idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                    * c.in_channels
                                    + ic;
                                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic)
                                    * c.out_channels
                                    + oc;
                                dw[w_idx] += g * x[x_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    dw
}

/// Depthwise 2-D convolution; filter is `[fh, fw, in_c, channel_mul]` and
/// output channel `ic * mul + m` only reads input channel `ic`.
pub fn depthwise_conv2d(x: &[f32], w: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mul = c.channel_mul;
    let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
    let mut oi = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ic in 0..c.in_channels {
                    for m in 0..mul {
                        let mut acc = 0.0f32;
                        for fh in 0..c.filter_height {
                            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                            if ih < 0 || ih >= c.in_height as isize {
                                continue;
                            }
                            for fw in 0..c.filter_width {
                                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                                if iw < 0 || iw >= c.in_width as isize {
                                    continue;
                                }
                                let x_idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                    * c.in_channels
                                    + ic;
                                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic) * mul + m;
                                acc += x[x_idx] * w[w_idx];
                            }
                        }
                        out[oi] = acc;
                        oi += 1;
                    }
                }
            }
        }
    }
    out
}

/// Gradient of [`depthwise_conv2d`] w.r.t. its input.
pub fn depthwise_conv2d_backprop_input(dy: &[f32], w: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mul = c.channel_mul;
    let mut dx = vec![0.0f32; c.batch * c.in_height * c.in_width * c.in_channels];
    let mut di = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ic in 0..c.in_channels {
                    for m in 0..mul {
                        let g = dy[di];
                        di += 1;
                        if g == 0.0 {
                            continue;
                        }
                        for fh in 0..c.filter_height {
                            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                            if ih < 0 || ih >= c.in_height as isize {
                                continue;
                            }
                            for fw in 0..c.filter_width {
                                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                                if iw < 0 || iw >= c.in_width as isize {
                                    continue;
                                }
                                let x_idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                    * c.in_channels
                                    + ic;
                                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic) * mul + m;
                                dx[x_idx] += g * w[w_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Gradient of [`depthwise_conv2d`] w.r.t. its filter.
pub fn depthwise_conv2d_backprop_filter(x: &[f32], dy: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mul = c.channel_mul;
    let mut dw = vec![0.0f32; c.filter_height * c.filter_width * c.in_channels * mul];
    let mut di = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ic in 0..c.in_channels {
                    for m in 0..mul {
                        let g = dy[di];
                        di += 1;
                        if g == 0.0 {
                            continue;
                        }
                        for fh in 0..c.filter_height {
                            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                            if ih < 0 || ih >= c.in_height as isize {
                                continue;
                            }
                            for fw in 0..c.filter_width {
                                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                                if iw < 0 || iw >= c.in_width as isize {
                                    continue;
                                }
                                let x_idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                    * c.in_channels
                                    + ic;
                                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic) * mul + m;
                                dw[w_idx] += g * x[x_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    dw
}

/// 2-D max/avg pooling. Average pooling divides by the number of *valid*
/// (in-bounds) window positions, matching TensorFlow's `SAME` semantics.
pub fn pool2d(op: PoolOp, x: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
    let mut oi = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ch in 0..c.in_channels {
                    let mut acc = match op {
                        PoolOp::Max => f32::NEG_INFINITY,
                        PoolOp::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for fh in 0..c.filter_height {
                        let ih = (oh * c.stride_h + fh) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw) as isize - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            let v = x[((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                * c.in_channels
                                + ch];
                            match op {
                                PoolOp::Max => acc = acc.max(v),
                                PoolOp::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    out[oi] = match op {
                        PoolOp::Max => acc,
                        PoolOp::Avg => acc / count.max(1) as f32,
                    };
                    oi += 1;
                }
            }
        }
    }
    out
}

/// Gradient of [`pool2d`]: max-pool routes gradient to the first argmax in
/// each window, avg-pool distributes it uniformly over valid positions.
pub fn pool2d_backprop(op: PoolOp, dy: &[f32], x: &[f32], info: &Conv2dInfo) -> Vec<f32> {
    let c = info;
    let mut dx = vec![0.0f32; c.batch * c.in_height * c.in_width * c.in_channels];
    let mut di = 0;
    for b in 0..c.batch {
        for oh in 0..c.out_height {
            for ow in 0..c.out_width {
                for ch in 0..c.in_channels {
                    let g = dy[di];
                    di += 1;
                    // Collect valid window positions.
                    let mut best_idx = usize::MAX;
                    let mut best = f32::NEG_INFINITY;
                    let mut valid = Vec::new();
                    for fh in 0..c.filter_height {
                        let ih = (oh * c.stride_h + fh) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw) as isize - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            let idx = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                                * c.in_channels
                                + ch;
                            valid.push(idx);
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    match op {
                        PoolOp::Max => {
                            if best_idx != usize::MAX {
                                dx[best_idx] += g;
                            }
                        }
                        PoolOp::Avg => {
                            let share = g / valid.len().max(1) as f32;
                            for idx in valid {
                                dx[idx] += share;
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Contiguous slice.
pub fn slice(x: &[f32], shape: &Shape, begin: &[usize], size: &[usize]) -> Vec<f32> {
    let mut out = vec![0.0f32; size.iter().product()];
    let strides = shape.strides();
    for_each_coord(size, |idx, coords| {
        let src: usize = coords.iter().zip(begin).zip(&strides).map(|((&c, &b), &s)| (c + b) * s).sum();
        out[idx] = x[src];
    });
    out
}

/// Concatenate along `axis`.
pub fn concat(xs: &[(&[f32], &Shape)], axis: usize) -> Vec<f32> {
    let first = xs[0].1;
    let outer: usize = first.dims()[..axis].iter().product();
    let inner: usize = first.dims()[axis + 1..].iter().product();
    let total_axis: usize = xs.iter().map(|(_, s)| s.dim(axis)).sum();
    let mut out = vec![0.0f32; outer * total_axis * inner];
    let mut axis_off = 0;
    for (data, s) in xs {
        let n = s.dim(axis);
        for o in 0..outer {
            let src = o * n * inner;
            let dst = (o * total_axis + axis_off) * inner;
            out[dst..dst + n * inner].copy_from_slice(&data[src..src + n * inner]);
        }
        axis_off += n;
    }
    out
}

/// Permute dimensions.
pub fn transpose(x: &[f32], shape: &Shape, perm: &[usize]) -> Vec<f32> {
    let in_strides = shape.strides();
    let out_dims: Vec<usize> = perm.iter().map(|&p| shape.dim(p)).collect();
    let src_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let mut out = vec![0.0f32; shape.size()];
    for_each_coord(&out_dims, |idx, coords| {
        let src: usize = coords.iter().zip(&src_strides).map(|(&c, &s)| c * s).sum();
        out[idx] = x[src];
    });
    out
}

/// Constant-pad.
pub fn pad(x: &[f32], shape: &Shape, paddings: &[(usize, usize)], value: f32) -> Vec<f32> {
    let out_dims: Vec<usize> = shape
        .dims()
        .iter()
        .zip(paddings)
        .map(|(&d, &(b, a))| d + b + a)
        .collect();
    let out_size: usize = out_dims.iter().product();
    let mut out = vec![value; out_size];
    let in_strides = shape.strides();
    let out_shape = Shape::new(out_dims);
    let out_strides = out_shape.strides();
    for_each_coord(shape.dims(), |idx, coords| {
        let dst: usize = coords
            .iter()
            .zip(paddings)
            .zip(&out_strides)
            .map(|((&c, &(b, _)), &s)| (c + b) * s)
            .sum();
        out[dst] = x[idx];
    });
    let _ = in_strides;
    out
}

/// Gather slices along `axis` by integer indices.
pub fn gather(x: &[f32], shape: &Shape, indices: &[i32], axis: usize) -> Vec<f32> {
    let outer: usize = shape.dims()[..axis].iter().product();
    let n = shape.dim(axis);
    let inner: usize = shape.dims()[axis + 1..].iter().product();
    let mut out = vec![0.0f32; outer * indices.len() * inner];
    for o in 0..outer {
        for (k, &ix) in indices.iter().enumerate() {
            let ix = ix.rem_euclid(n as i32) as usize;
            let src = (o * n + ix) * inner;
            let dst = (o * indices.len() + k) * inner;
            out[dst..dst + inner].copy_from_slice(&x[src..src + inner]);
        }
    }
    out
}

/// Tile each dimension `reps[i]` times.
pub fn tile(x: &[f32], shape: &Shape, reps: &[usize]) -> Vec<f32> {
    let out_dims: Vec<usize> = shape.dims().iter().zip(reps).map(|(&d, &r)| d * r).collect();
    let in_strides = shape.strides();
    let out_size: usize = out_dims.iter().product();
    let mut out = vec![0.0f32; out_size];
    for_each_coord(&out_dims, |idx, coords| {
        let src: usize = coords
            .iter()
            .zip(shape.dims())
            .zip(&in_strides)
            .map(|((&c, &d), &s)| (c % d) * s)
            .sum();
        out[idx] = x[src];
    });
    out
}

/// Reverse along the given axes.
pub fn reverse(x: &[f32], shape: &Shape, axes: &[usize]) -> Vec<f32> {
    let strides = shape.strides();
    let mut out = vec![0.0f32; shape.size()];
    for_each_coord(shape.dims(), |idx, coords| {
        let src: usize = coords
            .iter()
            .enumerate()
            .zip(&strides)
            .map(|((d, &c), &s)| {
                let c = if axes.contains(&d) { shape.dim(d) - 1 - c } else { c };
                c * s
            })
            .sum();
        out[idx] = x[src];
    });
    out
}

/// Element-wise select with broadcasting: `cond ? a : b`.
pub fn select(
    cond: &[f32],
    cond_shape: &Shape,
    a: &[f32],
    a_shape: &Shape,
    b: &[f32],
    b_shape: &Shape,
    out_shape: &Shape,
) -> Vec<f32> {
    let mut out = vec![0.0f32; out_shape.size()];
    for_each_coord(out_shape.dims(), |idx, coords| {
        let ci = broadcast_source_index(coords, cond_shape);
        out[idx] = if cond[ci] != 0.0 {
            a[broadcast_source_index(coords, a_shape)]
        } else {
            b[broadcast_source_index(coords, b_shape)]
        };
    });
    out
}

/// One-hot encode integer indices into a trailing dim of `depth`.
pub fn one_hot(indices: &[i32], depth: usize, on: f32, off: f32) -> Vec<f32> {
    let mut out = vec![off; indices.len() * depth];
    for (i, &ix) in indices.iter().enumerate() {
        if ix >= 0 && (ix as usize) < depth {
            out[i * depth + ix as usize] = on;
        }
    }
    out
}

/// Bilinear resize of an NHWC tensor, with TensorFlow `align_corners`.
pub fn resize_bilinear(
    x: &[f32],
    shape: &Shape,
    new_h: usize,
    new_w: usize,
    align_corners: bool,
) -> Vec<f32> {
    let (batch, in_h, in_w, c) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
    let scale = |out_size: usize, in_size: usize| -> f32 {
        if align_corners && out_size > 1 {
            (in_size - 1) as f32 / (out_size - 1) as f32
        } else {
            in_size as f32 / out_size as f32
        }
    };
    let h_scale = scale(new_h, in_h);
    let w_scale = scale(new_w, in_w);
    let mut out = vec![0.0f32; batch * new_h * new_w * c];
    let mut oi = 0;
    for b in 0..batch {
        for oh in 0..new_h {
            let src_h = if align_corners { oh as f32 * h_scale } else { (oh as f32 + 0.5) * h_scale - 0.5 };
            let src_h = src_h.max(0.0);
            let h0 = (src_h.floor() as usize).min(in_h - 1);
            let h1 = (h0 + 1).min(in_h - 1);
            let hf = src_h - h0 as f32;
            for ow in 0..new_w {
                let src_w =
                    if align_corners { ow as f32 * w_scale } else { (ow as f32 + 0.5) * w_scale - 0.5 };
                let src_w = src_w.max(0.0);
                let w0 = (src_w.floor() as usize).min(in_w - 1);
                let w1 = (w0 + 1).min(in_w - 1);
                let wf = src_w - w0 as f32;
                for ch in 0..c {
                    let at = |h: usize, w: usize| x[((b * in_h + h) * in_w + w) * c + ch];
                    let top = at(h0, w0) + (at(h0, w1) - at(h0, w0)) * wf;
                    let bot = at(h1, w0) + (at(h1, w1) - at(h1, w0)) * wf;
                    out[oi] = top + (bot - top) * hf;
                    oi += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: &[usize]) -> Shape {
        Shape::new(d.to_vec())
    }

    #[test]
    fn binary_broadcast_row() {
        let out = binary(
            BinaryOp::Add,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &s(&[2, 3]),
            &[10.0, 20.0, 30.0],
            &s(&[3]),
            &s(&[2, 3]),
        );
        assert_eq!(out, vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn reduce_sum_axis0() {
        let out = reduce(ReduceOp::Sum, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &s(&[2, 3]), &[0]);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn reduce_mean_all() {
        let out = reduce(ReduceOp::Mean, &[1.0, 2.0, 3.0, 4.0], &s(&[2, 2]), &[0, 1]);
        assert_eq!(out, vec![2.5]);
    }

    #[test]
    fn arg_reduce_middle_axis() {
        // shape [2,3]: argmax along axis 1.
        let out = arg_reduce(ArgReduceOp::ArgMax, &[1.0, 9.0, 3.0, 7.0, 2.0, 8.0], &s(&[2, 3]), 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 1, 2, 2, 2, false, false), a);
    }

    #[test]
    fn matmul_transpose_flags() {
        // a = [[1,2],[3,4]]; a^T x a = [[10,14],[14,20]].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(matmul(&a, &a, 1, 2, 2, 2, true, false), vec![10.0, 14.0, 14.0, 20.0]);
        // a x a^T = [[5,11],[11,25]].
        assert_eq!(matmul(&a, &a, 1, 2, 2, 2, false, true), vec![5.0, 11.0, 11.0, 25.0]);
    }

    /// Host-side dequantize reference used by the quant-kernel tests.
    fn deq(q: &[u8], scale: f32, min: f32) -> Vec<f32> {
        q.iter().map(|&c| c as f32 * scale + min).collect()
    }

    #[test]
    fn fused_matmul_quant_matches_dequantized_reference() {
        // a: [1,2,3], b codes: [1,3,2] with scale 0.5 min -1.
        let a = vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5];
        let b_q: Vec<u8> = vec![0, 100, 255, 17, 64, 200];
        let (scale, min) = (0.5f32, -1.0f32);
        let params = QuantParams::per_tensor(scale, min);
        let bias = vec![0.25, -0.5];
        let expect_pre = matmul(&a, &deq(&b_q, scale, min), 1, 2, 3, 2, false, false);
        let got = fused_matmul_quant(
            &a,
            &b_q,
            &params,
            Some(&bias),
            Some(UnaryOp::Relu),
            1,
            2,
            3,
            2,
            false,
            false,
        );
        for (i, g) in got.iter().enumerate() {
            let want = UnaryOp::Relu.apply(expect_pre[i] + bias[i % 2]);
            assert!((g - want).abs() < 1e-4, "out[{i}]: {g} vs {want}");
        }
    }

    #[test]
    fn fused_matmul_quant_per_channel_columns() {
        // Two output columns with very different scales; per-tensor would
        // clamp the small-scale column badly.
        let a = vec![1.0, 1.0];
        let b_q: Vec<u8> = vec![200, 10, 100, 20];
        let params = QuantParams::per_channel(2, vec![0.01, 10.0], vec![0.0, -50.0]);
        let got = fused_matmul_quant(&a, &b_q, &params, None, None, 1, 1, 2, 2, false, false);
        let want0 = (200.0 + 100.0) * 0.01;
        let want1 = (10.0f32 * 10.0 - 50.0) + (20.0 * 10.0 - 50.0);
        assert!((got[0] - want0).abs() < 1e-4);
        assert!((got[1] - want1).abs() < 1e-3);
    }

    #[test]
    fn matmul_q8_i32_matches_dequantized_reference() {
        let a_q: Vec<u8> = (0..6).map(|i| (i * 40) as u8).collect();
        let b_q: Vec<u8> = (0..6).map(|i| 255 - (i * 30) as u8).collect();
        let (sa, ma) = (0.03f32, -2.0f32);
        let (sb, mb) = (0.7f32, 1.0f32);
        let got = matmul_q8_i32(&a_q, (sa, ma), &b_q, (sb, mb), 1, 2, 3, 2);
        let want = matmul(&deq(&a_q, sa, ma), &deq(&b_q, sb, mb), 1, 2, 3, 2, false, false);
        for (g, w) in got.iter().zip(&want) {
            // The i32 path regroups the sums; agreement is to f32 rounding.
            assert!((g - w).abs() < 1e-2 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn fused_conv2d_quant_matches_dequantized_reference() {
        use crate::conv_util::{conv2d_info, Padding};
        let info =
            conv2d_info("t", &s(&[1, 3, 3, 2]), &s(&[2, 2, 2, 3]), (1, 1), Padding::Same, (1, 1))
                .unwrap();
        let x: Vec<f32> = (0..18).map(|i| (i as f32 * 0.37).sin()).collect();
        let w_q: Vec<u8> = (0..24).map(|i| ((i * 11) % 256) as u8).collect();
        let (scale, min) = (0.02f32, -2.5f32);
        let params = QuantParams::per_tensor(scale, min);
        let bias = vec![0.1, -0.2, 0.3];
        let pre = conv2d(&x, &deq(&w_q, scale, min), &info);
        let got = fused_conv2d_quant(&x, &w_q, &params, Some(&bias), Some(UnaryOp::Relu6), &info);
        for (i, g) in got.iter().enumerate() {
            let want = UnaryOp::Relu6.apply(pre[i] + bias[i % 3]);
            assert!((g - want).abs() < 1e-3, "out[{i}]: {g} vs {want}");
        }
    }

    #[test]
    fn fused_conv2d_quant_per_channel_axis3() {
        use crate::conv_util::{conv2d_info, Padding};
        let info =
            conv2d_info("t", &s(&[1, 2, 2, 1]), &s(&[1, 1, 1, 2]), (1, 1), Padding::Valid, (1, 1))
                .unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let w_q: Vec<u8> = vec![10, 200];
        let params = QuantParams::per_channel(3, vec![0.1, 0.001], vec![0.0, 0.5]);
        let got = fused_conv2d_quant(&x, &w_q, &params, None, None, &info);
        // Channel 0 weight = 1.0, channel 1 weight = 0.7.
        for (i, &xv) in x.iter().enumerate() {
            assert!((got[2 * i] - xv * 1.0).abs() < 1e-5);
            assert!((got[2 * i + 1] - xv * 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn fused_depthwise_conv2d_quant_matches_dequantized_reference() {
        use crate::conv_util::{depthwise_conv2d_info, Padding};
        let info = depthwise_conv2d_info(
            "t",
            &s(&[1, 3, 3, 2]),
            &s(&[2, 2, 2, 2]),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        let x: Vec<f32> = (0..18).map(|i| (i as f32 * 0.21).cos()).collect();
        let w_q: Vec<u8> = (0..16).map(|i| ((i * 37) % 256) as u8).collect();
        let (scale, min) = (0.015f32, -1.9f32);
        let pre = depthwise_conv2d(&x, &deq(&w_q, scale, min), &info);
        // Per-channel along the input-channel axis (2): both channels get
        // the same scale here so the f32 reference still applies.
        let params = QuantParams::per_channel(2, vec![scale, scale], vec![min, min]);
        let got = fused_depthwise_conv2d_quant(&x, &w_q, &params, None, Some(UnaryOp::Tanh), &info);
        for (i, g) in got.iter().enumerate() {
            let want = UnaryOp::Tanh.apply(pre[i]);
            assert!((g - want).abs() < 1e-3, "out[{i}]: {g} vs {want}");
        }
    }

    #[test]
    fn quant_axis_ok_gates_factored_kernels() {
        let pt = QuantParams::per_tensor(1.0, 0.0);
        assert!(quant_axis_ok(&pt, 3, 7));
        let pc = QuantParams::per_channel(3, vec![1.0; 4], vec![0.0; 4]);
        assert!(quant_axis_ok(&pc, 3, 4));
        assert!(!quant_axis_ok(&pc, 2, 4), "wrong axis must fall back");
        assert!(!quant_axis_ok(&pc, 3, 5), "wrong channel count must fall back");
    }

    #[test]
    fn conv2d_identity_filter() {
        use crate::conv_util::{conv2d_info, Padding};
        let info = conv2d_info("t", &s(&[1, 3, 3, 1]), &s(&[1, 1, 1, 1]), (1, 1), Padding::Valid, (1, 1))
            .unwrap();
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        assert_eq!(conv2d(&x, &[1.0], &info), x);
    }

    #[test]
    fn conv2d_sum_filter_same_padding() {
        use crate::conv_util::{conv2d_info, Padding};
        let info = conv2d_info("t", &s(&[1, 3, 3, 1]), &s(&[3, 3, 1, 1]), (1, 1), Padding::Same, (1, 1))
            .unwrap();
        let x = vec![1.0f32; 9];
        let w = vec![1.0f32; 9];
        let out = conv2d(&x, &w, &info);
        // Center sees 9 ones; corners see 4; edges see 6.
        assert_eq!(out[4], 9.0);
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 6.0);
    }

    #[test]
    fn conv_grads_match_finite_difference() {
        use crate::conv_util::{conv2d_info, Padding};
        let info = conv2d_info("t", &s(&[1, 4, 4, 2]), &s(&[3, 3, 2, 3]), (1, 1), Padding::Same, (1, 1))
            .unwrap();
        let nx = 32;
        let nw = 54;
        let x: Vec<f32> = (0..nx).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..nw).map(|i| (i as f32 * 0.13).cos()).collect();
        let dy: Vec<f32> = (0..48).map(|i| (i as f32 * 0.7).sin()).collect();
        let loss = |x: &[f32], w: &[f32]| -> f32 {
            conv2d(x, w, &info).iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let dx = conv2d_backprop_input(&dy, &w, &info);
        let dw = conv2d_backprop_filter(&x, &dy, &info);
        let eps = 1e-2;
        for i in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd={fd} analytic={}", dx[i]);
        }
        for i in [0usize, 10, 33, 53] {
            let mut wp = w.to_vec();
            wp[i] += eps;
            let mut wm = w.to_vec();
            wm[i] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((fd - dw[i]).abs() < 1e-2, "dw[{i}]: fd={fd} analytic={}", dw[i]);
        }
    }

    #[test]
    fn depthwise_matches_manual() {
        use crate::conv_util::{depthwise_conv2d_info, Padding};
        let info = depthwise_conv2d_info(
            "t",
            &s(&[1, 2, 2, 2]),
            &s(&[1, 1, 2, 1]),
            (1, 1),
            Padding::Valid,
            (1, 1),
        )
        .unwrap();
        // 1x1 depthwise with weights [2, 3] scales each channel.
        let x = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        let w = vec![2.0, 3.0];
        let out = depthwise_conv2d(&x, &w, &info);
        assert_eq!(out, vec![2.0, 30.0, 4.0, 60.0, 6.0, 90.0, 8.0, 120.0]);
    }

    #[test]
    fn maxpool_and_backprop() {
        use crate::conv_util::{pool2d_info, Padding};
        let info = pool2d_info("t", &s(&[1, 2, 2, 1]), (2, 2), (2, 2), Padding::Valid).unwrap();
        let x = vec![1.0, 3.0, 2.0, 4.0];
        assert_eq!(pool2d(PoolOp::Max, &x, &info), vec![4.0]);
        let dx = pool2d_backprop(PoolOp::Max, &[1.0], &x, &info);
        assert_eq!(dx, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avgpool_same_counts_valid_only() {
        use crate::conv_util::{pool2d_info, Padding};
        let info = pool2d_info("t", &s(&[1, 2, 2, 1]), (2, 2), (1, 1), Padding::Same).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let out = pool2d(PoolOp::Avg, &x, &info);
        // Window at (1,1) only covers element 4.
        assert_eq!(out[3], 4.0);
        assert_eq!(out[0], 2.5);
    }

    #[test]
    fn slice_middle() {
        let x: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let out = slice(&x, &s(&[3, 4]), &[1, 1], &[2, 2]);
        assert_eq!(out, vec![5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0];
        let sa = s(&[2, 2]);
        let sb = s(&[2, 1]);
        let out = concat(&[(&a[..], &sa), (&b[..], &sb)], 1);
        assert_eq!(out, vec![1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose_2d() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(transpose(&x, &s(&[2, 3]), &[1, 0]), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_3d_rotation() {
        let x: Vec<f32> = (0..8).map(|v| v as f32).collect();
        let out = transpose(&x, &s(&[2, 2, 2]), &[2, 0, 1]);
        assert_eq!(out, vec![0.0, 2.0, 4.0, 6.0, 1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn pad_2d() {
        let out = pad(&[1.0, 2.0], &s(&[1, 2]), &[(1, 0), (0, 1)], 9.0);
        assert_eq!(out, vec![9.0, 9.0, 9.0, 1.0, 2.0, 9.0]);
    }

    #[test]
    fn gather_rows() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = gather(&x, &s(&[3, 2]), &[2, 0], 0);
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn tile_2d() {
        let out = tile(&[1.0, 2.0], &s(&[1, 2]), &[2, 2]);
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn reverse_axis() {
        let out = reverse(&[1.0, 2.0, 3.0, 4.0], &s(&[2, 2]), &[1]);
        assert_eq!(out, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn select_broadcasts_condition() {
        let out = select(
            &[1.0, 0.0],
            &s(&[2, 1]),
            &[1.0, 2.0, 3.0, 4.0],
            &s(&[2, 2]),
            &[9.0, 9.0, 9.0, 9.0],
            &s(&[2, 2]),
            &s(&[2, 2]),
        );
        assert_eq!(out, vec![1.0, 2.0, 9.0, 9.0]);
    }

    #[test]
    fn one_hot_basic() {
        assert_eq!(one_hot(&[1, 0, 3], 3, 1.0, 0.0), vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn resize_bilinear_doubles() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let out = resize_bilinear(&x, &s(&[1, 2, 2, 1]), 4, 4, false);
        assert_eq!(out.len(), 16);
        // Corners equal the corner pixels (half-pixel model clamps).
        assert_eq!(out[0], 0.0);
        assert_eq!(out[15], 3.0);
    }

    #[test]
    fn resize_bilinear_align_corners_interpolates_ends() {
        let x = vec![0.0, 3.0];
        let out = resize_bilinear(&x, &s(&[1, 1, 2, 1]), 1, 4, true);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
    }
}
