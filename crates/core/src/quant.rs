//! Quantized-tensor metadata: the affine dequantization parameters carried
//! alongside `U8`-stored tensors (paper Sec 5.1).
//!
//! A quantized tensor stores one byte per element (`DType::U8` codes) plus
//! a [`QuantParams`]: `value ≈ code * scale + min`. Parameters are either
//! per-tensor or **per-channel** along one axis — the standard treatment
//! for conv filters whose per-output-channel dynamic ranges differ by
//! orders of magnitude. The engine keeps the params in the tensor registry
//! (keyed by tensor id), so they survive backend migration and context-loss
//! recovery untouched: only the raw codes move between devices.
//!
//! ## Dequant-free execution
//!
//! Fused kernels never materialize the f32 weights. For a matmul row dot
//! product against a quantized column `n` of `B`:
//!
//! ```text
//! Σₖ aₖ·(qₖₙ·sₙ + mₙ)  =  sₙ·Σₖ aₖ·qₖₙ  +  mₙ·Σₖ aₖ
//! ```
//!
//! so the inner loop accumulates the raw codes (`acc_q = Σ aₖ·qₖₙ`) and the
//! activations (`acc_a = Σ aₖ`) and applies `sₙ·acc_q + mₙ·acc_a` once in
//! the epilogue — followed by bias and activation, exactly like the f32
//! fused epilogue. When *both* operands are U8 the code product is exact in
//! i32 (`k·255·255 ≤ i32::MAX` for `k ≤ ~33 000`), giving the fully
//! integer accumulation path.

use crate::error::{Error, Result};
use crate::shape::Shape;

/// Affine dequantization parameters for a `U8`-stored quantized tensor:
/// `value ≈ code * scale + min`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantParams {
    /// One `(scale, min)` pair for the whole tensor.
    PerTensor {
        /// Dequantization scale.
        scale: f32,
        /// Dequantization minimum (value of code 0).
        min: f32,
    },
    /// One `(scale, min)` pair per channel along `axis` (conv filters:
    /// the output-channel axis, last for HWIO layouts).
    PerChannel {
        /// The channel axis within the tensor's shape.
        axis: usize,
        /// Per-channel scales (length = shape dim at `axis`).
        scales: Vec<f32>,
        /// Per-channel minima (same length as `scales`).
        mins: Vec<f32>,
    },
}

impl QuantParams {
    /// Per-tensor parameters.
    pub fn per_tensor(scale: f32, min: f32) -> QuantParams {
        QuantParams::PerTensor { scale, min }
    }

    /// Per-channel parameters along `axis`.
    pub fn per_channel(axis: usize, scales: Vec<f32>, mins: Vec<f32>) -> QuantParams {
        QuantParams::PerChannel { axis, scales, mins }
    }

    /// Number of channel entries, or `None` for per-tensor params.
    pub fn channel_count(&self) -> Option<usize> {
        match self {
            QuantParams::PerTensor { .. } => None,
            QuantParams::PerChannel { scales, .. } => Some(scales.len()),
        }
    }

    /// The `(scale, min)` pair for `channel` (ignored for per-tensor).
    #[inline]
    pub fn scale_min(&self, channel: usize) -> (f32, f32) {
        match self {
            QuantParams::PerTensor { scale, min } => (*scale, *min),
            QuantParams::PerChannel { scales, mins, .. } => (scales[channel], mins[channel]),
        }
    }

    /// Largest scale across channels — the worst-case step size. Half of
    /// this is the worst-case absolute reconstruction error of any stored
    /// value (`Quantization::max_error` equivalent at execution time).
    pub fn max_scale(&self) -> f32 {
        match self {
            QuantParams::PerTensor { scale, .. } => *scale,
            QuantParams::PerChannel { scales, .. } => {
                scales.iter().copied().fold(0.0f32, f32::max)
            }
        }
    }

    /// Validate the parameters against the shape they annotate.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when the channel axis is out of range,
    /// the per-channel vectors do not match the axis extent, or any scale
    /// or min is non-finite.
    pub fn validate(&self, shape: &Shape) -> Result<()> {
        match self {
            QuantParams::PerTensor { scale, min } => {
                if !scale.is_finite() || !min.is_finite() {
                    return Err(Error::invalid(
                        "quantized_tensor",
                        format!("non-finite quantization params (scale {scale}, min {min})"),
                    ));
                }
            }
            QuantParams::PerChannel { axis, scales, mins } => {
                let dims = &shape.0;
                if *axis >= dims.len() {
                    return Err(Error::invalid(
                        "quantized_tensor",
                        format!("channel axis {axis} out of range for shape {shape}"),
                    ));
                }
                if scales.len() != dims[*axis] || mins.len() != dims[*axis] {
                    return Err(Error::invalid(
                        "quantized_tensor",
                        format!(
                            "per-channel params ({} scales, {} mins) do not match axis {axis} extent {} of shape {shape}",
                            scales.len(),
                            mins.len(),
                            dims[*axis],
                        ),
                    ));
                }
                if let Some(bad) = scales.iter().chain(mins.iter()).find(|v| !v.is_finite()) {
                    return Err(Error::invalid(
                        "quantized_tensor",
                        format!("non-finite per-channel quantization param {bad}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Flat-index → channel mapping for per-channel params over `dims`
    /// (row-major layout): `(i / stride) % dims[axis]` with `stride` the
    /// product of the dims after `axis`. Returns `(stride, channels)`;
    /// per-tensor params get `(1, 1)` so `channel_of` is always 0-safe.
    pub fn channel_stride(&self, dims: &[usize]) -> (usize, usize) {
        match self {
            QuantParams::PerTensor { .. } => (usize::MAX, 1),
            QuantParams::PerChannel { axis, scales, .. } => {
                let stride: usize = dims[axis + 1..].iter().product::<usize>().max(1);
                (stride, scales.len())
            }
        }
    }

    /// Host-side reference dequantization of raw codes over `dims` —
    /// the semantics every dequant-free kernel must reproduce. Used by the
    /// universal backend fallback and by accuracy tests.
    pub fn dequantize(&self, codes: &[u8], dims: &[usize]) -> Vec<f32> {
        match self {
            QuantParams::PerTensor { scale, min } => {
                codes.iter().map(|&c| c as f32 * scale + min).collect()
            }
            QuantParams::PerChannel { .. } => {
                let (stride, channels) = self.channel_stride(dims);
                codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        let ch = (i / stride) % channels;
                        let (s, m) = self.scale_min(ch);
                        c as f32 * s + m
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tensor_dequantizes_affinely() {
        let p = QuantParams::per_tensor(0.5, -1.0);
        assert_eq!(p.dequantize(&[0, 1, 4], &[3]), vec![-1.0, -0.5, 1.0]);
        assert_eq!(p.max_scale(), 0.5);
        assert!(p.validate(&Shape::new(vec![3])).is_ok());
    }

    #[test]
    fn per_channel_uses_the_right_channel() {
        // Shape [2, 3], channels along axis 1 (stride 1).
        let p = QuantParams::per_channel(1, vec![1.0, 10.0, 100.0], vec![0.0; 3]);
        let out = p.dequantize(&[1, 1, 1, 2, 2, 2], &[2, 3]);
        assert_eq!(out, vec![1.0, 10.0, 100.0, 2.0, 20.0, 200.0]);
        // Channels along axis 0 (stride 3).
        let p0 = QuantParams::per_channel(0, vec![1.0, 10.0], vec![0.0; 2]);
        let out0 = p0.dequantize(&[1, 1, 1, 2, 2, 2], &[2, 3]);
        assert_eq!(out0, vec![1.0, 1.0, 1.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn validate_rejects_mismatch_and_non_finite() {
        let shape = Shape::new(vec![2, 3]);
        assert!(QuantParams::per_channel(2, vec![1.0], vec![0.0]).validate(&shape).is_err());
        assert!(QuantParams::per_channel(1, vec![1.0; 2], vec![0.0; 2]).validate(&shape).is_err());
        assert!(QuantParams::per_channel(1, vec![1.0; 3], vec![0.0; 3]).validate(&shape).is_ok());
        assert!(QuantParams::per_tensor(f32::NAN, 0.0).validate(&shape).is_err());
        assert!(QuantParams::per_channel(1, vec![1.0, f32::INFINITY, 1.0], vec![0.0; 3])
            .validate(&shape)
            .is_err());
    }
}
