//! The Ops API (paper Sec 3.3): operations validate shapes/dtypes, call into
//! backend kernels through the engine, and register gradient functions so
//! the eager autodiff engine (Sec 3.5) can differentiate through them.
//!
//! Ops are synchronous and return immediately with a [`Tensor`] handle whose
//! data may still be computing on the device (Sec 3.6); only
//! [`Tensor::data_sync`]/[`Tensor::data`] synchronize.

mod binary;
mod compare;
mod conv;
mod creation;
mod fused;
mod image;
mod matmul;
mod misc;
mod norm;
mod reduce;
mod shape_ops;
mod softmax;
mod unary;

pub use binary::*;
pub use compare::*;
pub use conv::*;
pub use fused::*;
pub use image::*;
pub use matmul::*;
pub use misc::*;
pub use norm::*;
pub use reduce::*;
pub use shape_ops::*;
pub use softmax::*;
pub use unary::*;

use crate::dtype::DType;
use crate::error::{Error, Result};
use crate::shape::{broadcast_reduce_axes, Shape};
use crate::tensor::Tensor;

/// Zero tensor with the shape and dtype of `t`.
///
/// # Errors
/// Never fails in practice.
pub fn zeros_like(t: &Tensor) -> Result<Tensor> {
    t.engine().zeros(t.shape(), t.dtype())
}

/// One-filled tensor with the shape and dtype of `t`.
///
/// # Errors
/// Never fails in practice.
pub fn ones_like(t: &Tensor) -> Result<Tensor> {
    t.engine().ones(t.shape(), t.dtype())
}

/// Check two tensors live on the same engine.
pub(crate) fn same_engine(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.engine() != b.engine() {
        return Err(Error::invalid(op, "tensors belong to different engines"));
    }
    Ok(())
}

/// Reduce `dy` (shaped like the broadcast output) back to `target` shape by
/// summing over the broadcast axes — the gradient counterpart of
/// broadcasting in binary ops.
pub(crate) fn sum_to_shape(dy: &Tensor, target: &Shape) -> Result<Tensor> {
    if dy.shape_ref() == target {
        return Ok(dy.clone());
    }
    let axes = broadcast_reduce_axes(target, dy.shape_ref());
    let axes_isize: Vec<isize> = axes.iter().map(|&a| a as isize).collect();
    let summed = sum(dy, Some(&axes_isize), false)?;
    reshape(&summed, target.clone())
}

/// Cast both operands to their promoted dtype, returning possibly-new
/// tensors.
pub(crate) fn promote_pair(a: &Tensor, b: &Tensor) -> Result<(Tensor, Tensor, DType)> {
    let dt = a.dtype().promote(b.dtype());
    let a2 = if a.dtype() == dt { a.clone() } else { cast(a, dt)? };
    let b2 = if b.dtype() == dt { b.clone() } else { cast(b, dt)? };
    Ok((a2, b2, dt))
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::cpu::CpuBackend;
    use crate::engine::Engine;
    use std::sync::Arc;

    /// A fresh engine with the reference cpu backend, for op unit tests.
    pub fn test_engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    /// Assert two float slices agree within `tol`.
    pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32) {
        assert_eq!(actual.len(), expected.len(), "length mismatch: {actual:?} vs {expected:?}");
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (a - e).abs() <= tol || (a.is_nan() && e.is_nan()),
                "index {i}: actual {a} vs expected {e} (tol {tol})"
            );
        }
    }
}
