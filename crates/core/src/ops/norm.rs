//! Normalization ops: batch normalization, dropout, L2 normalization.

use super::{add, div, mul, rsqrt, sqrt, sub, sum};
use crate::dtype::DType;
use crate::error::{Error, Result};
use crate::tensor::Tensor;

/// Batch normalization: `(x - mean) / sqrt(variance + eps) * scale + offset`.
///
/// `mean`/`variance`/`offset`/`scale` broadcast against `x` (typically
/// per-channel vectors for NHWC inputs). Composed from primitives, so it is
/// fully differentiable.
///
/// # Errors
/// Fails on shape mismatches.
pub fn batch_norm(
    x: &Tensor,
    mean: &Tensor,
    variance: &Tensor,
    offset: Option<&Tensor>,
    scale: Option<&Tensor>,
    epsilon: f32,
) -> Result<Tensor> {
    if epsilon <= 0.0 {
        return Err(Error::invalid("BatchNorm", "epsilon must be positive"));
    }
    let e = x.engine();
    let eps = e.scalar(epsilon)?;
    let inv_std = rsqrt(&add(variance, &eps)?)?;
    let mut out = mul(&sub(x, mean)?, &inv_std)?;
    if let Some(s) = scale {
        out = mul(&out, s)?;
    }
    if let Some(o) = offset {
        out = add(&out, o)?;
    }
    Ok(out)
}

/// Inverted dropout: zeroes each element with probability `rate` and scales
/// the survivors by `1/(1-rate)`. Returns `x` unchanged when `rate == 0`.
///
/// # Errors
/// Fails when `rate` is outside `[0, 1)`.
pub fn dropout(x: &Tensor, rate: f32, seed: u64) -> Result<Tensor> {
    if !(0.0..1.0).contains(&rate) {
        return Err(Error::invalid("Dropout", "rate must be in [0, 1)"));
    }
    if rate == 0.0 {
        return super::identity(x);
    }
    let e = x.engine();
    let u = e.rand_uniform(x.shape(), 0.0, 1.0, seed)?;
    let thresh = e.scalar(rate)?;
    let mask = super::cast(&super::greater_equal(&u, &thresh)?, DType::F32)?;
    let keep = e.scalar(1.0 - rate)?;
    div(&mul(x, &mask)?, &keep)
}

/// L2-normalize along `axes` (`None` = all): `x / max(sqrt(sum(x^2)), eps)`.
///
/// # Errors
/// Fails on invalid axes.
pub fn l2_normalize(x: &Tensor, axes: Option<&[isize]>) -> Result<Tensor> {
    let e = x.engine();
    let sq = sum(&mul(x, x)?, axes, true)?;
    let norm = sqrt(&sq)?;
    let eps = e.scalar(e.epsilon())?;
    div(x, &super::maximum(&norm, &eps)?)
}

/// Local response normalization-style scale by the global norm, used by some
/// embedding models; kept simple: `x * alpha / (beta + norm)`.
///
/// # Errors
/// Fails on disposed inputs.
pub fn norm_scale(x: &Tensor, alpha: f32, beta: f32) -> Result<Tensor> {
    let e = x.engine();
    let n = sqrt(&sum(&mul(x, x)?, None, true)?)?;
    let a = e.scalar(alpha)?;
    let b = e.scalar(beta)?;
    div(&mul(x, &a)?, &add(&n, &b)?)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn batch_norm_standardizes() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.0, 10.0]).unwrap();
        let mean = e.scalar(5.0).unwrap();
        let var = e.scalar(25.0).unwrap();
        let out = batch_norm(&x, &mean, &var, None, None, 1e-8).unwrap();
        assert_close(&out.to_f32_vec().unwrap(), &[-1.0, 1.0], 1e-4);
    }

    #[test]
    fn batch_norm_scale_offset() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.0, 10.0]).unwrap();
        let mean = e.scalar(5.0).unwrap();
        let var = e.scalar(25.0).unwrap();
        let scale = e.scalar(2.0).unwrap();
        let offset = e.scalar(1.0).unwrap();
        let out = batch_norm(&x, &mean, &var, Some(&offset), Some(&scale), 1e-8).unwrap();
        assert_close(&out.to_f32_vec().unwrap(), &[-1.0, 3.0], 1e-4);
    }

    #[test]
    fn batch_norm_rejects_bad_epsilon() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0]).unwrap();
        let m = e.scalar(0.0).unwrap();
        let v = e.scalar(1.0).unwrap();
        assert!(batch_norm(&x, &m, &v, None, None, 0.0).is_err());
    }

    #[test]
    fn dropout_rate_zero_is_identity() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        let y = dropout(&x, 0.0, 1).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let e = test_engine();
        let x = e.ones([10_000], DType::F32).unwrap();
        let y = dropout(&x, 0.5, 42).unwrap().to_f32_vec().unwrap();
        let mean: f32 = y.iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 2.
        assert!(y.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_rejects_rate_one() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(dropout(&x, 1.0, 1).is_err());
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let e = test_engine();
        let x = e.tensor_1d(&[3.0, 4.0]).unwrap();
        let y = l2_normalize(&x, None).unwrap().to_f32_vec().unwrap();
        assert_close(&y, &[0.6, 0.8], 1e-6);
    }
}
