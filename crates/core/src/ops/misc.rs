//! Additional ops rounding out API parity with TensorFlow.js: `erf`,
//! `gelu`, `prelu`, `cumsum`, `topk`, `l2_loss`, `lerp`.

use super::{add, exp, matmul, maximum, minimum, mul, neg, reshape, sub, transpose};
use crate::backend::UnaryOp;
use crate::dtype::{DType, TensorData};
use crate::error::{Error, Result};
use crate::shape::{normalize_axis, Shape};
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Gauss error function, element-wise.
///
/// # Errors
/// Fails on disposed inputs or backend errors.
pub fn erf(a: &Tensor) -> Result<Tensor> {
    let out_shape = a.shape();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        // d erf(x)/dx = 2/sqrt(pi) * e^{-x^2}.
        let x = &ins[0];
        let e = x.engine();
        let coeff = e.scalar(2.0 / std::f32::consts::PI.sqrt())?;
        let x2 = mul(x, x)?;
        let g = mul(&coeff, &exp(&neg(&x2)?)?)?;
        Ok(vec![Some(mul(&dys[0], &g)?)])
    });
    let outs = a.engine().run_kernel(
        "Erf",
        &[a],
        &mut |backend, ins| {
            let id = backend.unary(UnaryOp::Erf, &ins[0])?;
            Ok(vec![(id, out_shape.clone(), UnaryOp::Erf.out_dtype(ins[0].dtype))])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Gaussian error linear unit: `0.5 x (1 + erf(x / sqrt(2)))`.
///
/// # Errors
/// See [`erf`].
pub fn gelu(a: &Tensor) -> Result<Tensor> {
    let e = a.engine();
    let half = e.scalar(0.5)?;
    let inv_sqrt2 = e.scalar(std::f32::consts::FRAC_1_SQRT_2)?;
    let one = e.scalar(1.0)?;
    let inner = erf(&mul(a, &inv_sqrt2)?)?;
    mul(&mul(a, &half)?, &add(&one, &inner)?)
}

/// Parametric ReLU: `max(0, x) + alpha * min(0, x)`, with a learnable
/// (broadcastable) `alpha`. Differentiable in both arguments.
///
/// # Errors
/// Fails on incompatible shapes.
pub fn prelu(x: &Tensor, alpha: &Tensor) -> Result<Tensor> {
    let e = x.engine();
    let zero = e.scalar(0.0)?;
    let pos = maximum(x, &zero)?;
    let neg_part = minimum(x, &zero)?;
    add(&pos, &mul(alpha, &neg_part)?)
}

/// Cumulative sum along `axis`.
///
/// Implemented as a matmul with a lower-triangular ones matrix, so it runs
/// on every backend and is differentiable for free. O(n²) in the axis
/// length — fine for the sequence lengths web models use.
///
/// # Errors
/// Fails on an out-of-range axis.
pub fn cumsum(a: &Tensor, axis: isize) -> Result<Tensor> {
    let axis = normalize_axis("Cumsum", axis, a.rank())?;
    let e = a.engine();
    let n = a.shape_ref().dim(axis);
    // Lower-triangular ones: out[i] = sum_{j<=i} in[j]  <=>  L x in with
    // L[i][j] = 1 for j <= i.
    let mut tri = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            tri[i * n + j] = 1.0;
        }
    }
    let l = e.tensor(tri, [n, n])?;
    // Move `axis` to the front, flatten the rest, multiply, move back.
    let rank = a.rank();
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.remove(axis);
    perm.insert(0, axis);
    let moved = transpose(a, Some(&perm))?;
    let rest: usize = moved.shape_ref().dims()[1..].iter().product::<usize>().max(1);
    let flat = reshape(&moved, vec![n, rest])?;
    let summed = matmul(&l, &flat, false, false)?;
    let unflat = reshape(&summed, moved.shape())?;
    let mut inv = vec![0usize; rank];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    transpose(&unflat, Some(&inv))
}

/// The `k` largest values (and their indices) along the last axis, sorted
/// descending — `tf.topk`. Computed host-side, like the tfjs CPU fallback;
/// not differentiable.
///
/// # Errors
/// Fails when `k` exceeds the last-axis size or the tensor is rank 0.
pub fn topk(a: &Tensor, k: usize) -> Result<(Tensor, Tensor)> {
    if a.rank() == 0 {
        return Err(Error::shape("TopK", "expected rank >= 1"));
    }
    let n = a.shape_ref().dim(a.rank() - 1);
    if k == 0 || k > n {
        return Err(Error::invalid("TopK", format!("k = {k} out of range for axis size {n}")));
    }
    let values = a.to_f32_vec()?;
    let outer = a.size() / n;
    let mut top_vals = Vec::with_capacity(outer * k);
    let mut top_idx = Vec::with_capacity(outer * k);
    for o in 0..outer {
        let row = &values[o * n..(o + 1) * n];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| row[j].total_cmp(&row[i]).then(i.cmp(&j)));
        for &i in order.iter().take(k) {
            top_vals.push(row[i]);
            top_idx.push(i as i32);
        }
    }
    let mut out_dims = a.shape().0;
    *out_dims.last_mut().expect("rank >= 1") = k;
    let e = a.engine();
    let vals = e.tensor(top_vals, Shape::new(out_dims.clone()))?;
    let idx = e.make_tensor(TensorData::I32(top_idx), Shape::new(out_dims), DType::I32)?;
    Ok((vals, idx))
}

/// Squared L2 norm over the whole tensor (`sum(x^2)`), a common training
/// regularizer. Differentiable.
///
/// # Errors
/// Fails on disposed inputs.
pub fn l2_loss(a: &Tensor) -> Result<Tensor> {
    let e = a.engine();
    let half = e.scalar(0.5)?;
    mul(&half, &super::sum(&mul(a, a)?, None, false)?)
}

/// Linear interpolation `a + t * (b - a)` with broadcasting.
///
/// # Errors
/// Fails on incompatible shapes.
pub fn lerp(a: &Tensor, b: &Tensor, t: &Tensor) -> Result<Tensor> {
    add(a, &mul(t, &sub(b, a)?)?)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn erf_known_values() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.0, 1.0, -1.0, 2.0]).unwrap();
        let y = erf(&x).unwrap().to_f32_vec().unwrap();
        assert_close(&y, &[0.0, 0.8427, -0.8427, 0.9953], 1e-3);
    }

    #[test]
    fn erf_gradient_is_gaussian() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.0]).unwrap();
        let g = e.grad(&x, || super::super::sum(&erf(&x)?, None, false)).unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[2.0 / std::f32::consts::PI.sqrt()], 1e-4);
    }

    #[test]
    fn gelu_values() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.0, 1.0, -1.0]).unwrap();
        let y = gelu(&x).unwrap().to_f32_vec().unwrap();
        assert_close(&y, &[0.0, 0.8413, -0.1587], 1e-3);
    }

    #[test]
    fn prelu_values_and_gradient() {
        let e = test_engine();
        let x = e.tensor_1d(&[-2.0, 3.0]).unwrap();
        let alpha = e.scalar(0.1).unwrap();
        let y = prelu(&x, &alpha).unwrap().to_f32_vec().unwrap();
        assert_close(&y, &[-0.2, 3.0], 1e-6);
        // d/d_alpha sum(prelu) = sum(min(0, x)) = -2.
        let g = e
            .grads(&[&alpha], || super::super::sum(&prelu(&x, &alpha)?, None, false))
            .unwrap();
        assert_close(&g[0].to_f32_vec().unwrap(), &[-2.0], 1e-5);
    }

    #[test]
    fn cumsum_1d_and_axis() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cumsum(&x, 0).unwrap().to_f32_vec().unwrap(), vec![1.0, 3.0, 6.0, 10.0]);
        let m = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(cumsum(&m, 0).unwrap().to_f32_vec().unwrap(), vec![1.0, 2.0, 4.0, 6.0]);
        assert_eq!(cumsum(&m, 1).unwrap().to_f32_vec().unwrap(), vec![1.0, 3.0, 3.0, 7.0]);
        assert_eq!(cumsum(&m, -1).unwrap().to_f32_vec().unwrap(), vec![1.0, 3.0, 3.0, 7.0]);
    }

    #[test]
    fn cumsum_is_differentiable() {
        // d/dx_j sum(cumsum(x)) = n - j.
        let e = test_engine();
        let x = e.tensor_1d(&[1.0, 1.0, 1.0]).unwrap();
        let g = e.grad(&x, || super::super::sum(&cumsum(&x, 0)?, None, false)).unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[3.0, 2.0, 1.0], 1e-5);
    }

    #[test]
    fn topk_sorted_descending_with_ties_by_index() {
        let e = test_engine();
        let x = e.tensor_2d(&[1.0, 5.0, 3.0, 5.0, 2.0, 2.0], 2, 3).unwrap();
        let (vals, idx) = topk(&x, 2).unwrap();
        assert_eq!(vals.to_f32_vec().unwrap(), vec![5.0, 3.0, 5.0, 2.0]);
        assert_eq!(idx.to_i32_vec().unwrap(), vec![1, 2, 0, 1]);
        assert!(topk(&x, 4).is_err());
        assert!(topk(&x, 0).is_err());
    }

    #[test]
    fn l2_loss_value() {
        let e = test_engine();
        let x = e.tensor_1d(&[3.0, 4.0]).unwrap();
        assert_close(&[l2_loss(&x).unwrap().to_scalar().unwrap()], &[12.5], 1e-6);
    }

    #[test]
    fn lerp_interpolates() {
        let e = test_engine();
        let a = e.tensor_1d(&[0.0, 10.0]).unwrap();
        let b = e.tensor_1d(&[1.0, 20.0]).unwrap();
        let t = e.scalar(0.25).unwrap();
        assert_close(&lerp(&a, &b, &t).unwrap().to_f32_vec().unwrap(), &[0.25, 12.5], 1e-6);
    }
}
