//! Reduction ops and their gradients.

use super::{div, mul, reshape};
use crate::backend::{ArgReduceOp, ReduceOp};
use crate::dtype::DType;
use crate::error::Result;
use crate::shape::{normalize_axes, normalize_axis, reduced_shape, Shape};
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Run a reduction kernel; `axes = None` reduces all dims.
fn reduce_op(
    name: &'static str,
    op: ReduceOp,
    a: &Tensor,
    axes: Option<&[isize]>,
    keep_dims: bool,
    grad: Option<GradFn>,
) -> Result<Tensor> {
    let axes = normalize_axes(name, axes, a.rank())?;
    let out_shape = reduced_shape(a.shape_ref(), &axes, false);
    let out_dtype = op.out_dtype(a.dtype());
    let shape_for_fwd = out_shape.clone();
    let axes_for_fwd = axes.clone();
    let outs = a.engine().run_kernel(
        name,
        &[a],
        &mut |backend, ins| {
            let id = backend.reduce(op, &ins[0], &axes_for_fwd)?;
            Ok(vec![(id, shape_for_fwd.clone(), out_dtype)])
        },
        grad,
    )?;
    let out = outs.into_iter().next().expect("one output");
    if keep_dims {
        reshape(&out, reduced_shape(a.shape_ref(), &axes, true))
    } else {
        Ok(out)
    }
}

/// Broadcast a reduced gradient `dy` back up to `shape` (insert kept dims,
/// then multiply with ones to broadcast).
fn broadcast_back(dy: &Tensor, shape: &Shape, axes: &[usize]) -> Result<Tensor> {
    let kept = reduced_shape(shape, axes, true);
    let dy_kept = reshape(dy, kept)?;
    let ones = dy.engine().ones(shape.clone(), DType::F32)?;
    mul(&dy_kept, &ones)
}

/// Sum over `axes` (`None` = all).
///
/// # Errors
/// Fails on invalid axes, disposed inputs, or backend errors (all
/// reductions below likewise).
pub fn sum(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    let in_shape = a.shape();
    let norm_axes = normalize_axes("Sum", axes, a.rank())?;
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        Ok(vec![Some(broadcast_back(&dys[0], &in_shape, &norm_axes)?)])
    });
    reduce_op("Sum", ReduceOp::Sum, a, axes, keep_dims, Some(grad))
}

/// Arithmetic mean over `axes` (`None` = all).
///
/// # Errors
/// See [`sum`].
pub fn mean(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    let in_shape = a.shape();
    let norm_axes = normalize_axes("Mean", axes, a.rank())?;
    let count: usize = norm_axes.iter().map(|&i| in_shape.dim(i)).product();
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        let g = broadcast_back(&dys[0], &in_shape, &norm_axes)?;
        let n = g.engine().scalar(count.max(1) as f32)?;
        Ok(vec![Some(div(&g, &n)?)])
    });
    reduce_op("Mean", ReduceOp::Mean, a, axes, keep_dims, Some(grad))
}

/// Product over `axes` (`None` = all). Not differentiable.
///
/// # Errors
/// See [`sum`].
pub fn prod(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    reduce_op("Prod", ReduceOp::Prod, a, axes, keep_dims, None)
}

/// Maximum over `axes` (`None` = all). The gradient flows to every element
/// equal to the maximum.
///
/// # Errors
/// See [`sum`].
pub fn max(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    min_max_impl("Max", ReduceOp::Max, a, axes, keep_dims)
}

/// Minimum over `axes` (`None` = all).
///
/// # Errors
/// See [`sum`].
pub fn min(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    min_max_impl("Min", ReduceOp::Min, a, axes, keep_dims)
}

fn min_max_impl(
    name: &'static str,
    op: ReduceOp,
    a: &Tensor,
    axes: Option<&[isize]>,
    keep_dims: bool,
) -> Result<Tensor> {
    let in_shape = a.shape();
    let norm_axes = normalize_axes(name, axes, a.rank())?;
    let grad: GradFn = Arc::new(move |dys, ins, outs| {
        let x = &ins[0];
        let kept = reduced_shape(&in_shape, &norm_axes, true);
        let y_kept = reshape(&outs[0], kept)?;
        let mask = super::cast(&super::equal(x, &y_kept)?, DType::F32)?;
        let g = broadcast_back(&dys[0], &in_shape, &norm_axes)?;
        Ok(vec![Some(mul(&g, &mask)?)])
    });
    reduce_op(name, op, a, axes, keep_dims, Some(grad))
}

/// Logical any over `axes` (`None` = all); bool output.
///
/// # Errors
/// See [`sum`].
pub fn any(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    reduce_op("Any", ReduceOp::Any, a, axes, keep_dims, None)
}

/// Logical all over `axes` (`None` = all); bool output.
///
/// # Errors
/// See [`sum`].
pub fn all(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    reduce_op("All", ReduceOp::All, a, axes, keep_dims, None)
}

fn arg_reduce_impl(name: &'static str, op: ArgReduceOp, a: &Tensor, axis: isize) -> Result<Tensor> {
    let axis = normalize_axis(name, axis, a.rank())?;
    let out_shape = reduced_shape(a.shape_ref(), &[axis], false);
    let shape_for_fwd = out_shape.clone();
    let outs = a.engine().run_kernel(
        name,
        &[a],
        &mut |backend, ins| {
            let id = backend.arg_reduce(op, &ins[0], axis)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::I32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Index of the maximum along `axis` (I32 output).
///
/// # Errors
/// See [`sum`].
pub fn argmax(a: &Tensor, axis: isize) -> Result<Tensor> {
    arg_reduce_impl("ArgMax", ArgReduceOp::ArgMax, a, axis)
}

/// Index of the minimum along `axis` (I32 output).
///
/// # Errors
/// See [`sum`].
pub fn argmin(a: &Tensor, axis: isize) -> Result<Tensor> {
    arg_reduce_impl("ArgMin", ArgReduceOp::ArgMin, a, axis)
}

/// Mean and variance over `axes` (`tf.moments`).
///
/// # Errors
/// See [`sum`].
pub fn moments(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<(Tensor, Tensor)> {
    let m = mean(a, axes, true)?;
    let centered = super::sub(a, &m)?;
    let variance = mean(&super::mul(&centered, &centered)?, axes, keep_dims)?;
    let m_out = if keep_dims {
        m
    } else {
        let norm = normalize_axes("Moments", axes, a.rank())?;
        reshape(&m, reduced_shape(a.shape_ref(), &norm, false))?
    };
    Ok((m_out, variance))
}

/// Numerically stable `log(sum(exp(x)))` over `axes`.
///
/// # Errors
/// See [`sum`].
pub fn logsumexp(a: &Tensor, axes: Option<&[isize]>, keep_dims: bool) -> Result<Tensor> {
    let m = max(a, axes, true)?;
    let shifted = super::sub(a, &m)?;
    let s = sum(&super::exp(&shifted)?, axes, true)?;
    let out = super::add(&super::log(&s)?, &m)?;
    if keep_dims {
        Ok(out)
    } else {
        let norm = normalize_axes("LogSumExp", axes, a.rank())?;
        reshape(&out, reduced_shape(a.shape_ref(), &norm, false))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn sum_axes_and_keepdims() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        assert_eq!(sum(&a, Some(&[0]), false).unwrap().to_f32_vec().unwrap(), vec![5.0, 7.0, 9.0]);
        let kd = sum(&a, Some(&[1]), true).unwrap();
        assert_eq!(kd.shape(), Shape::new(vec![2, 1]));
        assert_eq!(kd.to_f32_vec().unwrap(), vec![6.0, 15.0]);
        assert_eq!(sum(&a, None, false).unwrap().to_scalar().unwrap(), 21.0);
    }

    #[test]
    fn mean_negative_axis() {
        let e = test_engine();
        let a = e.tensor_2d(&[2.0, 4.0, 6.0, 8.0], 2, 2).unwrap();
        assert_eq!(mean(&a, Some(&[-1]), false).unwrap().to_f32_vec().unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn max_min_prod() {
        let e = test_engine();
        let a = e.tensor_1d(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(max(&a, None, false).unwrap().to_scalar().unwrap(), 3.0);
        assert_eq!(min(&a, None, false).unwrap().to_scalar().unwrap(), 1.0);
        assert_eq!(prod(&a, None, false).unwrap().to_scalar().unwrap(), 6.0);
    }

    #[test]
    fn argmax_axis1() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 9.0, 3.0, 7.0, 2.0, 8.0], 2, 3).unwrap();
        let ix = argmax(&a, 1).unwrap();
        assert_eq!(ix.dtype(), DType::I32);
        assert_eq!(ix.to_i32_vec().unwrap(), vec![1, 2]);
        assert_eq!(argmin(&a, 1).unwrap().to_i32_vec().unwrap(), vec![0, 1]);
    }

    #[test]
    fn any_all_bool() {
        let e = test_engine();
        let a = e.tensor_with_dtype(vec![1u8, 0, 0, 0], [2, 2], DType::Bool).unwrap();
        assert_eq!(any(&a, Some(&[1]), false).unwrap().to_f32_vec().unwrap(), vec![1.0, 0.0]);
        assert_eq!(all(&a, Some(&[1]), false).unwrap().to_f32_vec().unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn moments_match_manual() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let (m, v) = moments(&a, None, false).unwrap();
        assert_close(&[m.to_scalar().unwrap()], &[2.5], 1e-6);
        assert_close(&[v.to_scalar().unwrap()], &[1.25], 1e-6);
    }

    #[test]
    fn logsumexp_is_stable() {
        let e = test_engine();
        let a = e.tensor_1d(&[1000.0, 1000.0]).unwrap();
        let out = logsumexp(&a, None, false).unwrap().to_scalar().unwrap();
        assert!((out - (1000.0 + (2.0f32).ln())).abs() < 1e-3);
    }
}
