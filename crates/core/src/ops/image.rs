//! Image ops: bilinear resize and pixel-buffer import (the `tf.fromPixels`
//! analogue used by the models repo, paper Sec 5.2).

use crate::dtype::{DType, TensorData};
use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Bilinearly resize an NHWC tensor to `(new_h, new_w)`. Not differentiable.
///
/// # Errors
/// Fails when `x` is not rank 4 or the target size is zero.
pub fn resize_bilinear(x: &Tensor, new_h: usize, new_w: usize, align_corners: bool) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(Error::shape("ResizeBilinear", "expected rank-4 NHWC input"));
    }
    if new_h == 0 || new_w == 0 {
        return Err(Error::invalid("ResizeBilinear", "target size must be positive"));
    }
    let out_shape = Shape::new(vec![x.shape_ref().dim(0), new_h, new_w, x.shape_ref().dim(3)]);
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "ResizeBilinear",
        &[x],
        &mut |backend, ins| {
            let id = backend.resize_bilinear(&ins[0], new_h, new_w, align_corners)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

impl Engine {
    /// Import an interleaved 8-bit pixel buffer (HWC) as a `[1, h, w, c]`
    /// float tensor with values in `[0, 255]` — the analogue of
    /// `tf.browser.fromPixels(imageElement)`.
    ///
    /// # Errors
    /// Fails when `pixels.len() != h * w * c`.
    pub fn from_pixels(&self, pixels: &[u8], h: usize, w: usize, c: usize) -> Result<Tensor> {
        if pixels.len() != h * w * c {
            return Err(Error::invalid(
                "fromPixels",
                format!("buffer length {} does not match {h}x{w}x{c}", pixels.len()),
            ));
        }
        let vals: Vec<f32> = pixels.iter().map(|&p| p as f32).collect();
        self.make_tensor(TensorData::F32(vals), Shape::new(vec![1, h, w, c]), DType::F32)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::test_engine;
    use super::*;

    #[test]
    fn resize_identity_when_same_size() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let y = resize_bilinear(&x, 2, 2, false).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn resize_upsample_shape() {
        let e = test_engine();
        let x = e.tensor_4d(&[0.0, 1.0, 2.0, 3.0], 1, 2, 2, 1).unwrap();
        let y = resize_bilinear(&x, 4, 4, true).unwrap();
        assert_eq!(y.shape(), Shape::new(vec![1, 4, 4, 1]));
        let v = y.to_f32_vec().unwrap();
        // align_corners keeps the 4 corners exact.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[3], 1.0);
        assert_eq!(v[12], 2.0);
        assert_eq!(v[15], 3.0);
    }

    #[test]
    fn resize_rejects_bad_rank() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(resize_bilinear(&x, 2, 2, false).is_err());
    }

    #[test]
    fn from_pixels_imports_bytes() {
        let e = test_engine();
        let t = e.from_pixels(&[0, 128, 255, 64, 32, 16], 1, 2, 3).unwrap();
        assert_eq!(t.shape(), Shape::new(vec![1, 1, 2, 3]));
        assert_eq!(t.to_f32_vec().unwrap(), vec![0.0, 128.0, 255.0, 64.0, 32.0, 16.0]);
        assert!(e.from_pixels(&[1, 2], 1, 1, 3).is_err());
    }
}
