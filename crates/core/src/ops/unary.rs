//! Element-wise unary ops and their gradients.

use super::{mul, zeros_like};
use crate::backend::UnaryOp;
use crate::dtype::DType;
use crate::error::Result;
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Run a unary kernel with an optional gradient.
fn unary_op(name: &'static str, op: UnaryOp, a: &Tensor, grad: Option<GradFn>) -> Result<Tensor> {
    let out_dtype = op.out_dtype(a.dtype());
    let out_shape = a.shape();
    let outs = a.engine().run_kernel(
        name,
        &[a],
        &mut |backend, ins| {
            let id = backend.unary(op, &ins[0])?;
            Ok(vec![(id, out_shape.clone(), out_dtype)])
        },
        grad,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

macro_rules! simple_grad {
    (|$dy:ident, $a:ident, $y:ident| $body:expr) => {
        Some(Arc::new(
            move |dys: &[Tensor], ins: &[Tensor], outs: &[Tensor]| -> Result<Vec<Option<Tensor>>> {
                let $dy = &dys[0];
                let $a = &ins[0];
                let $y = &outs[0];
                let _ = ($a, $y);
                Ok(vec![Some($body?)])
            },
        ) as GradFn)
    };
}

/// `-x`.
///
/// # Errors
/// Fails on disposed inputs or backend errors (applies to all ops below).
pub fn neg(a: &Tensor) -> Result<Tensor> {
    unary_op("Neg", UnaryOp::Neg, a, simple_grad!(|dy, a, y| neg(dy)))
}

/// `|x|`.
///
/// # Errors
/// See [`neg`].
pub fn abs(a: &Tensor) -> Result<Tensor> {
    unary_op("Abs", UnaryOp::Abs, a, simple_grad!(|dy, a, y| mul(dy, &sign(a)?)))
}

/// `e^x`.
///
/// # Errors
/// See [`neg`].
pub fn exp(a: &Tensor) -> Result<Tensor> {
    unary_op("Exp", UnaryOp::Exp, a, simple_grad!(|dy, a, y| mul(dy, y)))
}

/// `e^x - 1`.
///
/// # Errors
/// See [`neg`].
pub fn expm1(a: &Tensor) -> Result<Tensor> {
    unary_op("Expm1", UnaryOp::Expm1, a, simple_grad!(|dy, a, y| mul(dy, &exp(a)?)))
}

/// Natural logarithm.
///
/// # Errors
/// See [`neg`].
pub fn log(a: &Tensor) -> Result<Tensor> {
    unary_op("Log", UnaryOp::Log, a, simple_grad!(|dy, a, y| super::div(dy, a)))
}

/// `ln(1 + x)`.
///
/// # Errors
/// See [`neg`].
pub fn log1p(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Log1p",
        UnaryOp::Log1p,
        a,
        simple_grad!(|dy, a, y| {
            let one = a.engine().scalar(1.0)?;
            super::div(dy, &super::add(a, &one)?)
        }),
    )
}

/// Square root.
///
/// # Errors
/// See [`neg`].
pub fn sqrt(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Sqrt",
        UnaryOp::Sqrt,
        a,
        simple_grad!(|dy, a, y| {
            let two_y = mul(y, &y.engine().scalar(2.0)?)?;
            super::div(dy, &two_y)
        }),
    )
}

/// `1 / sqrt(x)`.
///
/// # Errors
/// See [`neg`].
pub fn rsqrt(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Rsqrt",
        UnaryOp::Rsqrt,
        a,
        simple_grad!(|dy, a, y| {
            // d/dx x^{-1/2} = -1/2 x^{-3/2} = -1/2 y^3.
            let y3 = mul(&mul(y, y)?, y)?;
            let half = y.engine().scalar(-0.5)?;
            mul(dy, &mul(&y3, &half)?)
        }),
    )
}

/// `x^2`.
///
/// # Errors
/// See [`neg`].
pub fn square(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Square",
        UnaryOp::Square,
        a,
        simple_grad!(|dy, a, y| {
            let two_a = mul(a, &a.engine().scalar(2.0)?)?;
            mul(dy, &two_a)
        }),
    )
}

/// Rectified linear unit.
///
/// # Errors
/// See [`neg`].
pub fn relu(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Relu",
        UnaryOp::Relu,
        a,
        simple_grad!(|dy, a, y| mul(dy, &step(a, 0.0)?)),
    )
}

/// ReLU clipped at 6.
///
/// # Errors
/// See [`neg`].
pub fn relu6(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Relu6",
        UnaryOp::Relu6,
        a,
        simple_grad!(|dy, a, y| {
            let e = a.engine();
            let lo = super::greater(a, &e.scalar(0.0)?)?;
            let hi = super::less(a, &e.scalar(6.0)?)?;
            let mask = cast(&super::logical_and(&lo, &hi)?, DType::F32)?;
            mul(dy, &mask)
        }),
    )
}

/// Logistic sigmoid.
///
/// # Errors
/// See [`neg`].
pub fn sigmoid(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Sigmoid",
        UnaryOp::Sigmoid,
        a,
        simple_grad!(|dy, a, y| {
            let one = y.engine().scalar(1.0)?;
            mul(dy, &mul(y, &super::sub(&one, y)?)?)
        }),
    )
}

/// Hyperbolic tangent.
///
/// # Errors
/// See [`neg`].
pub fn tanh(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Tanh",
        UnaryOp::Tanh,
        a,
        simple_grad!(|dy, a, y| {
            let one = y.engine().scalar(1.0)?;
            mul(dy, &super::sub(&one, &mul(y, y)?)?)
        }),
    )
}

/// Exponential linear unit.
///
/// # Errors
/// See [`neg`].
pub fn elu(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Elu",
        UnaryOp::Elu,
        a,
        simple_grad!(|dy, a, y| {
            // dy where a >= 0, dy * e^a otherwise (= dy * (y + 1)).
            let e = a.engine();
            let mask = cast(&super::greater_equal(a, &e.scalar(0.0)?)?, DType::F32)?;
            let pos = mul(dy, &mask)?;
            let one = e.scalar(1.0)?;
            let neg_part = mul(dy, &super::add(y, &one)?)?;
            let inv = super::sub(&one, &mask)?;
            super::add(&pos, &mul(&neg_part, &inv)?)
        }),
    )
}

/// Scaled exponential linear unit.
///
/// # Errors
/// See [`neg`].
pub fn selu(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Selu",
        UnaryOp::Selu,
        a,
        simple_grad!(|dy, a, y| {
            const ALPHA: f32 = 1.673_263_2;
            const SCALE: f32 = 1.050_701;
            let e = a.engine();
            let mask = cast(&super::greater_equal(a, &e.scalar(0.0)?)?, DType::F32)?;
            let pos = mul(dy, &mul(&mask, &e.scalar(SCALE)?)?)?;
            let exp_a = exp(a)?;
            let neg_scale = e.scalar(SCALE * ALPHA)?;
            let one = e.scalar(1.0)?;
            let inv = super::sub(&one, &mask)?;
            let neg_part = mul(dy, &mul(&mul(&exp_a, &neg_scale)?, &inv)?)?;
            super::add(&pos, &neg_part)
        }),
    )
}

/// `ln(1 + e^x)`.
///
/// # Errors
/// See [`neg`].
pub fn softplus(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Softplus",
        UnaryOp::Softplus,
        a,
        simple_grad!(|dy, a, y| mul(dy, &sigmoid(a)?)),
    )
}

/// Sine.
///
/// # Errors
/// See [`neg`].
pub fn sin(a: &Tensor) -> Result<Tensor> {
    unary_op("Sin", UnaryOp::Sin, a, simple_grad!(|dy, a, y| mul(dy, &cos(a)?)))
}

/// Cosine.
///
/// # Errors
/// See [`neg`].
pub fn cos(a: &Tensor) -> Result<Tensor> {
    unary_op("Cos", UnaryOp::Cos, a, simple_grad!(|dy, a, y| neg(&mul(dy, &sin(a)?)?)))
}

/// Tangent.
///
/// # Errors
/// See [`neg`].
pub fn tan(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Tan",
        UnaryOp::Tan,
        a,
        simple_grad!(|dy, a, y| {
            let c = cos(a)?;
            super::div(dy, &mul(&c, &c)?)
        }),
    )
}

/// Arcsine.
///
/// # Errors
/// See [`neg`].
pub fn asin(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Asin",
        UnaryOp::Asin,
        a,
        simple_grad!(|dy, a, y| {
            let one = a.engine().scalar(1.0)?;
            super::div(dy, &sqrt(&super::sub(&one, &mul(a, a)?)?)?)
        }),
    )
}

/// Arccosine.
///
/// # Errors
/// See [`neg`].
pub fn acos(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Acos",
        UnaryOp::Acos,
        a,
        simple_grad!(|dy, a, y| {
            let one = a.engine().scalar(1.0)?;
            neg(&super::div(dy, &sqrt(&super::sub(&one, &mul(a, a)?)?)?)?)
        }),
    )
}

/// Arctangent.
///
/// # Errors
/// See [`neg`].
pub fn atan(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Atan",
        UnaryOp::Atan,
        a,
        simple_grad!(|dy, a, y| {
            let one = a.engine().scalar(1.0)?;
            super::div(dy, &super::add(&one, &mul(a, a)?)?)
        }),
    )
}

/// Floor.
///
/// # Errors
/// See [`neg`].
pub fn floor(a: &Tensor) -> Result<Tensor> {
    unary_op("Floor", UnaryOp::Floor, a, simple_grad!(|dy, a, y| zeros_like(dy)))
}

/// Ceiling.
///
/// # Errors
/// See [`neg`].
pub fn ceil(a: &Tensor) -> Result<Tensor> {
    unary_op("Ceil", UnaryOp::Ceil, a, simple_grad!(|dy, a, y| zeros_like(dy)))
}

/// Round half away from zero.
///
/// # Errors
/// See [`neg`].
pub fn round(a: &Tensor) -> Result<Tensor> {
    unary_op("Round", UnaryOp::Round, a, simple_grad!(|dy, a, y| zeros_like(dy)))
}

/// Sign (-1, 0, 1).
///
/// # Errors
/// See [`neg`].
pub fn sign(a: &Tensor) -> Result<Tensor> {
    unary_op("Sign", UnaryOp::Sign, a, simple_grad!(|dy, a, y| zeros_like(dy)))
}

/// `1 / x`.
///
/// # Errors
/// See [`neg`].
pub fn reciprocal(a: &Tensor) -> Result<Tensor> {
    unary_op(
        "Reciprocal",
        UnaryOp::Reciprocal,
        a,
        simple_grad!(|dy, a, y| neg(&super::div(dy, &mul(a, a)?)?)),
    )
}

/// Leaky ReLU with negative slope `alpha`.
///
/// # Errors
/// See [`neg`].
pub fn leaky_relu(a: &Tensor, alpha: f32) -> Result<Tensor> {
    unary_op(
        "LeakyRelu",
        UnaryOp::LeakyRelu(alpha),
        a,
        simple_grad!(|dy, a, y| {
            let e = a.engine();
            let mask = cast(&super::greater_equal(a, &e.scalar(0.0)?)?, DType::F32)?;
            let one = e.scalar(1.0)?;
            let slope = e.scalar(alpha)?;
            let inv = mul(&super::sub(&one, &mask)?, &slope)?;
            mul(dy, &super::add(&mask, &inv)?)
        }),
    )
}

/// Clip into `[min, max]`.
///
/// # Errors
/// See [`neg`].
pub fn clip_by_value(a: &Tensor, min: f32, max: f32) -> Result<Tensor> {
    unary_op(
        "ClipByValue",
        UnaryOp::ClipByValue(min, max),
        a,
        simple_grad!(|dy, a, y| {
            let e = a.engine();
            let ge = super::greater_equal(a, &e.scalar(min)?)?;
            let le = super::less_equal(a, &e.scalar(max)?)?;
            let mask = cast(&super::logical_and(&ge, &le)?, DType::F32)?;
            mul(dy, &mask)
        }),
    )
}

/// Heaviside step: 1 where `x > 0`, else `alpha`.
///
/// # Errors
/// See [`neg`].
pub fn step(a: &Tensor, alpha: f32) -> Result<Tensor> {
    unary_op("Step", UnaryOp::Step(alpha), a, simple_grad!(|dy, a, y| zeros_like(dy)))
}

/// 1.0 where NaN (bool output).
///
/// # Errors
/// See [`neg`].
pub fn is_nan(a: &Tensor) -> Result<Tensor> {
    unary_op("IsNan", UnaryOp::IsNan, a, None)
}

/// 1.0 where infinite (bool output).
///
/// # Errors
/// See [`neg`].
pub fn is_inf(a: &Tensor) -> Result<Tensor> {
    unary_op("IsInf", UnaryOp::IsInf, a, None)
}

/// 1.0 where finite (bool output).
///
/// # Errors
/// See [`neg`].
pub fn is_finite(a: &Tensor) -> Result<Tensor> {
    unary_op("IsFinite", UnaryOp::IsFinite, a, None)
}

/// Logical negation of a bool tensor.
///
/// # Errors
/// See [`neg`].
pub fn logical_not(a: &Tensor) -> Result<Tensor> {
    unary_op("LogicalNot", UnaryOp::LogicalNot, a, None)
}

/// Cast to another dtype. The gradient passes through unchanged for float
/// targets.
///
/// # Errors
/// See [`neg`].
pub fn cast(a: &Tensor, dtype: DType) -> Result<Tensor> {
    let out_shape = a.shape();
    let outs = a.engine().run_kernel(
        "Cast",
        &[a],
        &mut |backend, ins| {
            let id = backend.cast(&ins[0], dtype)?;
            Ok(vec![(id, out_shape.clone(), dtype)])
        },
        Some(Arc::new(
            move |dys: &[Tensor], _ins: &[Tensor], _outs: &[Tensor]| Ok(vec![Some(dys[0].clone())]),
        )),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn relu_clamps() {
        let e = test_engine();
        let a = e.tensor_1d(&[-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&a).unwrap().to_f32_vec().unwrap(), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_tanh_values() {
        let e = test_engine();
        let a = e.tensor_1d(&[0.0]).unwrap();
        assert_close(&sigmoid(&a).unwrap().to_f32_vec().unwrap(), &[0.5], 1e-6);
        assert_close(&tanh(&a).unwrap().to_f32_vec().unwrap(), &[0.0], 1e-6);
    }

    #[test]
    fn exp_log_inverse() {
        let e = test_engine();
        let a = e.tensor_1d(&[0.5, 1.0, 2.0]).unwrap();
        let back = log(&exp(&a).unwrap()).unwrap();
        assert_close(&back.to_f32_vec().unwrap(), &[0.5, 1.0, 2.0], 1e-6);
    }

    #[test]
    fn clip_bounds() {
        let e = test_engine();
        let a = e.tensor_1d(&[-5.0, 0.5, 5.0]).unwrap();
        assert_eq!(
            clip_by_value(&a, -1.0, 1.0).unwrap().to_f32_vec().unwrap(),
            vec![-1.0, 0.5, 1.0]
        );
    }

    #[test]
    fn cast_to_int_truncates() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.7, -2.3]).unwrap();
        assert_eq!(cast(&a, DType::I32).unwrap().to_i32_vec().unwrap(), vec![1, -2]);
    }

    #[test]
    fn is_nan_flags() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, f32::NAN]).unwrap();
        let n = is_nan(&a).unwrap();
        assert_eq!(n.dtype(), DType::Bool);
        assert_eq!(n.to_f32_vec().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let e = test_engine();
        let a = e.tensor_1d(&[-10.0, 10.0]).unwrap();
        assert_eq!(leaky_relu(&a, 0.1).unwrap().to_f32_vec().unwrap(), vec![-1.0, 10.0]);
    }
}
