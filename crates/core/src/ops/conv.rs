//! 2-D convolution and pooling ops (NHWC) with training gradients.

use crate::backend::PoolOp;
use crate::conv_util::{conv2d_info, depthwise_conv2d_info, pool2d_info, Conv2dInfo, Padding};
use crate::dtype::DType;
use crate::error::Result;
use crate::shape::Shape;
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// 2-D convolution: `x` NHWC, `filter` HWIO.
///
/// # Errors
/// Fails on rank/channel mismatches (see [`conv2d_info`]).
pub fn conv2d(
    x: &Tensor,
    filter: &Tensor,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    let info = conv2d_info("Conv2D", x.shape_ref(), filter.shape_ref(), strides, padding, dilations)?;
    let out_shape = info.out_shape();
    let g_info = info.clone();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        let dy = &dys[0];
        let dx = conv2d_backprop_input_op(dy, &ins[1], &g_info)?;
        let dw = conv2d_backprop_filter_op(&ins[0], dy, &g_info)?;
        Ok(vec![Some(dx), Some(dw)])
    });
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "Conv2D",
        &[x, filter],
        &mut |backend, ins| {
            let id = backend.conv2d(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

fn conv2d_backprop_input_op(dy: &Tensor, filter: &Tensor, info: &Conv2dInfo) -> Result<Tensor> {
    let out_shape = Shape::new(vec![info.batch, info.in_height, info.in_width, info.in_channels]);
    let info = info.clone();
    let shape_for_fwd = out_shape.clone();
    let outs = dy.engine().run_kernel(
        "Conv2DBackpropInput",
        &[dy, filter],
        &mut |backend, ins| {
            let id = backend.conv2d_backprop_input(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

fn conv2d_backprop_filter_op(x: &Tensor, dy: &Tensor, info: &Conv2dInfo) -> Result<Tensor> {
    let out_shape = Shape::new(vec![
        info.filter_height,
        info.filter_width,
        info.in_channels,
        info.out_channels,
    ]);
    let info = info.clone();
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "Conv2DBackpropFilter",
        &[x, dy],
        &mut |backend, ins| {
            let id = backend.conv2d_backprop_filter(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Transposed convolution (`tf.conv2dTranspose`): the gradient-of-conv2d
/// used as a forward op, upsampling `x` into `out_shape`.
///
/// # Errors
/// Fails when the implied geometry is inconsistent.
pub fn conv2d_transpose(
    x: &Tensor,
    filter: &Tensor,
    out_shape: [usize; 4],
    strides: (usize, usize),
    padding: Padding,
) -> Result<Tensor> {
    let info = conv2d_info(
        "Conv2DTranspose",
        &Shape::new(out_shape.to_vec()),
        filter.shape_ref(),
        strides,
        padding,
        (1, 1),
    )?;
    conv2d_backprop_input_op(x, filter, &info)
}

/// Depthwise 2-D convolution: `filter` is `[fh, fw, in_c, channel_mul]`.
///
/// # Errors
/// Fails on rank/channel mismatches.
pub fn depthwise_conv2d(
    x: &Tensor,
    filter: &Tensor,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    let info = depthwise_conv2d_info(
        "DepthwiseConv2D",
        x.shape_ref(),
        filter.shape_ref(),
        strides,
        padding,
        dilations,
    )?;
    let out_shape = info.out_shape();
    let g_info = info.clone();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        let dy = &dys[0];
        let dx = depthwise_backprop_input_op(dy, &ins[1], &g_info)?;
        let dw = depthwise_backprop_filter_op(&ins[0], dy, &g_info)?;
        Ok(vec![Some(dx), Some(dw)])
    });
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "DepthwiseConv2D",
        &[x, filter],
        &mut |backend, ins| {
            let id = backend.depthwise_conv2d(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

fn depthwise_backprop_input_op(dy: &Tensor, filter: &Tensor, info: &Conv2dInfo) -> Result<Tensor> {
    let out_shape = Shape::new(vec![info.batch, info.in_height, info.in_width, info.in_channels]);
    let info = info.clone();
    let shape_for_fwd = out_shape.clone();
    let outs = dy.engine().run_kernel(
        "DepthwiseConv2DBackpropInput",
        &[dy, filter],
        &mut |backend, ins| {
            let id = backend.depthwise_conv2d_backprop_input(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

fn depthwise_backprop_filter_op(x: &Tensor, dy: &Tensor, info: &Conv2dInfo) -> Result<Tensor> {
    let out_shape = Shape::new(vec![
        info.filter_height,
        info.filter_width,
        info.in_channels,
        info.channel_mul,
    ]);
    let info = info.clone();
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "DepthwiseConv2DBackpropFilter",
        &[x, dy],
        &mut |backend, ins| {
            let id = backend.depthwise_conv2d_backprop_filter(&ins[0], &ins[1], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Depthwise-separable convolution (MobileNet's building block): a depthwise
/// conv followed by a 1x1 pointwise conv.
///
/// # Errors
/// Fails on geometry mismatches of either stage.
pub fn separable_conv2d(
    x: &Tensor,
    depthwise_filter: &Tensor,
    pointwise_filter: &Tensor,
    strides: (usize, usize),
    padding: Padding,
) -> Result<Tensor> {
    let dw = depthwise_conv2d(x, depthwise_filter, strides, padding, (1, 1))?;
    conv2d(&dw, pointwise_filter, (1, 1), Padding::Same, (1, 1))
}

fn pool_impl(
    name: &'static str,
    op: PoolOp,
    x: &Tensor,
    window: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> Result<Tensor> {
    let info = pool2d_info(name, x.shape_ref(), window, strides, padding)?;
    let out_shape = info.out_shape();
    let g_info = info.clone();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        let dy = &dys[0];
        let x = &ins[0];
        let info = g_info.clone();
        let dx_shape = Shape::new(vec![info.batch, info.in_height, info.in_width, info.in_channels]);
        let shape_for_fwd = dx_shape.clone();
        let outs = dy.engine().run_kernel(
            "PoolBackprop",
            &[dy, x],
            &mut |backend, ins2| {
                let id = backend.pool2d_backprop(op, &ins2[0], &ins2[1], &info)?;
                Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
            },
            None,
        )?;
        Ok(vec![Some(outs.into_iter().next().expect("one output"))])
    });
    let shape_for_fwd = out_shape.clone();
    let dtype = x.dtype();
    let outs = x.engine().run_kernel(
        name,
        &[x],
        &mut |backend, ins| {
            let id = backend.pool2d(op, &ins[0], &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// 2-D max pooling.
///
/// # Errors
/// Fails when `x` is not rank 4.
pub fn max_pool(
    x: &Tensor,
    window: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> Result<Tensor> {
    pool_impl("MaxPool", PoolOp::Max, x, window, strides, padding)
}

/// 2-D average pooling.
///
/// # Errors
/// Fails when `x` is not rank 4.
pub fn avg_pool(
    x: &Tensor,
    window: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> Result<Tensor> {
    pool_impl("AvgPool", PoolOp::Avg, x, window, strides, padding)
}

/// Global average pooling over the spatial dims of an NHWC tensor,
/// producing `[batch, channels]`.
///
/// # Errors
/// Fails when `x` is not rank 4.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(crate::error::Error::shape("GlobalAvgPool", "expected rank-4 NHWC input"));
    }
    super::mean(x, Some(&[1, 2]), false)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let w = e.tensor_4d(&[1.0], 1, 1, 1, 1).unwrap();
        let y = conv2d(&x, &w, (1, 1), Padding::Valid, (1, 1)).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv2d_channel_mixing() {
        let e = test_engine();
        // 1x1 conv with 2 in channels -> 1 out channel summing them.
        let x = e.tensor_4d(&[1.0, 10.0, 2.0, 20.0], 1, 2, 1, 2).unwrap();
        let w = e.tensor_4d(&[1.0, 1.0], 1, 1, 2, 1).unwrap();
        let y = conv2d(&x, &w, (1, 1), Padding::Same, (1, 1)).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![11.0, 22.0]);
    }

    #[test]
    fn depthwise_scales_channels() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0, 10.0, 2.0, 20.0], 1, 2, 1, 2).unwrap();
        let w = e.tensor_4d(&[2.0, 3.0], 1, 1, 2, 1).unwrap();
        let y = depthwise_conv2d(&x, &w, (1, 1), Padding::Same, (1, 1)).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![2.0, 30.0, 4.0, 60.0]);
    }

    #[test]
    fn separable_matches_composition() {
        let e = test_engine();
        let x = e.rand_uniform([1, 4, 4, 2], -1.0, 1.0, 1).unwrap();
        let dw = e.rand_uniform([3, 3, 2, 1], -1.0, 1.0, 2).unwrap();
        let pw = e.rand_uniform([1, 1, 2, 3], -1.0, 1.0, 3).unwrap();
        let y = separable_conv2d(&x, &dw, &pw, (1, 1), Padding::Same).unwrap();
        let manual = conv2d(
            &depthwise_conv2d(&x, &dw, (1, 1), Padding::Same, (1, 1)).unwrap(),
            &pw,
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        assert_close(&y.to_f32_vec().unwrap(), &manual.to_f32_vec().unwrap(), 1e-6);
    }

    #[test]
    fn max_and_avg_pool() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 1, 2, 2, 1).unwrap();
        let m = max_pool(&x, (2, 2), (2, 2), Padding::Valid).unwrap();
        assert_eq!(m.to_f32_vec().unwrap(), vec![4.0]);
        let a = avg_pool(&x, (2, 2), (2, 2), Padding::Valid).unwrap();
        assert_eq!(a.to_f32_vec().unwrap(), vec![2.5]);
    }

    #[test]
    fn global_avg_pool_shape() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], 1, 2, 2, 2).unwrap();
        let g = global_avg_pool(&x).unwrap();
        assert_eq!(g.shape(), Shape::new(vec![1, 2]));
        assert_eq!(g.to_f32_vec().unwrap(), vec![4.0, 5.0]);
    }

    #[test]
    fn conv2d_transpose_upsamples() {
        let e = test_engine();
        let x = e.tensor_4d(&[1.0], 1, 1, 1, 1).unwrap();
        let w = e.tensor_4d(&[1.0, 2.0, 3.0, 4.0], 2, 2, 1, 1).unwrap();
        let y = conv2d_transpose(&x, &w, [1, 2, 2, 1], (2, 2), Padding::Valid).unwrap();
        assert_eq!(y.shape(), Shape::new(vec![1, 2, 2, 1]));
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
