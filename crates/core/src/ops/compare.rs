//! Comparison, logical and selection ops (bool outputs, no gradients except
//! `select`, which routes the gradient by condition).

use super::binary::binary_op;
use super::{same_engine, sum_to_shape, zeros_like};
use crate::backend::BinaryOp;
use crate::error::Result;
use crate::shape::broadcast_shapes;
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// `a == b` element-wise (bool).
///
/// # Errors
/// Fails on incompatible shapes or disposed inputs (all ops below likewise).
pub fn equal(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Equal", BinaryOp::Equal, a, b, None)
}

/// `a != b` element-wise (bool).
///
/// # Errors
/// See [`equal`].
pub fn not_equal(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("NotEqual", BinaryOp::NotEqual, a, b, None)
}

/// `a > b` element-wise (bool).
///
/// # Errors
/// See [`equal`].
pub fn greater(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Greater", BinaryOp::Greater, a, b, None)
}

/// `a >= b` element-wise (bool).
///
/// # Errors
/// See [`equal`].
pub fn greater_equal(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("GreaterEqual", BinaryOp::GreaterEqual, a, b, None)
}

/// `a < b` element-wise (bool).
///
/// # Errors
/// See [`equal`].
pub fn less(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Less", BinaryOp::Less, a, b, None)
}

/// `a <= b` element-wise (bool).
///
/// # Errors
/// See [`equal`].
pub fn less_equal(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("LessEqual", BinaryOp::LessEqual, a, b, None)
}

/// Logical and (bool).
///
/// # Errors
/// See [`equal`].
pub fn logical_and(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("LogicalAnd", BinaryOp::LogicalAnd, a, b, None)
}

/// Logical or (bool).
///
/// # Errors
/// See [`equal`].
pub fn logical_or(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("LogicalOr", BinaryOp::LogicalOr, a, b, None)
}

/// Logical xor (bool).
///
/// # Errors
/// See [`equal`].
pub fn logical_xor(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("LogicalXor", BinaryOp::LogicalXor, a, b, None)
}

/// Element-wise select: `cond ? a : b` with broadcasting (`tf.where`).
///
/// The gradient routes `dy` to `a` where the condition held and to `b`
/// elsewhere; the condition receives no gradient.
///
/// # Errors
/// See [`equal`].
pub fn select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    same_engine("Select", cond, a)?;
    same_engine("Select", a, b)?;
    let ab = broadcast_shapes("Select", a.shape_ref(), b.shape_ref())?;
    let out_shape = broadcast_shapes("Select", &ab, cond.shape_ref())?;
    let out_dtype = a.dtype().promote(b.dtype());
    let shape_for_fwd = out_shape.clone();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        let dy = &dys[0];
        let cond = &ins[0];
        let a = &ins[1];
        let b = &ins[2];
        let zero = zeros_like(dy)?;
        let da = select(cond, dy, &zero)?;
        let db = select(cond, &zero, dy)?;
        Ok(vec![
            None,
            Some(sum_to_shape(&da, a.shape_ref())?),
            Some(sum_to_shape(&db, b.shape_ref())?),
        ])
    });
    let outs = a.engine().run_kernel(
        "Select",
        &[cond, a, b],
        &mut |backend, ins| {
            let id = backend.select(&ins[0], &ins[1], &ins[2], &shape_for_fwd)?;
            Ok(vec![(id, shape_for_fwd.clone(), out_dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::test_engine;
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn comparisons_yield_bool() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        let b = e.tensor_1d(&[2.0, 2.0, 2.0]).unwrap();
        let g = greater(&a, &b).unwrap();
        assert_eq!(g.dtype(), DType::Bool);
        assert_eq!(g.to_f32_vec().unwrap(), vec![0.0, 0.0, 1.0]);
        assert_eq!(less_equal(&a, &b).unwrap().to_f32_vec().unwrap(), vec![1.0, 1.0, 0.0]);
        assert_eq!(equal(&a, &b).unwrap().to_f32_vec().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn logical_ops() {
        let e = test_engine();
        let t = e.tensor_with_dtype(vec![1u8, 1, 0, 0], [4], DType::Bool).unwrap();
        let u = e.tensor_with_dtype(vec![1u8, 0, 1, 0], [4], DType::Bool).unwrap();
        assert_eq!(logical_and(&t, &u).unwrap().to_f32_vec().unwrap(), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(logical_or(&t, &u).unwrap().to_f32_vec().unwrap(), vec![1.0, 1.0, 1.0, 0.0]);
        assert_eq!(logical_xor(&t, &u).unwrap().to_f32_vec().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(logical_not(&t).unwrap().to_f32_vec().unwrap(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn select_broadcasts() {
        let e = test_engine();
        let cond = e.tensor_with_dtype(vec![1u8, 0], [2], DType::Bool).unwrap();
        let a = e.tensor_1d(&[10.0, 20.0]).unwrap();
        let b = e.tensor_1d(&[-1.0, -2.0]).unwrap();
        assert_eq!(select(&cond, &a, &b).unwrap().to_f32_vec().unwrap(), vec![10.0, -2.0]);
    }

    use super::super::logical_not;
}
