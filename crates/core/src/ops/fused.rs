//! Fused ops (the `tf.fused.*` namespace of TensorFlow.js, paper Sec 3.9):
//! matmul/conv with a bias+activation epilogue and elementwise chains, each
//! dispatched to the backend as one kernel.
//!
//! Fusion is a pure dispatch optimization — results are bit-identical to the
//! unfused composition on f32 backends because every backend routes scalar
//! math through [`UnaryOp::apply`] / [`BinaryOp::apply`] and fused kernels
//! apply the epilogue in the same order (full accumulation, then bias add,
//! then activation). On f16-only devices fused kernels round once instead of
//! once per intermediate, so they are *more* accurate there, not identical.
//!
//! Gradients: when a gradient tape is recording, these ops run the unfused
//! composition instead, so the tape records exactly the entries the unfused
//! ops would — fusion never changes training behavior, it only accelerates
//! inference.

use super::{reshape, same_engine, tile};
use crate::backend::{BinaryOp, FusedStep, UnaryOp};
use crate::conv_util::{conv2d_info, depthwise_conv2d_info, Conv2dInfo, Padding};
use crate::dtype::DType;
use crate::error::{Error, Result};
use crate::shape::{broadcast_shapes, Shape};
use crate::tensor::Tensor;

/// Dispatch a unary op to its tape-recording tensor-level op.
fn unary_tensor_op(op: UnaryOp, x: &Tensor) -> Result<Tensor> {
    match op {
        UnaryOp::Neg => super::neg(x),
        UnaryOp::Abs => super::abs(x),
        UnaryOp::Exp => super::exp(x),
        UnaryOp::Expm1 => super::expm1(x),
        UnaryOp::Log => super::log(x),
        UnaryOp::Log1p => super::log1p(x),
        UnaryOp::Sqrt => super::sqrt(x),
        UnaryOp::Rsqrt => super::rsqrt(x),
        UnaryOp::Square => super::square(x),
        UnaryOp::Relu => super::relu(x),
        UnaryOp::Relu6 => super::relu6(x),
        UnaryOp::Sigmoid => super::sigmoid(x),
        UnaryOp::Tanh => super::tanh(x),
        UnaryOp::Elu => super::elu(x),
        UnaryOp::Selu => super::selu(x),
        UnaryOp::Softplus => super::softplus(x),
        UnaryOp::Sin => super::sin(x),
        UnaryOp::Cos => super::cos(x),
        UnaryOp::Tan => super::tan(x),
        UnaryOp::Asin => super::asin(x),
        UnaryOp::Acos => super::acos(x),
        UnaryOp::Atan => super::atan(x),
        UnaryOp::Floor => super::floor(x),
        UnaryOp::Ceil => super::ceil(x),
        UnaryOp::Round => super::round(x),
        UnaryOp::Sign => super::sign(x),
        UnaryOp::Reciprocal => super::reciprocal(x),
        UnaryOp::LeakyRelu(alpha) => super::leaky_relu(x, alpha),
        UnaryOp::ClipByValue(lo, hi) => super::clip_by_value(x, lo, hi),
        UnaryOp::Step(alpha) => super::step(x, alpha),
        UnaryOp::Erf => super::erf(x),
        UnaryOp::LogicalNot | UnaryOp::IsNan | UnaryOp::IsInf | UnaryOp::IsFinite => Err(
            Error::invalid("Fused", format!("{} produces a bool output and cannot be fused", op.name())),
        ),
    }
}

/// Dispatch a binary op to its tape-recording tensor-level op.
fn binary_tensor_op(op: BinaryOp, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    match op {
        BinaryOp::Add => super::add(a, b),
        BinaryOp::Sub => super::sub(a, b),
        BinaryOp::Mul => super::mul(a, b),
        BinaryOp::Div => super::div(a, b),
        BinaryOp::FloorDiv => super::floor_div(a, b),
        BinaryOp::Pow => super::pow(a, b),
        BinaryOp::Maximum => super::maximum(a, b),
        BinaryOp::Minimum => super::minimum(a, b),
        BinaryOp::Mod => super::modulo(a, b),
        BinaryOp::SquaredDifference => super::squared_difference(a, b),
        BinaryOp::Atan2 => super::atan2(a, b),
        _ => Err(Error::invalid(
            "Fused",
            format!("{} produces a bool output and cannot be fused", op.name()),
        )),
    }
}

/// Reject epilogue activations whose output dtype is not float.
fn check_activation(op: &'static str, activation: Option<UnaryOp>) -> Result<()> {
    if let Some(act) = activation {
        if act.out_dtype(DType::F32) != DType::F32 {
            return Err(Error::invalid(
                op,
                format!("activation {} produces a bool output and cannot be fused", act.name()),
            ));
        }
    }
    Ok(())
}

/// Validate a fused bias: rank 1 of the output's channel/column extent.
fn check_bias(op: &'static str, bias: Option<&Tensor>, channels: usize) -> Result<()> {
    if let Some(b) = bias {
        if b.rank() != 1 || b.shape_ref().dim(0) != channels {
            return Err(Error::shape(
                op,
                format!("bias must be rank-1 [{channels}], got {}", b.shape()),
            ));
        }
        if b.dtype() != DType::F32 {
            return Err(Error::dtype(op, format!("bias must be f32, got {:?}", b.dtype())));
        }
    }
    Ok(())
}

/// `activation(a x b + bias)` as one kernel (`tf.fused.matMul`).
///
/// Accepts rank-2 or rank-3 operands like [`super::matmul`]; `bias` must be
/// rank-1 `[n]` and is added to every output row. When a gradient tape is
/// recording, this runs the unfused `matmul → add → activation` composition
/// so the tape sees the standard entries.
///
/// # Errors
/// Fails on rank/inner-dimension/bias-shape mismatches or backend errors.
pub fn fused_matmul(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<Tensor> {
    same_engine("FusedMatMul", a, b)?;
    if let Some(bias) = bias {
        same_engine("FusedMatMul", a, bias)?;
    }
    check_activation("FusedMatMul", activation)?;
    if a.rank() < 2 || b.rank() < 2 || a.rank() > 3 || b.rank() > 3 {
        return Err(Error::shape(
            "FusedMatMul",
            format!("expected rank 2 or 3 tensors, got {} and {}", a.shape(), b.shape()),
        ));
    }
    if a.engine().tape_active() || !a.engine().fusion_enabled() {
        let mut y = super::matmul(a, b, transpose_a, transpose_b)?;
        if let Some(bias) = bias {
            y = super::add(&y, bias)?;
        }
        if let Some(act) = activation {
            y = unary_tensor_op(act, &y)?;
        }
        return Ok(y);
    }
    let out_rank2 = a.rank() == 2 && b.rank() == 2;
    let a3 = if a.rank() == 2 { reshape(a, prepend_batch(a.shape_ref()))? } else { a.clone() };
    let b3 = if b.rank() == 2 { reshape(b, prepend_batch(b.shape_ref()))? } else { b.clone() };
    let (a3, b3) = match (a3.shape_ref().dim(0), b3.shape_ref().dim(0)) {
        (x, y) if x == y => (a3, b3),
        (1, y) => (tile(&a3, &[y, 1, 1])?, b3),
        (x, 1) => (a3, tile(&b3, &[x, 1, 1])?),
        (x, y) => {
            return Err(Error::shape("FusedMatMul", format!("batch dims {x} vs {y} incompatible")))
        }
    };
    let batch = a3.shape_ref().dim(0);
    let (m, k_a) = if transpose_a {
        (a3.shape_ref().dim(2), a3.shape_ref().dim(1))
    } else {
        (a3.shape_ref().dim(1), a3.shape_ref().dim(2))
    };
    let (k_b, n) = if transpose_b {
        (b3.shape_ref().dim(2), b3.shape_ref().dim(1))
    } else {
        (b3.shape_ref().dim(1), b3.shape_ref().dim(2))
    };
    if k_a != k_b {
        return Err(Error::shape(
            "FusedMatMul",
            format!("inner dimensions must match: {k_a} vs {k_b} ({} x {})", a.shape(), b.shape()),
        ));
    }
    check_bias("FusedMatMul", bias, n)?;
    let out_shape = Shape::new(vec![batch, m, n]);
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![&a3, &b3];
    if let Some(bias) = bias {
        inputs.push(bias);
    }
    let outs = a.engine().run_kernel(
        "FusedMatMul",
        &inputs,
        &mut |backend, ins| {
            let id = backend.fused_matmul(
                &ins[0],
                &ins[1],
                ins.get(2),
                activation,
                transpose_a,
                transpose_b,
            )?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    let out = outs.into_iter().next().expect("one output");
    if out_rank2 {
        reshape(&out, vec![m, n])
    } else {
        Ok(out)
    }
}

fn prepend_batch(s: &Shape) -> Vec<usize> {
    let mut dims = vec![1];
    dims.extend_from_slice(s.dims());
    dims
}

/// Shared body of the two fused conv ops.
fn fused_conv_impl(
    kernel: &'static str,
    x: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    info: Conv2dInfo,
    depthwise: bool,
) -> Result<Tensor> {
    check_bias(kernel, bias, info.out_channels)?;
    let out_shape = info.out_shape();
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![x, filter];
    if let Some(bias) = bias {
        inputs.push(bias);
    }
    let outs = x.engine().run_kernel(
        kernel,
        &inputs,
        &mut |backend, ins| {
            let id = if depthwise {
                backend.fused_depthwise_conv2d(&ins[0], &ins[1], ins.get(2), activation, &info)?
            } else {
                backend.fused_conv2d(&ins[0], &ins[1], ins.get(2), activation, &info)?
            };
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// `activation(conv2d(x, filter) + bias)` as one kernel (`tf.fused.conv2d`).
///
/// `bias` must be rank-1 `[out_channels]`. When a gradient tape is recording
/// this runs the unfused composition (see [`fused_matmul`]).
///
/// # Errors
/// Fails on rank/channel/bias-shape mismatches or backend errors.
pub fn fused_conv2d(
    x: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    same_engine("FusedConv2D", x, filter)?;
    if let Some(bias) = bias {
        same_engine("FusedConv2D", x, bias)?;
    }
    check_activation("FusedConv2D", activation)?;
    if x.engine().tape_active() || !x.engine().fusion_enabled() {
        let mut y = super::conv2d(x, filter, strides, padding, dilations)?;
        if let Some(bias) = bias {
            y = super::add(&y, bias)?;
        }
        if let Some(act) = activation {
            y = unary_tensor_op(act, &y)?;
        }
        return Ok(y);
    }
    let info =
        conv2d_info("FusedConv2D", x.shape_ref(), filter.shape_ref(), strides, padding, dilations)?;
    fused_conv_impl("FusedConv2D", x, filter, bias, activation, info, false)
}

/// `activation(depthwise_conv2d(x, filter) + bias)` as one kernel
/// (`tf.fused.depthwiseConv2d`).
///
/// # Errors
/// See [`fused_conv2d`].
pub fn fused_depthwise_conv2d(
    x: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    same_engine("FusedDepthwiseConv2D", x, filter)?;
    if let Some(bias) = bias {
        same_engine("FusedDepthwiseConv2D", x, bias)?;
    }
    check_activation("FusedDepthwiseConv2D", activation)?;
    if x.engine().tape_active() || !x.engine().fusion_enabled() {
        let mut y = super::depthwise_conv2d(x, filter, strides, padding, dilations)?;
        if let Some(bias) = bias {
            y = super::add(&y, bias)?;
        }
        if let Some(act) = activation {
            y = unary_tensor_op(act, &y)?;
        }
        return Ok(y);
    }
    let info = depthwise_conv2d_info(
        "FusedDepthwiseConv2D",
        x.shape_ref(),
        filter.shape_ref(),
        strides,
        padding,
        dilations,
    )?;
    fused_conv_impl("FusedDepthwiseConv2D", x, filter, bias, activation, info, true)
}

/// Materialize a quantized tensor's f32 values as a new tensor by applying
/// its attached affine params host-side. This is the explicit escape hatch
/// for consuming quantized weights in ops that have no dequant-free kernel
/// (and the path the quant fused ops take while a gradient tape records).
///
/// # Errors
/// Fails when `t` carries no quantization params or has been disposed.
pub fn dequantize(t: &Tensor) -> Result<Tensor> {
    let params = t
        .quant_params()
        .ok_or_else(|| Error::invalid("Dequantize", "tensor has no quantization params"))?;
    let data = t.data_sync()?;
    let codes: Vec<u8> = match data {
        crate::dtype::TensorData::U8(v) => v,
        other => other.to_f32_vec().iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect(),
    };
    let values = params.dequantize(&codes, t.shape_ref().dims());
    t.engine().tensor(values, t.shape())
}

/// Fetch the quantization params of a weight operand, erroring when absent.
fn require_quant(op: &'static str, t: &Tensor) -> Result<std::sync::Arc<crate::quant::QuantParams>> {
    if t.dtype() != DType::U8 {
        return Err(Error::dtype(
            op,
            format!("quantized operand must be uint8 codes, got {:?}", t.dtype()),
        ));
    }
    t.quant_params().ok_or_else(|| {
        Error::invalid(op, "operand has no quantization params; use the f32 fused op instead")
    })
}

/// [`fused_matmul`] with a quantized right-hand operand: `b` holds raw U8
/// codes created by [`crate::engine::Engine::quantized_tensor`], and the
/// kernel folds dequantization into its epilogue — no f32 weight tensor is
/// materialized on the fast path. While a gradient tape records (or fusion
/// is disabled) this dequantizes once and runs the f32 composition.
///
/// # Errors
/// Fails when `b` is not quantized, or on the same shape errors as
/// [`fused_matmul`].
pub fn fused_matmul_quant(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<Tensor> {
    same_engine("FusedMatMulQuant", a, b)?;
    if let Some(bias) = bias {
        same_engine("FusedMatMulQuant", a, bias)?;
    }
    check_activation("FusedMatMulQuant", activation)?;
    let params = require_quant("FusedMatMulQuant", b)?;
    if a.rank() < 2 || b.rank() < 2 || a.rank() > 3 || b.rank() > 3 {
        return Err(Error::shape(
            "FusedMatMulQuant",
            format!("expected rank 2 or 3 tensors, got {} and {}", a.shape(), b.shape()),
        ));
    }
    if a.engine().tape_active() || !a.engine().fusion_enabled() {
        let bf = dequantize(b)?;
        return fused_matmul(a, &bf, bias, activation, transpose_a, transpose_b);
    }
    let out_rank2 = a.rank() == 2 && b.rank() == 2;
    let a3 = if a.rank() == 2 { reshape(a, prepend_batch(a.shape_ref()))? } else { a.clone() };
    let b3 = if b.rank() == 2 { reshape(b, prepend_batch(b.shape_ref()))? } else { b.clone() };
    // Prepending the batch dim shifts a rank-2 weight's channel axis by one:
    // a `[k, n]` weight quantized along axis 1 is axis 2 of the `[1, k, n]`
    // kernel view. Without the remap every rank-2 per-channel weight would
    // silently take the dequantize fallback.
    let params = if b.rank() == 2 {
        match &*params {
            crate::quant::QuantParams::PerChannel { axis, scales, mins } => {
                std::sync::Arc::new(crate::quant::QuantParams::per_channel(
                    axis + 1,
                    scales.clone(),
                    mins.clone(),
                ))
            }
            _ => params,
        }
    } else {
        params
    };
    // Weights broadcast a batch-1 `b` inside the kernel (tiling would copy
    // the codes); a batch-1 `a` against batched codes is still tiled.
    let a3 = match (a3.shape_ref().dim(0), b3.shape_ref().dim(0)) {
        (x, y) if x == y => a3,
        (_, 1) => a3,
        (1, y) => tile(&a3, &[y, 1, 1])?,
        (x, y) => {
            return Err(Error::shape(
                "FusedMatMulQuant",
                format!("batch dims {x} vs {y} incompatible"),
            ))
        }
    };
    let batch = a3.shape_ref().dim(0);
    let (m, k_a) = if transpose_a {
        (a3.shape_ref().dim(2), a3.shape_ref().dim(1))
    } else {
        (a3.shape_ref().dim(1), a3.shape_ref().dim(2))
    };
    let (k_b, n) = if transpose_b {
        (b3.shape_ref().dim(2), b3.shape_ref().dim(1))
    } else {
        (b3.shape_ref().dim(1), b3.shape_ref().dim(2))
    };
    if k_a != k_b {
        return Err(Error::shape(
            "FusedMatMulQuant",
            format!("inner dimensions must match: {k_a} vs {k_b} ({} x {})", a.shape(), b.shape()),
        ));
    }
    check_bias("FusedMatMulQuant", bias, n)?;
    let out_shape = Shape::new(vec![batch, m, n]);
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![&a3, &b3];
    if let Some(bias) = bias {
        inputs.push(bias);
    }
    let outs = a.engine().run_kernel(
        "FusedMatMulQuant",
        &inputs,
        &mut |backend, ins| {
            let id = backend.fused_matmul_quant(
                &ins[0],
                &ins[1],
                &params,
                ins.get(2),
                activation,
                transpose_a,
                transpose_b,
            )?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    let out = outs.into_iter().next().expect("one output");
    if out_rank2 {
        reshape(&out, vec![m, n])
    } else {
        Ok(out)
    }
}

/// [`fused_conv2d`] with a quantized HWIO filter (see
/// [`fused_matmul_quant`] for dispatch semantics).
///
/// # Errors
/// Fails when `filter` is not quantized, or on the same shape errors as
/// [`fused_conv2d`].
pub fn fused_conv2d_quant(
    x: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    same_engine("FusedConv2DQuant", x, filter)?;
    if let Some(bias) = bias {
        same_engine("FusedConv2DQuant", x, bias)?;
    }
    check_activation("FusedConv2DQuant", activation)?;
    let params = require_quant("FusedConv2DQuant", filter)?;
    if x.engine().tape_active() || !x.engine().fusion_enabled() {
        let ff = dequantize(filter)?;
        return fused_conv2d(x, &ff, bias, activation, strides, padding, dilations);
    }
    let info = conv2d_info(
        "FusedConv2DQuant",
        x.shape_ref(),
        filter.shape_ref(),
        strides,
        padding,
        dilations,
    )?;
    check_bias("FusedConv2DQuant", bias, info.out_channels)?;
    let out_shape = info.out_shape();
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![x, filter];
    if let Some(bias) = bias {
        inputs.push(bias);
    }
    let outs = x.engine().run_kernel(
        "FusedConv2DQuant",
        &inputs,
        &mut |backend, ins| {
            let id = backend
                .fused_conv2d_quant(&ins[0], &ins[1], &params, ins.get(2), activation, &info)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// [`fused_depthwise_conv2d`] with a quantized `[fh, fw, c, mul]` filter
/// (see [`fused_matmul_quant`] for dispatch semantics).
///
/// # Errors
/// Fails when `filter` is not quantized, or on the same shape errors as
/// [`fused_depthwise_conv2d`].
pub fn fused_depthwise_conv2d_quant(
    x: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Option<UnaryOp>,
    strides: (usize, usize),
    padding: Padding,
    dilations: (usize, usize),
) -> Result<Tensor> {
    same_engine("FusedDepthwiseConv2DQuant", x, filter)?;
    if let Some(bias) = bias {
        same_engine("FusedDepthwiseConv2DQuant", x, bias)?;
    }
    check_activation("FusedDepthwiseConv2DQuant", activation)?;
    let params = require_quant("FusedDepthwiseConv2DQuant", filter)?;
    if x.engine().tape_active() || !x.engine().fusion_enabled() {
        let ff = dequantize(filter)?;
        return fused_depthwise_conv2d(x, &ff, bias, activation, strides, padding, dilations);
    }
    let info = depthwise_conv2d_info(
        "FusedDepthwiseConv2DQuant",
        x.shape_ref(),
        filter.shape_ref(),
        strides,
        padding,
        dilations,
    )?;
    check_bias("FusedDepthwiseConv2DQuant", bias, info.out_channels)?;
    let out_shape = info.out_shape();
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![x, filter];
    if let Some(bias) = bias {
        inputs.push(bias);
    }
    let outs = x.engine().run_kernel(
        "FusedDepthwiseConv2DQuant",
        &inputs,
        &mut |backend, ins| {
            let id = backend.fused_depthwise_conv2d_quant(
                &ins[0],
                &ins[1],
                &params,
                ins.get(2),
                activation,
                &info,
            )?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Execute a chain of elementwise steps over `x` as one kernel. Each
/// [`FusedStep::Binary`] combines the running value (left operand) with
/// `extras[i]` under NumPy broadcasting. When a gradient tape is recording
/// this runs one unfused op per step instead.
///
/// # Errors
/// Fails on an empty chain, an out-of-range extra index, bool-producing
/// steps, incompatible broadcast shapes, or backend errors.
pub fn fused_elementwise(x: &Tensor, extras: &[&Tensor], steps: &[FusedStep]) -> Result<Tensor> {
    if steps.is_empty() {
        return Err(Error::invalid("FusedElementwise", "steps must be non-empty"));
    }
    for e in extras {
        same_engine("FusedElementwise", x, e)?;
    }
    // Validate steps and derive the output shape by walking the chain.
    let mut out_shape = x.shape_ref().clone();
    for step in steps {
        match *step {
            FusedStep::Unary(op) => {
                if op.out_dtype(DType::F32) != DType::F32 {
                    return Err(Error::invalid(
                        "FusedElementwise",
                        format!("{} produces a bool output and cannot be fused", op.name()),
                    ));
                }
            }
            FusedStep::Binary(op, i) => {
                if op.is_comparison() {
                    return Err(Error::invalid(
                        "FusedElementwise",
                        format!("{} produces a bool output and cannot be fused", op.name()),
                    ));
                }
                let e = extras.get(i).ok_or_else(|| {
                    Error::invalid(
                        "FusedElementwise",
                        format!("binary step references extra {i} of {}", extras.len()),
                    )
                })?;
                out_shape = broadcast_shapes("FusedElementwise", &out_shape, e.shape_ref())?;
            }
        }
    }
    if x.engine().tape_active() || !x.engine().fusion_enabled() {
        let mut y = x.clone();
        for step in steps {
            y = match *step {
                FusedStep::Unary(op) => unary_tensor_op(op, &y)?,
                FusedStep::Binary(op, i) => binary_tensor_op(op, &y, extras[i])?,
            };
        }
        return Ok(y);
    }
    let steps = steps.to_vec();
    let shape_for_fwd = out_shape.clone();
    let mut inputs: Vec<&Tensor> = vec![x];
    inputs.extend_from_slice(extras);
    let outs = x.engine().run_kernel(
        "FusedElementwise",
        &inputs,
        &mut |backend, ins| {
            let id = backend.fused_elementwise(&ins[0], &ins[1..], &steps, &shape_for_fwd)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn fused_matmul_matches_unfused() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let b = e.tensor_2d(&[0.5, -1.0, 2.0, 0.25, -0.5, 1.5], 3, 2).unwrap();
        let bias = e.tensor_1d(&[0.1, -0.2]).unwrap();
        let fused =
            fused_matmul(&a, &b, Some(&bias), Some(UnaryOp::Relu), false, false).unwrap();
        let unfused = super::super::relu(
            &super::super::add(&super::super::matmul(&a, &b, false, false).unwrap(), &bias)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(fused.to_f32_vec().unwrap(), unfused.to_f32_vec().unwrap());
        assert_eq!(fused.shape(), unfused.shape());
    }

    #[test]
    fn fused_matmul_without_epilogue_is_plain_matmul() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let fused = fused_matmul(&a, &b, None, None, false, false).unwrap();
        assert_eq!(fused.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn fused_matmul_rejects_bad_bias() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0; 4], 2, 2).unwrap();
        let b = e.tensor_2d(&[1.0; 4], 2, 2).unwrap();
        let bias = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        assert!(fused_matmul(&a, &b, Some(&bias), None, false, false).is_err());
    }

    #[test]
    fn fused_matmul_records_unfused_tape_entries() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, -2.0, 3.0, -4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        let bias = e.tensor_1d(&[0.5, -0.5]).unwrap();
        // d/da sum(relu(a·I + bias)) — the tape must thread through the
        // unfused matmul/add/relu gradients.
        let g = e
            .grad(&a, || {
                let y = fused_matmul(&a, &b, Some(&bias), Some(UnaryOp::Relu), false, false)?;
                super::super::sum(&y, None, false)
            })
            .unwrap();
        // relu' = 1 where a + bias > 0: entries 1.5, -2.5, 3.5, -4.5.
        assert_eq!(g.to_f32_vec().unwrap(), vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn fused_conv2d_matches_unfused() {
        let e = test_engine();
        let x: Vec<f32> = (0..32).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let x = e.tensor(x, vec![1, 4, 4, 2]).unwrap();
        let w: Vec<f32> = (0..36).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect();
        let w = e.tensor(w, vec![3, 3, 2, 2]).unwrap();
        let bias = e.tensor_1d(&[0.25, -0.75]).unwrap();
        let fused = fused_conv2d(
            &x,
            &w,
            Some(&bias),
            Some(UnaryOp::Relu6),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        let unfused = super::super::relu6(
            &super::super::add(
                &super::super::conv2d(&x, &w, (1, 1), Padding::Same, (1, 1)).unwrap(),
                &bias,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(fused.to_f32_vec().unwrap(), unfused.to_f32_vec().unwrap());
    }

    #[test]
    fn fused_matmul_quant_matches_dequantized_f32_path() {
        use crate::quant::QuantParams;
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let codes: Vec<u8> = vec![0, 255, 100, 17, 200, 64];
        let w = e
            .quantized_tensor(codes, vec![3, 2], QuantParams::per_tensor(0.01, -1.2))
            .unwrap();
        let bias = e.tensor_1d(&[0.1, -0.2]).unwrap();
        let fused =
            fused_matmul_quant(&a, &w, Some(&bias), Some(UnaryOp::Relu), false, false).unwrap();
        let wf = dequantize(&w).unwrap();
        let reference =
            fused_matmul(&a, &wf, Some(&bias), Some(UnaryOp::Relu), false, false).unwrap();
        assert_close(&fused.to_f32_vec().unwrap(), &reference.to_f32_vec().unwrap(), 1e-4);
        assert_eq!(fused.shape(), reference.shape());
    }

    #[test]
    fn fused_matmul_quant_broadcasts_weight_batch() {
        use crate::quant::QuantParams;
        let e = test_engine();
        // Batched rank-3 activations against rank-2 quantized weights.
        let a = e.tensor(vec![1.0; 2 * 2 * 3], vec![2, 2, 3]).unwrap();
        let w = e
            .quantized_tensor(vec![128; 6], vec![3, 2], QuantParams::per_tensor(0.5, -32.0))
            .unwrap();
        let y = fused_matmul_quant(&a, &w, None, None, false, false).unwrap();
        assert_eq!(y.dims(), &[2, 2, 2]);
        // Each weight dequantizes to 128*0.5 - 32 = 32; each output is 3*32.
        for v in y.to_f32_vec().unwrap() {
            assert!((v - 96.0).abs() < 1e-3, "{v}");
        }
    }

    #[test]
    fn fused_quant_ops_reject_unquantized_operands() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0; 4], 2, 2).unwrap();
        let w = e.tensor_2d(&[1.0; 4], 2, 2).unwrap();
        assert!(fused_matmul_quant(&a, &w, None, None, false, false).is_err());
        assert!(dequantize(&w).is_err());
    }

    #[test]
    fn fused_conv2d_quant_matches_dequantized_f32_path() {
        use crate::quant::QuantParams;
        let e = test_engine();
        let x: Vec<f32> = (0..18).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = e.tensor(x, vec![1, 3, 3, 2]).unwrap();
        let codes: Vec<u8> = (0..24).map(|i| ((i * 11) % 256) as u8).collect();
        let w = e
            .quantized_tensor(codes, vec![2, 2, 2, 3], QuantParams::per_tensor(0.02, -2.5))
            .unwrap();
        let bias = e.tensor_1d(&[0.1, -0.2, 0.3]).unwrap();
        let fused = fused_conv2d_quant(
            &x,
            &w,
            Some(&bias),
            Some(UnaryOp::Relu6),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        let wf = dequantize(&w).unwrap();
        let reference = fused_conv2d(
            &x,
            &wf,
            Some(&bias),
            Some(UnaryOp::Relu6),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap();
        assert_close(&fused.to_f32_vec().unwrap(), &reference.to_f32_vec().unwrap(), 1e-3);
    }

    #[test]
    fn fused_depthwise_conv2d_quant_per_channel() {
        use crate::quant::QuantParams;
        let e = test_engine();
        let x = e.tensor(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0], vec![1, 2, 2, 2]).unwrap();
        // 1x1 depthwise; per-channel params along the input-channel axis.
        let w = e
            .quantized_tensor(
                vec![100, 100],
                vec![1, 1, 2, 1],
                QuantParams::per_channel(2, vec![0.02, 0.03], vec![0.0, 0.0]),
            )
            .unwrap();
        let y = fused_depthwise_conv2d_quant(&x, &w, None, None, (1, 1), Padding::Valid, (1, 1))
            .unwrap();
        // Channel 0 weight = 2.0, channel 1 weight = 3.0.
        assert_close(
            &y.to_f32_vec().unwrap(),
            &[2.0, 30.0, 4.0, 60.0, 6.0, 90.0, 8.0, 120.0],
            1e-3,
        );
    }

    #[test]
    fn fused_matmul_quant_under_tape_dequantizes_and_composes() {
        use crate::quant::QuantParams;
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, -2.0, 3.0, -4.0], 2, 2).unwrap();
        let w = e
            .quantized_tensor(vec![255, 0, 0, 255], vec![2, 2], QuantParams::per_tensor(1.0 / 255.0, 0.0))
            .unwrap();
        // d/da sum(a · I): gradient of ones flows through the dequantized
        // composition.
        let g = e
            .grad(&a, || {
                let y = fused_matmul_quant(&a, &w, None, None, false, false)?;
                super::super::sum(&y, None, false)
            })
            .unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[1.0, 1.0, 1.0, 1.0], 1e-5);
    }

    #[test]
    fn fused_elementwise_chain() {
        let e = test_engine();
        let x = e.tensor_1d(&[-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
        let scale = e.tensor_1d(&[2.0]).unwrap();
        let shift = e.tensor_1d(&[0.5]).unwrap();
        // relu(x * 2 + 0.5)
        let y = fused_elementwise(
            &x,
            &[&scale, &shift],
            &[
                FusedStep::Binary(BinaryOp::Mul, 0),
                FusedStep::Binary(BinaryOp::Add, 1),
                FusedStep::Unary(UnaryOp::Relu),
            ],
        )
        .unwrap();
        assert_close(&y.to_f32_vec().unwrap(), &[0.0, 0.0, 0.5, 2.5, 4.5], 1e-6);
    }

    #[test]
    fn fused_elementwise_rejects_empty_and_bool() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0]).unwrap();
        assert!(fused_elementwise(&x, &[], &[]).is_err());
        assert!(fused_elementwise(&x, &[], &[FusedStep::Unary(UnaryOp::IsNan)]).is_err());
        assert!(
            fused_elementwise(&x, &[], &[FusedStep::Binary(BinaryOp::Add, 0)]).is_err(),
            "out-of-range extra index"
        );
    }
}
