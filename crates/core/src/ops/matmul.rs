//! Matrix multiplication (the Listing 2 kernel of the paper) and friends.

use super::{reshape, same_engine, tile};
use crate::dtype::DType;
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// `a x b` with optional transposes. Accepts rank-2 matrices or rank-3
/// batched matrices; a batch of 1 broadcasts against the other operand.
///
/// # Errors
/// Fails on rank < 2, inner-dimension mismatch, or batch mismatch.
pub fn matmul(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool) -> Result<Tensor> {
    same_engine("MatMul", a, b)?;
    if a.rank() < 2 || b.rank() < 2 || a.rank() > 3 || b.rank() > 3 {
        return Err(Error::shape(
            "MatMul",
            format!("expected rank 2 or 3 tensors, got {} and {}", a.shape(), b.shape()),
        ));
    }
    let out_rank2 = a.rank() == 2 && b.rank() == 2;
    // Normalize to rank 3.
    let a3 = if a.rank() == 2 { reshape(a, prepend_batch(a.shape_ref()))? } else { a.clone() };
    let b3 = if b.rank() == 2 { reshape(b, prepend_batch(b.shape_ref()))? } else { b.clone() };
    // Broadcast batch of 1.
    let (a3, b3) = match (a3.shape_ref().dim(0), b3.shape_ref().dim(0)) {
        (x, y) if x == y => (a3, b3),
        (1, y) => (tile(&a3, &[y, 1, 1])?, b3),
        (x, 1) => (a3, tile(&b3, &[x, 1, 1])?),
        (x, y) => {
            return Err(Error::shape("MatMul", format!("batch dims {x} vs {y} incompatible")))
        }
    };
    let batch = a3.shape_ref().dim(0);
    let (m, k_a) = if transpose_a {
        (a3.shape_ref().dim(2), a3.shape_ref().dim(1))
    } else {
        (a3.shape_ref().dim(1), a3.shape_ref().dim(2))
    };
    let (k_b, n) = if transpose_b {
        (b3.shape_ref().dim(2), b3.shape_ref().dim(1))
    } else {
        (b3.shape_ref().dim(1), b3.shape_ref().dim(2))
    };
    if k_a != k_b {
        return Err(Error::shape(
            "MatMul",
            format!("inner dimensions must match: {k_a} vs {k_b} ({} x {})", a.shape(), b.shape()),
        ));
    }
    let out_shape = Shape::new(vec![batch, m, n]);
    let shape_for_fwd = out_shape.clone();
    let grad: GradFn = Arc::new(move |dys, ins, _outs| {
        let dy = &dys[0];
        let a = &ins[0];
        let b = &ins[1];
        let (da, db) = match (transpose_a, transpose_b) {
            (false, false) => (matmul(dy, b, false, true)?, matmul(a, dy, true, false)?),
            (false, true) => (matmul(dy, b, false, false)?, matmul(dy, a, true, false)?),
            (true, false) => (matmul(b, dy, false, true)?, matmul(a, dy, false, false)?),
            (true, true) => (matmul(b, dy, true, true)?, matmul(dy, a, true, true)?),
        };
        Ok(vec![Some(da), Some(db)])
    });
    let outs = a.engine().run_kernel(
        "MatMul",
        &[&a3, &b3],
        &mut |backend, ins| {
            let id = backend.matmul(&ins[0], &ins[1], transpose_a, transpose_b)?;
            Ok(vec![(id, shape_for_fwd.clone(), DType::F32)])
        },
        Some(grad),
    )?;
    let out = outs.into_iter().next().expect("one output");
    if out_rank2 {
        reshape(&out, vec![m, n])
    } else {
        Ok(out)
    }
}

fn prepend_batch(s: &Shape) -> Vec<usize> {
    let mut dims = vec![1];
    dims.extend_from_slice(s.dims());
    dims
}

/// Vector/matrix product convenience (`tf.dot`): rank-1 inputs are treated
/// as `1 x n` / `n x 1` and the unit dims are squeezed from the result.
///
/// # Errors
/// Fails when inner dimensions mismatch.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let a2 = if a.rank() == 1 { reshape(a, vec![1, a.size()])? } else { a.clone() };
    let b2 = if b.rank() == 1 { reshape(b, vec![b.size(), 1])? } else { b.clone() };
    let out = matmul(&a2, &b2, false, false)?;
    match (a.rank(), b.rank()) {
        (1, 1) => reshape(&out, Shape::scalar()),
        (1, _) => reshape(&out, vec![out.shape_ref().dim(1)]),
        (_, 1) => reshape(&out, vec![out.shape_ref().dim(0)]),
        _ => Ok(out),
    }
}

/// Outer product of two rank-1 tensors.
///
/// # Errors
/// Fails when either input is not rank 1.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 1 || b.rank() != 1 {
        return Err(Error::shape("Outer", "expected rank-1 tensors"));
    }
    let a2 = reshape(a, vec![a.size(), 1])?;
    let b2 = reshape(b, vec![1, b.size()])?;
    matmul(&a2, &b2, false, false)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn matmul_2x2() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.shape(), Shape::new(vec![2, 2]));
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposes() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let at_a = matmul(&a, &a, true, false).unwrap();
        assert_eq!(at_a.to_f32_vec().unwrap(), vec![10.0, 14.0, 14.0, 20.0]);
        let a_at = matmul(&a, &a, false, true).unwrap();
        assert_eq!(a_at.to_f32_vec().unwrap(), vec![5.0, 11.0, 11.0, 25.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let b = e.tensor_2d(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2).unwrap();
        let c = matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        let e = test_engine();
        let a = e.tensor_3d(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], 2, 2, 2).unwrap();
        let b = e.tensor_3d(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], 2, 2, 2).unwrap();
        let c = matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.shape(), Shape::new(vec![2, 2, 2]));
        assert_eq!(c.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_batch_broadcast() {
        let e = test_engine();
        let a = e.tensor_3d(&[1.0, 2.0, 3.0, 4.0], 2, 1, 2).unwrap();
        let b = e.tensor_3d(&[1.0, 0.0, 0.0, 1.0], 1, 2, 2).unwrap();
        let c = matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_inner_mismatch_errors() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0; 6], 2, 3).unwrap();
        let b = e.tensor_2d(&[1.0; 4], 2, 2).unwrap();
        assert!(matmul(&a, &b, false, false).is_err());
    }

    #[test]
    fn dot_vectors() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        let b = e.tensor_1d(&[4.0, 5.0, 6.0]).unwrap();
        let d = dot(&a, &b).unwrap();
        assert_eq!(d.rank(), 0);
        assert_close(&[d.to_scalar().unwrap()], &[32.0], 1e-6);
    }

    #[test]
    fn outer_product() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let b = e.tensor_1d(&[3.0, 4.0, 5.0]).unwrap();
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.shape(), Shape::new(vec![2, 3]));
        assert_eq!(o.to_f32_vec().unwrap(), vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }
}
