//! Element-wise binary ops with NumPy-style broadcasting and gradients.

use super::{promote_pair, same_engine, sum_to_shape};
use crate::backend::BinaryOp;
use crate::dtype::DType;
use crate::error::Result;
use crate::shape::broadcast_shapes;
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Run a binary kernel with broadcasting and an optional gradient.
pub(crate) fn binary_op(
    name: &'static str,
    op: BinaryOp,
    a: &Tensor,
    b: &Tensor,
    grad: Option<GradFn>,
) -> Result<Tensor> {
    same_engine(name, a, b)?;
    let (a2, b2, dt) = promote_pair(a, b)?;
    let out_dtype = if op.is_comparison() { DType::Bool } else { dt };
    let out_shape = broadcast_shapes(name, a2.shape_ref(), b2.shape_ref())?;
    let shape_for_fwd = out_shape.clone();
    let outs = a.engine().run_kernel(
        name,
        &[&a2, &b2],
        &mut |backend, ins| {
            let id = backend.binary(op, &ins[0], &ins[1], &shape_for_fwd, out_dtype)?;
            Ok(vec![(id, shape_for_fwd.clone(), out_dtype)])
        },
        grad,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

macro_rules! binary_grad {
    (|$dy:ident, $a:ident, $b:ident| ($ga:expr, $gb:expr)) => {
        Some(Arc::new(
            move |dys: &[Tensor], ins: &[Tensor], _outs: &[Tensor]| -> Result<Vec<Option<Tensor>>> {
                let $dy = &dys[0];
                let $a = &ins[0];
                let $b = &ins[1];
                let _ = ($a, $b);
                let ga: Tensor = $ga?;
                let gb: Tensor = $gb?;
                Ok(vec![
                    Some(sum_to_shape(&ga, $a.shape_ref())?),
                    Some(sum_to_shape(&gb, $b.shape_ref())?),
                ])
            },
        ) as GradFn)
    };
}

/// `a + b` with broadcasting.
///
/// # Errors
/// Fails on incompatible shapes, disposed inputs, or backend errors
/// (applies to all binary ops in this module).
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Add", BinaryOp::Add, a, b, binary_grad!(|dy, a, b| (Ok(dy.clone()), Ok(dy.clone()))))
}

/// `a - b` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Sub", BinaryOp::Sub, a, b, binary_grad!(|dy, a, b| (Ok(dy.clone()), super::neg(dy))))
}

/// `a * b` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Mul", BinaryOp::Mul, a, b, binary_grad!(|dy, a, b| (mul(dy, b), mul(dy, a))))
}

/// `a / b` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "Div",
        BinaryOp::Div,
        a,
        b,
        binary_grad!(|dy, a, b| (
            div(dy, b),
            super::neg(&div(&mul(dy, a)?, &mul(b, b)?)?)
        )),
    )
}

/// `floor(a / b)` with broadcasting. Not differentiable.
///
/// # Errors
/// See [`add`].
pub fn floor_div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("FloorDiv", BinaryOp::FloorDiv, a, b, None)
}

/// `a ^ b` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn pow(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "Pow",
        BinaryOp::Pow,
        a,
        b,
        binary_grad!(|dy, a, b| (
            // da = dy * b * a^(b-1)
            {
                let e = a.engine();
                let one = e.scalar(1.0)?;
                let bm1 = sub(b, &one)?;
                mul(dy, &mul(b, &pow(a, &bm1)?)?)
            },
            // db = dy * a^b * ln(a); define ln(a) = 0 where a <= 0 like tfjs.
            {
                let e = a.engine();
                let zero = e.scalar(0.0)?;
                let safe_log = super::select(
                    &super::greater(a, &zero)?,
                    &super::log(&super::maximum(a, &e.scalar(f32::MIN_POSITIVE)?)?)?,
                    &super::zeros_like(a)?,
                )?;
                mul(dy, &mul(&pow(a, b)?, &safe_log)?)
            }
        )),
    )
}

/// Element-wise maximum with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn maximum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "Maximum",
        BinaryOp::Maximum,
        a,
        b,
        binary_grad!(|dy, a, b| (
            {
                let mask = super::cast(&super::greater_equal(a, b)?, DType::F32)?;
                mul(dy, &mask)
            },
            {
                let mask = super::cast(&super::less(a, b)?, DType::F32)?;
                mul(dy, &mask)
            }
        )),
    )
}

/// Element-wise minimum with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn minimum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "Minimum",
        BinaryOp::Minimum,
        a,
        b,
        binary_grad!(|dy, a, b| (
            {
                let mask = super::cast(&super::less_equal(a, b)?, DType::F32)?;
                mul(dy, &mask)
            },
            {
                let mask = super::cast(&super::greater(a, b)?, DType::F32)?;
                mul(dy, &mask)
            }
        )),
    )
}

/// `a mod b` (sign follows divisor) with broadcasting. Not differentiable.
///
/// # Errors
/// See [`add`].
pub fn modulo(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op("Mod", BinaryOp::Mod, a, b, None)
}

/// `(a - b)^2` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn squared_difference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "SquaredDifference",
        BinaryOp::SquaredDifference,
        a,
        b,
        binary_grad!(|dy, a, b| (
            {
                let two = a.engine().scalar(2.0)?;
                mul(dy, &mul(&two, &sub(a, b)?)?)
            },
            {
                let two = a.engine().scalar(-2.0)?;
                mul(dy, &mul(&two, &sub(a, b)?)?)
            }
        )),
    )
}

/// Four-quadrant arctangent `atan2(a, b)` with broadcasting.
///
/// # Errors
/// See [`add`].
pub fn atan2(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(
        "Atan2",
        BinaryOp::Atan2,
        a,
        b,
        binary_grad!(|dy, a, b| (
            {
                // da = dy * b / (a² + b²)
                let denom = add(&mul(a, a)?, &mul(b, b)?)?;
                div(&mul(dy, b)?, &denom)
            },
            {
                let denom = add(&mul(a, a)?, &mul(b, b)?)?;
                super::neg(&div(&mul(dy, a)?, &denom)?)
            }
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn add_broadcast_row_vector() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let b = e.tensor_1d(&[10.0, 20.0, 30.0]).unwrap();
        let out = add(&a, &b).unwrap();
        assert_eq!(out.to_f32_vec().unwrap(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0; 6], 2, 3).unwrap();
        let b = e.tensor_2d(&[1.0; 8], 2, 4).unwrap();
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn dtype_promotion_int_plus_float() {
        let e = test_engine();
        let a = e.tensor(vec![1i32, 2], [2]).unwrap();
        let b = e.tensor_1d(&[0.5, 0.5]).unwrap();
        let out = add(&a, &b).unwrap();
        assert_eq!(out.dtype(), DType::F32);
        assert_eq!(out.to_f32_vec().unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn div_and_pow() {
        let e = test_engine();
        let a = e.tensor_1d(&[8.0, 27.0]).unwrap();
        let b = e.tensor_1d(&[2.0, 3.0]).unwrap();
        assert_close(&div(&a, &b).unwrap().to_f32_vec().unwrap(), &[4.0, 9.0], 1e-6);
        let third = e.tensor_1d(&[1.0 / 3.0, 1.0 / 3.0]).unwrap();
        assert_close(&pow(&a, &third).unwrap().to_f32_vec().unwrap(), &[2.0, 3.0], 1e-5);
    }

    #[test]
    fn maximum_minimum() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 5.0]).unwrap();
        let b = e.tensor_1d(&[3.0, 2.0]).unwrap();
        assert_eq!(maximum(&a, &b).unwrap().to_f32_vec().unwrap(), vec![3.0, 5.0]);
        assert_eq!(minimum(&a, &b).unwrap().to_f32_vec().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn squared_difference_values() {
        let e = test_engine();
        let a = e.tensor_1d(&[5.0]).unwrap();
        let b = e.tensor_1d(&[2.0]).unwrap();
        assert_eq!(squared_difference(&a, &b).unwrap().to_f32_vec().unwrap(), vec![9.0]);
    }

    #[test]
    fn modulo_python_semantics() {
        let e = test_engine();
        let a = e.tensor_1d(&[-7.0]).unwrap();
        let b = e.tensor_1d(&[3.0]).unwrap();
        assert_eq!(modulo(&a, &b).unwrap().to_f32_vec().unwrap(), vec![2.0]);
    }
}
