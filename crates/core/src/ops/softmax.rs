//! Softmax and cross-entropy losses, composed from differentiable
//! primitives so the eager autodiff engine differentiates them for free.

use super::{add, div, exp, log, max, mul, neg, sigmoid, softplus, sub, sum};
use crate::error::Result;
use crate::tensor::Tensor;

/// Numerically stable softmax along the last axis.
///
/// # Errors
/// Fails on disposed inputs or backend errors.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let m = max(logits, Some(&[-1]), true)?;
    let shifted = sub(logits, &m)?;
    let e = exp(&shifted)?;
    let s = sum(&e, Some(&[-1]), true)?;
    div(&e, &s)
}

/// Numerically stable log-softmax along the last axis.
///
/// # Errors
/// Fails on disposed inputs or backend errors.
pub fn log_softmax(logits: &Tensor) -> Result<Tensor> {
    let m = max(logits, Some(&[-1]), true)?;
    let shifted = sub(logits, &m)?;
    let s = sum(&exp(&shifted)?, Some(&[-1]), true)?;
    sub(&shifted, &log(&s)?)
}

/// Per-example softmax cross entropy between `labels` (probabilities) and
/// `logits`, reduced over the last axis.
///
/// # Errors
/// Fails on shape mismatches.
pub fn softmax_cross_entropy(labels: &Tensor, logits: &Tensor) -> Result<Tensor> {
    let lsm = log_softmax(logits)?;
    neg(&sum(&mul(labels, &lsm)?, Some(&[-1]), false)?)
}

/// Element-wise sigmoid cross entropy with logits, the numerically stable
/// `max(x, 0) - x*z + log(1 + e^{-|x|})` formulation.
///
/// # Errors
/// Fails on shape mismatches.
pub fn sigmoid_cross_entropy_with_logits(labels: &Tensor, logits: &Tensor) -> Result<Tensor> {
    let e = logits.engine();
    let zero = e.scalar(0.0)?;
    let relu_x = super::maximum(logits, &zero)?;
    let xz = mul(logits, labels)?;
    let soft = softplus(&neg(&super::abs(logits)?)?)?;
    add(&sub(&relu_x, &xz)?, &soft)
}

/// Binary cross entropy on probabilities (clipped for stability).
///
/// # Errors
/// Fails on shape mismatches.
pub fn binary_cross_entropy(labels: &Tensor, probs: &Tensor) -> Result<Tensor> {
    let eps = probs.engine().epsilon();
    let p = super::clip_by_value(probs, eps, 1.0 - eps)?;
    let e = probs.engine();
    let one = e.scalar(1.0)?;
    let pos = mul(labels, &log(&p)?)?;
    let neg_l = mul(&sub(&one, labels)?, &log(&sub(&one, &p)?)?)?;
    neg(&add(&pos, &neg_l)?)
}

/// Logistic prediction from logits (alias for [`sigmoid`], for API parity).
///
/// # Errors
/// Fails on disposed inputs.
pub fn logits_to_probs(logits: &Tensor) -> Result<Tensor> {
    sigmoid(logits)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, test_engine};
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let e = test_engine();
        let x = e.tensor_2d(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], 2, 3).unwrap();
        let s = softmax(&x).unwrap();
        let rows = s.to_f32_vec().unwrap();
        assert_close(&[rows[0] + rows[1] + rows[2]], &[1.0], 1e-6);
        assert_close(&rows[3..6], &[1.0 / 3.0; 3], 1e-6);
        assert!(rows[2] > rows[1] && rows[1] > rows[0]);
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let e = test_engine();
        let x = e.tensor_1d(&[1000.0, 1000.0]).unwrap();
        let s = softmax(&x).unwrap().to_f32_vec().unwrap();
        assert_close(&s, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let e = test_engine();
        let x = e.tensor_1d(&[0.5, -1.0, 2.0]).unwrap();
        let a = log_softmax(&x).unwrap().to_f32_vec().unwrap();
        let b = log(&softmax(&x).unwrap()).unwrap().to_f32_vec().unwrap();
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn cross_entropy_zero_for_perfect_prediction() {
        let e = test_engine();
        let labels = e.tensor_2d(&[0.0, 1.0], 1, 2).unwrap();
        let logits = e.tensor_2d(&[-100.0, 100.0], 1, 2).unwrap();
        let ce = softmax_cross_entropy(&labels, &logits).unwrap();
        assert!(ce.to_scalar().unwrap().abs() < 1e-5);
    }

    #[test]
    fn sigmoid_xent_matches_naive_in_stable_region() {
        let e = test_engine();
        let labels = e.tensor_1d(&[1.0, 0.0]).unwrap();
        let logits = e.tensor_1d(&[0.3, -0.7]).unwrap();
        let stable = sigmoid_cross_entropy_with_logits(&labels, &logits).unwrap().to_f32_vec().unwrap();
        // naive: -z log p - (1-z) log(1-p)
        let p = sigmoid(&logits).unwrap().to_f32_vec().unwrap();
        let naive = [-(p[0].ln()), -((1.0 - p[1]).ln())];
        assert_close(&stable, &naive, 1e-5);
    }
}
