//! Shape-manipulation ops.
//!
//! `reshape`, `squeeze`, `expand_dims`, `flatten` and `identity` are *free*:
//! they create a new tensor handle pointing at the same data container
//! (paper Sec 3.4). The rest move data through backend kernels.

use crate::dtype::DType;
use crate::error::{Error, Result};
use crate::shape::{normalize_axis, Shape};
use crate::tape::GradFn;
use crate::tensor::Tensor;
use std::sync::Arc;

/// View `a` under a new shape without copying.
///
/// # Errors
/// Fails when the element counts differ or `a` is disposed.
pub fn reshape(a: &Tensor, shape: impl Into<Shape>) -> Result<Tensor> {
    let new_shape = shape.into();
    let old_shape = a.shape();
    let grad: GradFn =
        Arc::new(move |dys, _ins, _outs| Ok(vec![Some(reshape(&dys[0], old_shape.clone())?)]));
    a.engine().run_alias("Reshape", a, new_shape, Some(grad))
}

/// A new tensor sharing `a`'s data and shape (`tensor.clone()` in tfjs).
///
/// # Errors
/// Fails when `a` is disposed.
pub fn identity(a: &Tensor) -> Result<Tensor> {
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| Ok(vec![Some(dys[0].clone())]));
    a.engine().run_alias("Identity", a, a.shape(), Some(grad))
}

/// Collapse to rank 1.
///
/// # Errors
/// Fails when `a` is disposed.
pub fn flatten(a: &Tensor) -> Result<Tensor> {
    reshape(a, vec![a.size()])
}

/// Insert a size-1 dimension at `axis`.
///
/// # Errors
/// Fails on an out-of-range axis.
pub fn expand_dims(a: &Tensor, axis: isize) -> Result<Tensor> {
    let rank = a.rank();
    let axis = if axis < 0 { (axis + rank as isize + 1) as usize } else { axis as usize };
    if axis > rank {
        return Err(Error::invalid("ExpandDims", format!("axis {axis} out of range for rank {rank}")));
    }
    let mut dims = a.shape().0;
    dims.insert(axis, 1);
    reshape(a, dims)
}

/// Remove size-1 dimensions (all of them, or the listed axes).
///
/// # Errors
/// Fails when a listed axis is not size 1.
pub fn squeeze(a: &Tensor, axes: Option<&[isize]>) -> Result<Tensor> {
    let dims = a.shape().0;
    let new_dims: Vec<usize> = match axes {
        None => dims.iter().copied().filter(|&d| d != 1).collect(),
        Some(list) => {
            let mut drop = Vec::new();
            for &ax in list {
                let ax = normalize_axis("Squeeze", ax, a.rank())?;
                if dims[ax] != 1 {
                    return Err(Error::invalid("Squeeze", format!("axis {ax} has size {}", dims[ax])));
                }
                drop.push(ax);
            }
            dims.iter().enumerate().filter(|(i, _)| !drop.contains(i)).map(|(_, &d)| d).collect()
        }
    };
    reshape(a, new_dims)
}

/// Permute dimensions; `perm = None` reverses them.
///
/// # Errors
/// Fails when `perm` is not a permutation of `0..rank`.
pub fn transpose(a: &Tensor, perm: Option<&[usize]>) -> Result<Tensor> {
    let rank = a.rank();
    let perm: Vec<usize> = match perm {
        Some(p) => p.to_vec(),
        None => (0..rank).rev().collect(),
    };
    {
        let mut seen = vec![false; rank];
        if perm.len() != rank || perm.iter().any(|&p| p >= rank || std::mem::replace(&mut seen[p], true)) {
            return Err(Error::invalid("Transpose", format!("invalid permutation {perm:?} for rank {rank}")));
        }
    }
    let out_dims: Vec<usize> = perm.iter().map(|&p| a.shape_ref().dim(p)).collect();
    let out_shape = Shape::new(out_dims);
    let dtype = a.dtype();
    // Inverse permutation for the gradient.
    let mut inv = vec![0usize; rank];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        Ok(vec![Some(transpose(&dys[0], Some(&inv))?)])
    });
    let shape_for_fwd = out_shape.clone();
    let perm_fwd = perm.clone();
    let outs = a.engine().run_kernel(
        "Transpose",
        &[a],
        &mut |backend, ins| {
            let id = backend.transpose(&ins[0], &perm_fwd)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Constant-pad each dimension by `(before, after)`.
///
/// # Errors
/// Fails when `paddings.len() != rank`.
pub fn pad(a: &Tensor, paddings: &[(usize, usize)], value: f32) -> Result<Tensor> {
    if paddings.len() != a.rank() {
        return Err(Error::invalid("Pad", "paddings length must equal rank"));
    }
    let out_dims: Vec<usize> =
        a.shape_ref().dims().iter().zip(paddings).map(|(&d, &(b, aft))| d + b + aft).collect();
    let out_shape = Shape::new(out_dims);
    let dtype = a.dtype();
    let begins: Vec<usize> = paddings.iter().map(|&(b, _)| b).collect();
    let sizes: Vec<usize> = a.shape_ref().dims().to_vec();
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        Ok(vec![Some(slice(&dys[0], &begins, &sizes)?)])
    });
    let shape_for_fwd = out_shape.clone();
    let pads = paddings.to_vec();
    let outs = a.engine().run_kernel(
        "Pad",
        &[a],
        &mut |backend, ins| {
            let id = backend.pad(&ins[0], &pads, value)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Extract `a[begin .. begin+size]` per axis.
///
/// # Errors
/// Fails when the window exceeds the tensor bounds.
pub fn slice(a: &Tensor, begin: &[usize], size: &[usize]) -> Result<Tensor> {
    if begin.len() != a.rank() || size.len() != a.rank() {
        return Err(Error::invalid("Slice", "begin/size length must equal rank"));
    }
    for i in 0..a.rank() {
        if begin[i] + size[i] > a.shape_ref().dim(i) {
            return Err(Error::invalid(
                "Slice",
                format!("slice [{}, {}) exceeds dim {} of size {}", begin[i], begin[i] + size[i], i, a.shape_ref().dim(i)),
            ));
        }
    }
    let out_shape = Shape::new(size.to_vec());
    let dtype = a.dtype();
    let in_dims = a.shape().0;
    let g_begin = begin.to_vec();
    let g_size = size.to_vec();
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        let pads: Vec<(usize, usize)> = (0..in_dims.len())
            .map(|i| (g_begin[i], in_dims[i] - g_begin[i] - g_size[i]))
            .collect();
        Ok(vec![Some(pad(&dys[0], &pads, 0.0)?)])
    });
    let shape_for_fwd = out_shape.clone();
    let f_begin = begin.to_vec();
    let f_size = size.to_vec();
    let outs = a.engine().run_kernel(
        "Slice",
        &[a],
        &mut |backend, ins| {
            let id = backend.slice(&ins[0], &f_begin, &f_size)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Concatenate tensors along `axis`.
///
/// # Errors
/// Fails when ranks or non-axis dims differ, or the list is empty.
pub fn concat(xs: &[&Tensor], axis: isize) -> Result<Tensor> {
    if xs.is_empty() {
        return Err(Error::invalid("Concat", "need at least one tensor"));
    }
    if xs.len() == 1 {
        return identity(xs[0]);
    }
    let rank = xs[0].rank();
    let axis = normalize_axis("Concat", axis, rank)?;
    for t in xs {
        if t.rank() != rank {
            return Err(Error::shape("Concat", "all tensors must share rank"));
        }
        for d in 0..rank {
            if d != axis && t.shape_ref().dim(d) != xs[0].shape_ref().dim(d) {
                return Err(Error::shape("Concat", format!("dim {d} mismatch")));
            }
        }
    }
    let mut out_dims = xs[0].shape().0;
    out_dims[axis] = xs.iter().map(|t| t.shape_ref().dim(axis)).sum();
    let out_shape = Shape::new(out_dims);
    let dtype = xs[0].dtype();
    let sizes: Vec<usize> = xs.iter().map(|t| t.shape_ref().dim(axis)).collect();
    let shapes: Vec<Shape> = xs.iter().map(|t| t.shape()).collect();
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        // Slice dy back into per-input gradients.
        let dy = &dys[0];
        let mut offset = 0;
        let mut grads = Vec::with_capacity(sizes.len());
        for (sz, shape) in sizes.iter().zip(&shapes) {
            let mut begin = vec![0; shape.rank()];
            begin[axis] = offset;
            grads.push(Some(slice(dy, &begin, shape.dims())?));
            offset += sz;
        }
        Ok(grads)
    });
    let shape_for_fwd = out_shape.clone();
    let outs = xs[0].engine().run_kernel(
        "Concat",
        xs,
        &mut |backend, ins| {
            let id = backend.concat(ins, axis)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Stack tensors of identical shape along a new `axis`.
///
/// # Errors
/// Fails when shapes differ.
pub fn stack(xs: &[&Tensor], axis: isize) -> Result<Tensor> {
    if xs.is_empty() {
        return Err(Error::invalid("Stack", "need at least one tensor"));
    }
    let rank = xs[0].rank();
    let axis_u = if axis < 0 { (axis + rank as isize + 1) as usize } else { axis as usize };
    let expanded: Vec<Tensor> =
        xs.iter().map(|t| expand_dims(t, axis_u as isize)).collect::<Result<_>>()?;
    let refs: Vec<&Tensor> = expanded.iter().collect();
    concat(&refs, axis_u as isize)
}

/// Split a tensor into equal parts along `axis` (the inverse of [`stack`]
/// keeps the axis; see [`unstack`] to drop it).
///
/// # Errors
/// Fails when the axis size is not divisible by `parts`.
pub fn split(a: &Tensor, parts: usize, axis: isize) -> Result<Vec<Tensor>> {
    let axis = normalize_axis("Split", axis, a.rank())?;
    let n = a.shape_ref().dim(axis);
    if parts == 0 || !n.is_multiple_of(parts) {
        return Err(Error::invalid("Split", format!("cannot split {n} into {parts} parts")));
    }
    let step = n / parts;
    let mut out = Vec::with_capacity(parts);
    for p in 0..parts {
        let mut begin = vec![0; a.rank()];
        begin[axis] = p * step;
        let mut size = a.shape().0;
        size[axis] = step;
        out.push(slice(a, &begin, &size)?);
    }
    Ok(out)
}

/// Unstack along `axis` into tensors with that axis removed.
///
/// # Errors
/// Fails on an out-of-range axis.
pub fn unstack(a: &Tensor, axis: isize) -> Result<Vec<Tensor>> {
    let axis_u = normalize_axis("Unstack", axis, a.rank())?;
    let n = a.shape_ref().dim(axis_u);
    let slices = split(a, n, axis_u as isize)?;
    slices.into_iter().map(|s| squeeze(&s, Some(&[axis_u as isize]))).collect()
}

/// Gather slices along `axis` by I32 `indices` (rank-1).
///
/// The gradient w.r.t. `x` is not implemented (indices are data-dependent);
/// training through `gather` returns an error from the autodiff engine.
///
/// # Errors
/// Fails when `indices` is not an integer tensor.
pub fn gather(x: &Tensor, indices: &Tensor, axis: isize) -> Result<Tensor> {
    if indices.dtype() != DType::I32 {
        return Err(Error::dtype("Gather", "indices must be int32"));
    }
    let axis = normalize_axis("Gather", axis, x.rank())?;
    let mut out_dims = Vec::new();
    out_dims.extend_from_slice(&x.shape_ref().dims()[..axis]);
    out_dims.extend_from_slice(indices.shape_ref().dims());
    out_dims.extend_from_slice(&x.shape_ref().dims()[axis + 1..]);
    let out_shape = Shape::new(out_dims);
    let dtype = x.dtype();
    let shape_for_fwd = out_shape.clone();
    let outs = x.engine().run_kernel(
        "Gather",
        &[x, indices],
        &mut |backend, ins| {
            let id = backend.gather(&ins[0], &ins[1], axis)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Repeat each dimension `reps[i]` times. Not differentiable.
///
/// # Errors
/// Fails when `reps.len() != rank`.
pub fn tile(a: &Tensor, reps: &[usize]) -> Result<Tensor> {
    if reps.len() != a.rank() {
        return Err(Error::invalid("Tile", "reps length must equal rank"));
    }
    let out_dims: Vec<usize> =
        a.shape_ref().dims().iter().zip(reps).map(|(&d, &r)| d * r).collect();
    let out_shape = Shape::new(out_dims);
    let dtype = a.dtype();
    let shape_for_fwd = out_shape.clone();
    let reps_fwd = reps.to_vec();
    let outs = a.engine().run_kernel(
        "Tile",
        &[a],
        &mut |backend, ins| {
            let id = backend.tile(&ins[0], &reps_fwd)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        None,
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

/// Reverse along the given axes.
///
/// # Errors
/// Fails on out-of-range axes.
pub fn reverse(a: &Tensor, axes: &[isize]) -> Result<Tensor> {
    let norm: Vec<usize> =
        axes.iter().map(|&ax| normalize_axis("Reverse", ax, a.rank())).collect::<Result<_>>()?;
    let out_shape = a.shape();
    let dtype = a.dtype();
    let g_axes = axes.to_vec();
    let grad: GradFn = Arc::new(move |dys, _ins, _outs| {
        Ok(vec![Some(reverse(&dys[0], &g_axes)?)])
    });
    let shape_for_fwd = out_shape.clone();
    let outs = a.engine().run_kernel(
        "Reverse",
        &[a],
        &mut |backend, ins| {
            let id = backend.reverse(&ins[0], &norm)?;
            Ok(vec![(id, shape_for_fwd.clone(), dtype)])
        },
        Some(grad),
    )?;
    Ok(outs.into_iter().next().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::test_engine;
    use super::*;

    #[test]
    fn reshape_shares_data() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let before = e.memory().num_bytes;
        let b = reshape(&a, [2, 2]).unwrap();
        // No new bytes allocated: reshape is free (paper Sec 3.4).
        assert_eq!(e.memory().num_bytes, before);
        assert_eq!(b.shape(), Shape::new(vec![2, 2]));
        assert_eq!(b.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        // Engine sees two tensors but one data buffer.
        assert_eq!(e.memory().num_data_buffers, 1);
        assert_eq!(e.memory().num_tensors, 2);
    }

    #[test]
    fn reshape_size_mismatch_errors() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        assert!(reshape(&a, [3]).is_err());
    }

    #[test]
    fn disposing_view_keeps_data_alive() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let b = reshape(&a, [2, 1]).unwrap();
        a.dispose();
        // b still reads fine: refcounted data container.
        assert_eq!(b.to_f32_vec().unwrap(), vec![1.0, 2.0]);
        b.dispose();
        assert_eq!(e.memory().num_data_buffers, 0);
    }

    #[test]
    fn expand_squeeze_round_trip() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0], 1, 2).unwrap();
        let b = expand_dims(&a, 0).unwrap();
        assert_eq!(b.shape(), Shape::new(vec![1, 1, 2]));
        let c = squeeze(&b, None).unwrap();
        assert_eq!(c.shape(), Shape::new(vec![2]));
        assert!(squeeze(&a, Some(&[1])).is_err());
    }

    #[test]
    fn transpose_values() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let t = transpose(&a, None).unwrap();
        assert_eq!(t.shape(), Shape::new(vec![3, 2]));
        assert_eq!(t.to_f32_vec().unwrap(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(transpose(&a, Some(&[0, 0])).is_err());
    }

    #[test]
    fn pad_slice_inverse() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let p = pad(&a, &[(1, 1), (1, 1)], 0.0).unwrap();
        assert_eq!(p.shape(), Shape::new(vec![4, 4]));
        let s = slice(&p, &[1, 1], &[2, 2]).unwrap();
        assert_eq!(s.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_out_of_bounds_errors() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        assert!(slice(&a, &[1], &[2]).is_err());
    }

    #[test]
    fn concat_stack_unstack() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let b = e.tensor_1d(&[3.0, 4.0]).unwrap();
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        let s = stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), Shape::new(vec![2, 2]));
        let parts = unstack(&s, 0).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[1].to_f32_vec().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn split_axis1() {
        let e = test_engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let parts = split(&a, 2, 1).unwrap();
        assert_eq!(parts[0].to_f32_vec().unwrap(), vec![1.0, 3.0]);
        assert_eq!(parts[1].to_f32_vec().unwrap(), vec![2.0, 4.0]);
        assert!(split(&a, 3, 1).is_err());
    }

    #[test]
    fn gather_requires_int_indices() {
        let e = test_engine();
        let x = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let bad = e.tensor_1d(&[0.0]).unwrap();
        assert!(gather(&x, &bad, 0).is_err());
        let ix = e.tensor(vec![1i32, 1, 0], [3]).unwrap();
        let out = gather(&x, &ix, 0).unwrap();
        assert_eq!(out.shape(), Shape::new(vec![3, 2]));
        assert_eq!(out.to_f32_vec().unwrap(), vec![3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn tile_and_reverse() {
        let e = test_engine();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap();
        assert_eq!(tile(&a, &[3]).unwrap().to_f32_vec().unwrap(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(reverse(&a, &[0]).unwrap().to_f32_vec().unwrap(), vec![2.0, 1.0]);
    }
}
