//! Tensor creation ops, exposed as methods on [`Engine`] (the analogue of
//! `tf.tensor`, `tf.zeros`, `tf.randomNormal`, ...).

use crate::dtype::{DType, TensorData};
use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

impl Engine {
    /// Create a tensor from values and an explicit shape.
    ///
    /// # Errors
    /// Fails when `values.len() != shape.size()`.
    pub fn tensor(&self, values: impl Into<TensorData>, shape: impl Into<Shape>) -> Result<Tensor> {
        let data = values.into();
        let dtype = match &data {
            TensorData::F32(_) => DType::F32,
            TensorData::I32(_) => DType::I32,
            TensorData::U8(_) => DType::U8,
        };
        self.make_tensor(data, shape.into(), dtype)
    }

    /// Create a tensor with an explicit dtype.
    ///
    /// # Errors
    /// Fails when `values.len() != shape.size()`.
    pub fn tensor_with_dtype(
        &self,
        values: impl Into<TensorData>,
        shape: impl Into<Shape>,
        dtype: DType,
    ) -> Result<Tensor> {
        self.make_tensor(values.into(), shape.into(), dtype)
    }

    /// Create a rank-0 tensor.
    ///
    /// # Errors
    /// Never fails in practice; returns `Result` for API uniformity.
    pub fn scalar(&self, value: f32) -> Result<Tensor> {
        self.make_tensor(TensorData::F32(vec![value]), Shape::scalar(), DType::F32)
    }

    /// Create a rank-1 tensor from values.
    ///
    /// # Errors
    /// Never fails in practice.
    pub fn tensor_1d(&self, values: &[f32]) -> Result<Tensor> {
        self.make_tensor(TensorData::F32(values.to_vec()), Shape::new(vec![values.len()]), DType::F32)
    }

    /// Create a rank-2 tensor (`tf.tensor2d(values, [rows, cols])`).
    ///
    /// # Errors
    /// Fails when `values.len() != rows * cols`.
    pub fn tensor_2d(&self, values: &[f32], rows: usize, cols: usize) -> Result<Tensor> {
        self.make_tensor(TensorData::F32(values.to_vec()), Shape::new(vec![rows, cols]), DType::F32)
    }

    /// Create a rank-3 tensor.
    ///
    /// # Errors
    /// Fails when the element count does not match.
    pub fn tensor_3d(&self, values: &[f32], d0: usize, d1: usize, d2: usize) -> Result<Tensor> {
        self.make_tensor(TensorData::F32(values.to_vec()), Shape::new(vec![d0, d1, d2]), DType::F32)
    }

    /// Create a rank-4 tensor.
    ///
    /// # Errors
    /// Fails when the element count does not match.
    pub fn tensor_4d(
        &self,
        values: &[f32],
        d0: usize,
        d1: usize,
        d2: usize,
        d3: usize,
    ) -> Result<Tensor> {
        self.make_tensor(
            TensorData::F32(values.to_vec()),
            Shape::new(vec![d0, d1, d2, d3]),
            DType::F32,
        )
    }

    /// Zero-filled tensor.
    ///
    /// # Errors
    /// Never fails in practice.
    pub fn zeros(&self, shape: impl Into<Shape>, dtype: DType) -> Result<Tensor> {
        let shape = shape.into();
        self.make_tensor(TensorData::zeros(dtype, shape.size()), shape, dtype)
    }

    /// One-filled tensor.
    ///
    /// # Errors
    /// Never fails in practice.
    pub fn ones(&self, shape: impl Into<Shape>, dtype: DType) -> Result<Tensor> {
        self.fill(shape, 1.0, dtype)
    }

    /// Tensor filled with `value`.
    ///
    /// # Errors
    /// Never fails in practice.
    pub fn fill(&self, shape: impl Into<Shape>, value: f32, dtype: DType) -> Result<Tensor> {
        let shape = shape.into();
        self.make_tensor(TensorData::F32(vec![value; shape.size()]), shape, dtype)
    }

    /// `num` evenly spaced values in `[start, stop]`.
    ///
    /// # Errors
    /// Fails when `num == 0`.
    pub fn linspace(&self, start: f32, stop: f32, num: usize) -> Result<Tensor> {
        if num == 0 {
            return Err(Error::invalid("linspace", "num must be positive"));
        }
        let step = if num == 1 { 0.0 } else { (stop - start) / (num - 1) as f32 };
        let vals: Vec<f32> = (0..num).map(|i| start + step * i as f32).collect();
        self.tensor_1d(&vals)
    }

    /// Integer range `[start, stop)` with `step`.
    ///
    /// # Errors
    /// Fails when `step == 0`.
    pub fn range(&self, start: i32, stop: i32, step: i32) -> Result<Tensor> {
        if step == 0 {
            return Err(Error::invalid("range", "step must be nonzero"));
        }
        let mut vals = Vec::new();
        let mut v = start;
        while (step > 0 && v < stop) || (step < 0 && v > stop) {
            vals.push(v);
            v += step;
        }
        let n = vals.len();
        self.make_tensor(TensorData::I32(vals), Shape::new(vec![n]), DType::I32)
    }

    /// Identity matrix of size `n`.
    ///
    /// # Errors
    /// Never fails in practice.
    pub fn eye(&self, n: usize) -> Result<Tensor> {
        let mut vals = vec![0.0f32; n * n];
        for i in 0..n {
            vals[i * n + i] = 1.0;
        }
        self.make_tensor(TensorData::F32(vals), Shape::new(vec![n, n]), DType::F32)
    }

    /// Uniform random tensor in `[min, max)`, seeded for reproducibility.
    ///
    /// # Errors
    /// Fails when `min >= max`.
    pub fn rand_uniform(
        &self,
        shape: impl Into<Shape>,
        min: f32,
        max: f32,
        seed: u64,
    ) -> Result<Tensor> {
        if min >= max {
            return Err(Error::invalid("randUniform", "min must be < max"));
        }
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let vals: Vec<f32> = (0..shape.size()).map(|_| rng.gen::<f32>() * (max - min) + min).collect();
        self.make_tensor(TensorData::F32(vals), shape, DType::F32)
    }

    /// Normal random tensor (Box–Muller), seeded for reproducibility.
    ///
    /// # Errors
    /// Fails when `std < 0`.
    pub fn rand_normal(
        &self,
        shape: impl Into<Shape>,
        mean: f32,
        std: f32,
        seed: u64,
    ) -> Result<Tensor> {
        if std < 0.0 {
            return Err(Error::invalid("randNormal", "std must be non-negative"));
        }
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = normal_values(&mut rng, shape.size(), mean, std, false);
        self.make_tensor(TensorData::F32(vals), shape, DType::F32)
    }

    /// Normal random tensor with samples beyond 2 std re-drawn
    /// (`tf.truncatedNormal`), the initializer default in Keras.
    ///
    /// # Errors
    /// Fails when `std < 0`.
    pub fn truncated_normal(
        &self,
        shape: impl Into<Shape>,
        mean: f32,
        std: f32,
        seed: u64,
    ) -> Result<Tensor> {
        if std < 0.0 {
            return Err(Error::invalid("truncatedNormal", "std must be non-negative"));
        }
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = normal_values(&mut rng, shape.size(), mean, std, true);
        self.make_tensor(TensorData::F32(vals), shape, DType::F32)
    }

    /// One-hot encode `indices` (an I32 tensor) with a trailing `depth` dim.
    ///
    /// # Errors
    /// Fails when `indices` is disposed.
    pub fn one_hot(&self, indices: &Tensor, depth: usize) -> Result<Tensor> {
        let mut out_dims = indices.shape().0;
        out_dims.push(depth);
        let out_shape = Shape::new(out_dims);
        let outs = self.run_kernel(
            "OneHot",
            &[indices],
            &mut |backend, ins| {
                let id = backend.one_hot(&ins[0], depth, 1.0, 0.0)?;
                Ok(vec![(id, out_shape.clone(), DType::F32)])
            },
            None,
        )?;
        Ok(outs.into_iter().next().expect("one output"))
    }
}

/// Generate `n` normal samples; truncated resamples beyond 2 sigma.
fn normal_values(rng: &mut StdRng, n: usize, mean: f32, std: f32, truncated: bool) -> Vec<f32> {
    let mut vals = Vec::with_capacity(n);
    while vals.len() < n {
        // Box–Muller transform.
        let u1: f32 = rng.gen::<f32>().max(1e-12);
        let u2: f32 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        for z in [r * theta.cos(), r * theta.sin()] {
            if vals.len() < n && (!truncated || z.abs() <= 2.0) {
                vals.push(mean + std * z);
            }
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::super::testutil::test_engine;
    use crate::dtype::DType;
    use crate::shape::Shape;

    #[test]
    fn tensor_shape_validation() {
        let e = test_engine();
        assert!(e.tensor(vec![1.0f32, 2.0], [3]).is_err());
        let t = e.tensor(vec![1.0f32, 2.0], [2]).unwrap();
        assert_eq!(t.shape(), Shape::new(vec![2]));
    }

    #[test]
    fn zeros_and_ones() {
        let e = test_engine();
        let z = e.zeros([2, 2], DType::F32).unwrap();
        assert_eq!(z.to_f32_vec().unwrap(), vec![0.0; 4]);
        let o = e.ones([3], DType::I32).unwrap();
        assert_eq!(o.to_i32_vec().unwrap(), vec![1, 1, 1]);
        assert_eq!(o.dtype(), DType::I32);
    }

    #[test]
    fn linspace_endpoints() {
        let e = test_engine();
        let t = e.linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(t.to_f32_vec().unwrap(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert!(e.linspace(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn range_directions() {
        let e = test_engine();
        assert_eq!(e.range(0, 5, 2).unwrap().to_i32_vec().unwrap(), vec![0, 2, 4]);
        assert_eq!(e.range(5, 0, -2).unwrap().to_i32_vec().unwrap(), vec![5, 3, 1]);
        assert!(e.range(0, 5, 0).is_err());
    }

    #[test]
    fn eye_diagonal() {
        let e = test_engine();
        let t = e.eye(3).unwrap();
        assert_eq!(t.to_f32_vec().unwrap(), vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
    }

    #[test]
    fn rand_uniform_bounds_and_determinism() {
        let e = test_engine();
        let a = e.rand_uniform([100], -1.0, 1.0, 42).unwrap().to_f32_vec().unwrap();
        let b = e.rand_uniform([100], -1.0, 1.0, 42).unwrap().to_f32_vec().unwrap();
        assert_eq!(a, b, "same seed must reproduce");
        assert!(a.iter().all(|&v| (-1.0..1.0).contains(&v)));
        let c = e.rand_uniform([100], -1.0, 1.0, 43).unwrap().to_f32_vec().unwrap();
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn rand_normal_moments() {
        let e = test_engine();
        let v = e.rand_normal([10_000], 2.0, 0.5, 7).unwrap().to_f32_vec().unwrap();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn truncated_normal_is_bounded() {
        let e = test_engine();
        let v = e.truncated_normal([10_000], 0.0, 1.0, 3).unwrap().to_f32_vec().unwrap();
        assert!(v.iter().all(|&x| x.abs() <= 2.0));
    }

    #[test]
    fn one_hot_encodes() {
        let e = test_engine();
        let ix = e.tensor(vec![1i32, 0], [2]).unwrap();
        let oh = e.one_hot(&ix, 3).unwrap();
        assert_eq!(oh.shape(), Shape::new(vec![2, 3]));
        assert_eq!(oh.to_f32_vec().unwrap(), vec![0., 1., 0., 1., 0., 0.]);
    }
}
