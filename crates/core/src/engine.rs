//! The eager execution engine.
//!
//! The engine owns backend registration, the tensor/data registries with
//! reference counting (paper Sec 3.4), memory scopes for `tidy()` (Sec 3.7),
//! the gradient tape (Sec 3.5), and the profiling/debugging hooks (Sec 3.8).

use crate::backend::{Backend, BackendMemory, DataId, KTensor, KernelTiming};
use crate::dtype::{DType, TensorData};
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tape::{GradFn, Tape, TapeNode};
use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How tensor memory is reclaimed.
///
/// The paper contrasts the browser (no finalization: manual `dispose()` /
/// `tidy()`, Sec 3.7) with Node.js (V8 finalization frees memory
/// automatically, Sec 4.2). [`MemoryPolicy::Manual`] reproduces browser
/// semantics — dropping a [`Tensor`] handle does *not* free its memory;
/// [`MemoryPolicy::Finalized`] reproduces Node semantics — the last handle
/// drop disposes the tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPolicy {
    /// Browser-like: only `dispose()`/`tidy()` free memory. Forgetting them
    /// leaks, exactly as in WebGL TensorFlow.js.
    Manual,
    /// Node-like: dropping the last handle frees the tensor.
    Finalized,
}

/// Engine-level memory snapshot (`tf.memory()`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryInfo {
    /// Number of live (undisposed) tensors.
    pub num_tensors: usize,
    /// Number of live data containers (shared by shallow copies).
    pub num_data_buffers: usize,
    /// Total bytes across live containers.
    pub num_bytes: usize,
    /// Backend-specific gauges.
    pub backend: BackendMemory,
    /// Times the engine abandoned a failing backend for a lower-priority
    /// one (graceful degradation).
    pub degradations: u64,
    /// Name of the backend currently serving kernels.
    pub current_backend: String,
}

/// One graceful-degradation event: a kernel abandoned a failing backend and
/// the engine fell back to the next backend in the priority chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    /// Kernel that was executing when the backend failed.
    pub kernel: &'static str,
    /// Backend that failed.
    pub from_backend: String,
    /// Backend the engine fell back to.
    pub to_backend: String,
    /// Display form of the error that triggered the fallback.
    pub reason: String,
}

/// Bounded in-place retries of a transient kernel failure before the engine
/// degrades to the next backend.
const MAX_TRANSIENT_ATTEMPTS: u32 = 3;

/// Bounded retries of a transient data read (migration or `dataSync`).
const MAX_READ_ATTEMPTS: u32 = 4;

/// Exponential backoff schedule for transient retries (bounded; the last
/// attempt waits under a millisecond, keeping kernels responsive).
fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_micros(100u64 << attempt.min(4))
}

/// Per-kernel profile entry (paper Sec 3.8: "users can profile every kernel
/// that gets called, seeing the output shape, memory footprint, as well as
/// device-specific timing information").
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: &'static str,
    /// Wall-clock milliseconds spent in the kernel call.
    pub wall_ms: f64,
    /// Shapes of the outputs.
    pub output_shapes: Vec<Shape>,
    /// Bytes allocated for the outputs.
    pub bytes_added: usize,
}

/// Result of [`Engine::profile`] (`tf.profile(f)`).
#[derive(Debug, Clone, Default)]
pub struct ProfileInfo {
    /// Tensors newly allocated while running the function.
    pub new_tensors: usize,
    /// Bytes newly allocated while running the function.
    pub new_bytes: usize,
    /// Peak live tensor count inside the function.
    pub peak_tensors: usize,
    /// Peak live bytes inside the function.
    pub peak_bytes: usize,
    /// Every kernel invocation, in order.
    pub kernels: Vec<KernelProfile>,
}

/// Result of [`Engine::time`] (`tf.time(f)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeInfo {
    /// Wall-clock milliseconds for the whole function, including scheduling.
    pub wall_ms: f64,
    /// Device kernel milliseconds as reported by the backend (on the webgl
    /// backend this is pure GPU time, excluding upload/download).
    pub kernel_ms: f64,
}

struct ProfileState {
    new_tensors: usize,
    new_bytes: usize,
    peak_tensors: usize,
    peak_bytes: usize,
    kernels: Vec<KernelProfile>,
}

pub(crate) struct DataRecord {
    backend_name: String,
    id: DataId,
    refcount: usize,
    bytes: usize,
    dtype: DType,
}

pub(crate) struct TensorRecord {
    data: u64,
    kept: bool,
    variable: bool,
    scope: Option<usize>,
}

struct Scope {
    id: usize,
    name: &'static str,
    tensors: Vec<usize>,
}

struct EngineState {
    backends: Vec<(String, i32, Arc<dyn Backend>)>,
    current_backend: Option<usize>,
    tensors: HashMap<usize, TensorRecord>,
    data: HashMap<u64, DataRecord>,
    scopes: Vec<Scope>,
    next_scope_id: usize,
    tape_stack: Vec<Tape>,
    recording_paused: bool,
    kept_by_tape: HashSet<usize>,
    profile: Option<ProfileState>,
    debug: bool,
    num_bytes: usize,
    degradations: u64,
    degradation_log: Vec<DegradationEvent>,
}

/// The eager execution engine. Cheap to clone (`Arc` internally); usually
/// accessed through [`crate::global::engine`] the way `tf` is the global
/// namespace in TensorFlow.js.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    state: Mutex<EngineState>,
    garbage: Mutex<Vec<usize>>,
    next_data_handle: AtomicU64,
    next_tensor_id: AtomicUsize,
    policy: AtomicU8,
    fusion_enabled: AtomicBool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Engine")
            .field("num_tensors", &state.tensors.len())
            .field("num_bytes", &state.num_bytes)
            .field(
                "backend",
                &state.current_backend.map(|i| state.backends[i].0.clone()),
            )
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl PartialEq for Engine {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Engine {
    /// Create an engine with no backends registered.
    pub fn new() -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                state: Mutex::new(EngineState {
                    backends: Vec::new(),
                    current_backend: None,
                    tensors: HashMap::new(),
                    data: HashMap::new(),
                    scopes: Vec::new(),
                    next_scope_id: 0,
                    tape_stack: Vec::new(),
                    recording_paused: false,
                    kept_by_tape: HashSet::new(),
                    profile: None,
                    debug: false,
                    num_bytes: 0,
                    degradations: 0,
                    degradation_log: Vec::new(),
                }),
                garbage: Mutex::new(Vec::new()),
                next_data_handle: AtomicU64::new(1),
                next_tensor_id: AtomicUsize::new(1),
                policy: AtomicU8::new(0), // Manual
                fusion_enabled: AtomicBool::new(true),
            }),
        }
    }

    /// Enable or disable kernel fusion. When disabled, the `ops::fused_*`
    /// family always runs the unfused kernel composition — useful for
    /// fused-vs-unfused benchmark comparisons and bitwise-equality tests.
    pub fn set_fusion_enabled(&self, enabled: bool) {
        self.inner.fusion_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether fused kernels are dispatched (default true).
    pub fn fusion_enabled(&self) -> bool {
        self.inner.fusion_enabled.load(Ordering::Relaxed)
    }

    // --- backends ----------------------------------------------------------

    /// Register a backend under `name`. The highest-priority backend becomes
    /// the default, mirroring `tf.registerBackend` semantics.
    pub fn register_backend(&self, name: impl Into<String>, backend: Arc<dyn Backend>, priority: i32) {
        let name = name.into();
        let mut state = self.inner.state.lock();
        state.backends.retain(|(n, _, _)| n != &name);
        state.backends.push((name, priority, backend));
        // Default to the highest priority backend.
        let best = state
            .backends
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, p, _))| *p)
            .map(|(i, _)| i);
        state.current_backend = best;
    }

    /// Switch the active backend by name.
    ///
    /// # Errors
    /// [`Error::UnknownBackend`] when no backend has that name.
    pub fn set_backend(&self, name: &str) -> Result<()> {
        let mut state = self.inner.state.lock();
        match state.backends.iter().position(|(n, _, _)| n == name) {
            Some(i) => {
                state.current_backend = Some(i);
                Ok(())
            }
            None => Err(Error::UnknownBackend { name: name.to_string() }),
        }
    }

    /// Name of the active backend.
    ///
    /// # Panics
    /// Panics if no backend is registered.
    pub fn backend_name(&self) -> String {
        let state = self.inner.state.lock();
        let i = state.current_backend.expect("no backend registered");
        state.backends[i].0.clone()
    }

    /// Names of all registered backends.
    pub fn backend_names(&self) -> Vec<String> {
        let state = self.inner.state.lock();
        state.backends.iter().map(|(n, _, _)| n.clone()).collect()
    }

    /// Handle to the active backend.
    ///
    /// # Panics
    /// Panics if no backend is registered.
    pub fn backend(&self) -> Arc<dyn Backend> {
        let state = self.inner.state.lock();
        let i = state.current_backend.expect("no backend registered");
        state.backends[i].2.clone()
    }

    fn backend_by_name(state: &EngineState, name: &str) -> Arc<dyn Backend> {
        state
            .backends
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, b)| b.clone())
            .expect("backend of live data must stay registered")
    }

    /// Smallest safely representable positive value on the active backend
    /// (paper Sec 4.1.3: adjusted for 16-bit-float devices).
    pub fn epsilon(&self) -> f32 {
        self.backend().epsilon()
    }

    // --- memory policy -----------------------------------------------------

    /// Set how memory is reclaimed (browser-manual vs node-finalized).
    pub fn set_memory_policy(&self, policy: MemoryPolicy) {
        let v = match policy {
            MemoryPolicy::Manual => 0,
            MemoryPolicy::Finalized => 1,
        };
        self.inner.policy.store(v, Ordering::SeqCst);
    }

    /// The active memory policy.
    pub fn memory_policy(&self) -> MemoryPolicy {
        match self.inner.policy.load(Ordering::SeqCst) {
            0 => MemoryPolicy::Manual,
            _ => MemoryPolicy::Finalized,
        }
    }

    pub(crate) fn enqueue_garbage(&self, tensor_id: usize) {
        self.inner.garbage.lock().push(tensor_id);
    }

    fn collect_garbage(&self, state: &mut EngineState) {
        let ids: Vec<usize> = std::mem::take(&mut *self.inner.garbage.lock());
        for id in ids {
            Self::dispose_tensor_locked(state, id);
        }
    }

    // --- tensor/data registry ----------------------------------------------

    fn fresh_tensor_id(&self) -> usize {
        self.inner.next_tensor_id.fetch_add(1, Ordering::Relaxed)
    }

    fn fresh_data_handle(&self) -> u64 {
        self.inner.next_data_handle.fetch_add(1, Ordering::Relaxed)
    }

    fn register_tensor_locked(
        &self,
        state: &mut EngineState,
        data_handle: u64,
        shape: Shape,
        dtype: DType,
    ) -> Tensor {
        let id = self.fresh_tensor_id();
        let scope = state.scopes.last().map(|s| s.id);
        if let Some(s) = state.scopes.last_mut() {
            s.tensors.push(id);
        }
        state.tensors.insert(
            id,
            TensorRecord { data: data_handle, kept: false, variable: false, scope },
        );
        if let Some(p) = state.profile.as_mut() {
            p.new_tensors += 1;
            p.peak_tensors = p.peak_tensors.max(state.tensors.len());
        }
        Tensor::from_parts(self.clone(), id, shape, dtype)
    }

    fn register_data_locked(
        &self,
        state: &mut EngineState,
        backend_name: String,
        id: DataId,
        bytes: usize,
        dtype: DType,
    ) -> u64 {
        let handle = self.fresh_data_handle();
        state.data.insert(handle, DataRecord { backend_name, id, refcount: 1, bytes, dtype });
        state.num_bytes += bytes;
        if let Some(p) = state.profile.as_mut() {
            p.new_bytes += bytes;
            p.peak_bytes = p.peak_bytes.max(state.num_bytes);
        }
        handle
    }

    /// Create a tensor from host data on the active backend.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `data.len() != shape.size()`.
    pub fn make_tensor(&self, data: TensorData, shape: Shape, dtype: DType) -> Result<Tensor> {
        if data.len() != shape.size() {
            return Err(Error::invalid(
                "tensor",
                format!("data length {} does not match shape {} (size {})", data.len(), shape, shape.size()),
            ));
        }
        let data = data.cast(dtype);
        let bytes = shape.size() * dtype.byte_size();
        let mut state = self.inner.state.lock();
        self.collect_garbage(&mut state);
        // Record the *registry* name, not `backend.name()`: the same backend
        // implementation can be registered under several names (and the data
        // must follow the registration it actually lives on).
        let i = state
            .current_backend
            .ok_or_else(|| Error::UnknownBackend { name: "<none>".into() })?;
        let backend = state.backends[i].2.clone();
        let backend_name = state.backends[i].0.clone();
        let id = backend.register(data, dtype);
        let handle = self.register_data_locked(&mut state, backend_name, id, bytes, dtype);
        Ok(self.register_tensor_locked(&mut state, handle, shape, dtype))
    }

    /// Create a new tensor that shares the data of `t` under a new shape —
    /// the free `reshape`/`clone` of paper Sec 3.4. Records a tape node when
    /// a gradient function is supplied and a tape is active.
    ///
    /// # Errors
    /// Fails when `t` is disposed or the element counts differ.
    pub fn run_alias(
        &self,
        kernel: &'static str,
        t: &Tensor,
        new_shape: Shape,
        grad: Option<GradFn>,
    ) -> Result<Tensor> {
        if t.shape().size() != new_shape.size() {
            return Err(Error::shape(
                kernel,
                format!("cannot view {} as {} (different sizes)", t.shape(), new_shape),
            ));
        }
        let mut state = self.inner.state.lock();
        self.collect_garbage(&mut state);
        let data_handle = {
            let rec = state
                .tensors
                .get(&t.id())
                .ok_or(Error::TensorDisposed { tensor_id: t.id() })?;
            rec.data
        };
        state.data.get_mut(&data_handle).expect("live tensor has data").refcount += 1;
        let dtype = t.dtype();
        let out = self.register_tensor_locked(&mut state, data_handle, new_shape, dtype);
        if let Some(grad_fn) = grad {
            Self::maybe_record_locked(&mut state, kernel, &[t], std::slice::from_ref(&out), grad_fn);
        }
        drop(state);
        Ok(out)
    }

    fn maybe_record_locked(
        state: &mut EngineState,
        kernel: &'static str,
        inputs: &[&Tensor],
        outputs: &[Tensor],
        grad_fn: GradFn,
    ) {
        if state.tape_stack.is_empty() || state.recording_paused {
            return;
        }
        let node = TapeNode {
            kernel,
            input_ids: inputs.iter().map(|t| t.id()).collect(),
            output_ids: outputs.iter().map(|t| t.id()).collect(),
            inputs: inputs.iter().map(|&t| t.clone()).collect(),
            outputs: outputs.to_vec(),
            grad_fn,
        };
        for t in inputs {
            state.kept_by_tape.insert(t.id());
        }
        for t in outputs {
            state.kept_by_tape.insert(t.id());
        }
        state.tape_stack.last_mut().expect("tape active").record(node);
    }

    /// Run a kernel: validate inputs, execute `forward` on the active
    /// backend, register outputs, and record a tape node when differentiable
    /// and a gradient scope is active.
    ///
    /// This is the single funnel every op goes through; profiling, the
    /// NaN-debug mode (paper Sec 3.8), and the fault-recovery policy hook
    /// in here. On a transient backend failure the kernel is retried in
    /// place with bounded exponential backoff; on context loss — or when
    /// retries are exhausted, or the backend cannot run the kernel at all —
    /// the engine *degrades*: it switches to the next backend in the
    /// priority chain and re-dispatches. The input-migration step at the
    /// top of the funnel then re-uploads the tensors' data from the failing
    /// backend's host-side copies, so no data is lost and callers only
    /// observe a [`DegradationEvent`] instead of an error.
    ///
    /// # Errors
    /// Propagates disposed-tensor, NaN-debug, and non-degradable backend
    /// errors, plus degradable errors once no lower-priority backend is
    /// left to fall back to.
    #[allow(clippy::type_complexity)] // the documented kernel funnel signature
    pub fn run_kernel(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        forward: &mut dyn FnMut(&dyn Backend, &[KTensor<'_>]) -> Result<Vec<(DataId, Shape, DType)>>,
        grad: Option<GradFn>,
    ) -> Result<Vec<Tensor>> {
        // Transient in-place retries against the current backend; reset on
        // every degradation so a fresh backend gets its full budget.
        let mut attempts: u32 = 0;
        loop {
            // Phase 1 (locked): validate inputs, migrate cross-backend data,
            // pin input data so a concurrent dispose cannot free it
            // mid-kernel.
            let (backend, backend_name, input_data, debug, profiling) = {
                let mut state = self.inner.state.lock();
                self.collect_garbage(&mut state);
                let i = state
                    .current_backend
                    .ok_or_else(|| Error::UnknownBackend { name: "<none>".into() })?;
                let backend = state.backends[i].2.clone();
                let backend_name = state.backends[i].0.clone();
                let mut input_data = Vec::with_capacity(inputs.len());
                for t in inputs {
                    let data_handle = state
                        .tensors
                        .get(&t.id())
                        .ok_or(Error::TensorDisposed { tensor_id: t.id() })?
                        .data;
                    // Migrate data living on another backend (lazy movement
                    // on first use, like tfjs `moveData`). After a
                    // degradation this is the recovery path: the read serves
                    // the failed backend's host-side copies.
                    let needs_move = state.data[&data_handle].backend_name != backend_name;
                    if needs_move {
                        let (old_backend, old_id, dtype) = {
                            let rec = &state.data[&data_handle];
                            (Self::backend_by_name(&state, &rec.backend_name), rec.id, rec.dtype)
                        };
                        let host = Self::read_sync_with_retry(old_backend.as_ref(), old_id)?;
                        old_backend.dispose_data(old_id);
                        let new_id = backend.register(host, dtype);
                        let rec = state.data.get_mut(&data_handle).expect("live data");
                        rec.backend_name = backend_name.clone();
                        rec.id = new_id;
                    }
                    let rec = state.data.get_mut(&data_handle).expect("live data");
                    rec.refcount += 1; // pin
                    input_data.push((data_handle, rec.id));
                }
                (backend, backend_name, input_data, state.debug, state.profile.is_some())
            };

            // Phase 2 (unlocked): run the kernel.
            let ktensors: Vec<KTensor<'_>> = inputs
                .iter()
                .zip(&input_data)
                .map(|(t, (_, id))| KTensor { data: *id, shape: t.shape_ref(), dtype: t.dtype() })
                .collect();
            let t0 = Instant::now();
            let result = forward(backend.as_ref(), &ktensors);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

            // NaN-debug mode: download every output and fail at the first
            // NaN, naming the kernel (paper Sec 3.8).
            if debug {
                if let Ok(outs) = &result {
                    for (id, _, dtype) in outs {
                        if dtype.is_float() && backend.read_sync(*id)?.has_nan() {
                            // Clean up the outputs we won't register.
                            for (oid, _, _) in outs {
                                backend.dispose_data(*oid);
                            }
                            self.unpin(&input_data);
                            return Err(Error::NanDetected { kernel });
                        }
                    }
                }
            }

            // Phase 3 (locked): unpin inputs, register outputs, record tape.
            let mut state = self.inner.state.lock();
            for (handle, _) in &input_data {
                Self::release_data_locked(&mut state, *handle);
            }
            let outs = match result {
                Ok(outs) => outs,
                Err(e) => {
                    drop(state);
                    // Context loss cannot heal by itself, so it skips the
                    // in-place retries and degrades immediately.
                    let retryable = e.is_transient() && !matches!(e, Error::ContextLost { .. });
                    if retryable && attempts + 1 < MAX_TRANSIENT_ATTEMPTS {
                        attempts += 1;
                        std::thread::sleep(backoff_delay(attempts));
                        continue;
                    }
                    if e.is_degradable() && self.try_degrade(kernel, &backend_name, &e) {
                        attempts = 0;
                        continue;
                    }
                    return Err(e);
                }
            };
            let mut outputs = Vec::with_capacity(outs.len());
            let mut bytes_added = 0;
            let mut output_shapes = Vec::with_capacity(outs.len());
            for (id, shape, dtype) in outs {
                let bytes = shape.size() * dtype.byte_size();
                bytes_added += bytes;
                output_shapes.push(shape.clone());
                let handle =
                    self.register_data_locked(&mut state, backend_name.clone(), id, bytes, dtype);
                outputs.push(self.register_tensor_locked(&mut state, handle, shape, dtype));
            }
            if profiling {
                if let Some(p) = state.profile.as_mut() {
                    p.kernels.push(KernelProfile { name: kernel, wall_ms, output_shapes, bytes_added });
                }
            }
            if let Some(grad_fn) = grad {
                Self::maybe_record_locked(&mut state, kernel, inputs, &outputs, grad_fn);
            }
            drop(state);
            return Ok(outputs);
        }
    }

    /// Switch `current_backend` to the highest-priority backend strictly
    /// below the failing one, recording a [`DegradationEvent`]. Returns
    /// whether a fallback target exists. When another thread already
    /// degraded away from `failed_backend`, no event is recorded and the
    /// caller simply retries on the new backend.
    fn try_degrade(&self, kernel: &'static str, failed_backend: &str, err: &Error) -> bool {
        let mut state = self.inner.state.lock();
        let cur = match state.current_backend {
            Some(i) => i,
            None => return false,
        };
        if state.backends[cur].0 != failed_backend {
            return true;
        }
        let cur_priority = state.backends[cur].1;
        let next = state
            .backends
            .iter()
            .enumerate()
            .filter(|(_, (n, p, _))| *p < cur_priority && n != failed_backend)
            .max_by_key(|(_, (_, p, _))| *p)
            .map(|(i, _)| i);
        match next {
            Some(i) => {
                let event = DegradationEvent {
                    kernel,
                    from_backend: failed_backend.to_string(),
                    to_backend: state.backends[i].0.clone(),
                    reason: err.to_string(),
                };
                state.current_backend = Some(i);
                state.degradations += 1;
                state.degradation_log.push(event);
                true
            }
            None => false,
        }
    }

    /// Read from a backend, retrying transient failures (e.g. an injected
    /// readback fault) with bounded backoff. Context loss is not retried:
    /// backends keep host-side copies readable across a loss.
    fn read_sync_with_retry(backend: &dyn Backend, id: DataId) -> Result<TensorData> {
        let mut attempt = 0;
        loop {
            match backend.read_sync(id) {
                Err(ref e) if e.is_transient() && attempt + 1 < MAX_READ_ATTEMPTS => {
                    attempt += 1;
                    std::thread::sleep(backoff_delay(attempt));
                }
                other => return other,
            }
        }
    }

    /// Times the engine abandoned a failing backend for a lower-priority
    /// one (graceful degradation) over its lifetime.
    pub fn degradations(&self) -> u64 {
        self.inner.state.lock().degradations
    }

    /// The full degradation event log, oldest first.
    pub fn degradation_events(&self) -> Vec<DegradationEvent> {
        self.inner.state.lock().degradation_log.clone()
    }

    /// Run a *composite* op with a user-supplied gradient (`tf.customGrad`):
    /// `forward` computes the outputs using ordinary ops, but those inner
    /// ops are not recorded — instead a single tape node with `grad_fn` is,
    /// so backprop treats the whole composite as one differentiable unit.
    ///
    /// Useful for numerically better gradients than the composed ones
    /// (e.g. fused softmax-cross-entropy) and for gradient overrides.
    ///
    /// # Errors
    /// Propagates errors from `forward`.
    pub fn run_custom(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        forward: impl FnOnce() -> Result<Vec<Tensor>>,
        grad: GradFn,
    ) -> Result<Vec<Tensor>> {
        let outputs = self.pause_recording(forward)?;
        let mut state = self.inner.state.lock();
        Self::maybe_record_locked(&mut state, kernel, inputs, &outputs, grad);
        drop(state);
        Ok(outputs)
    }

    fn unpin(&self, input_data: &[(u64, DataId)]) {
        let mut state = self.inner.state.lock();
        for (handle, _) in input_data {
            Self::release_data_locked(&mut state, *handle);
        }
    }

    fn release_data_locked(state: &mut EngineState, handle: u64) {
        let dispose = {
            let rec = state.data.get_mut(&handle).expect("pinned data exists");
            rec.refcount -= 1;
            rec.refcount == 0
        };
        if dispose {
            let rec = state.data.remove(&handle).expect("checked above");
            state.num_bytes -= rec.bytes;
            let backend = Self::backend_by_name(state, &rec.backend_name);
            backend.dispose_data(rec.id);
        }
    }

    // --- reads -------------------------------------------------------------

    pub(crate) fn read_sync(&self, tensor_id: usize) -> Result<TensorData> {
        let (backend, id) = {
            let state = self.inner.state.lock();
            let rec = state
                .tensors
                .get(&tensor_id)
                .ok_or(Error::TensorDisposed { tensor_id })?;
            let data = &state.data[&rec.data];
            (Self::backend_by_name(&state, &data.backend_name), data.id)
        };
        Self::read_sync_with_retry(backend.as_ref(), id)
    }

    pub(crate) fn read(&self, tensor_id: usize) -> Result<crate::backend::DataFuture> {
        let (backend, id) = {
            let state = self.inner.state.lock();
            let rec = state
                .tensors
                .get(&tensor_id)
                .ok_or(Error::TensorDisposed { tensor_id })?;
            let data = &state.data[&rec.data];
            (Self::backend_by_name(&state, &data.backend_name), data.id)
        };
        Ok(backend.read(id))
    }

    pub(crate) fn is_disposed(&self, tensor_id: usize) -> bool {
        !self.inner.state.lock().tensors.contains_key(&tensor_id)
    }

    // --- disposal, keep, scopes ---------------------------------------------

    fn dispose_tensor_locked(state: &mut EngineState, tensor_id: usize) {
        if let Some(rec) = state.tensors.remove(&tensor_id) {
            Self::release_data_locked(state, rec.data);
        }
    }

    /// Dispose a tensor explicitly (`tensor.dispose()`). Idempotent.
    pub fn dispose_tensor(&self, tensor_id: usize) {
        let mut state = self.inner.state.lock();
        Self::dispose_tensor_locked(&mut state, tensor_id);
    }

    /// Mark a tensor as kept: it survives all enclosing `tidy` scopes
    /// (`tf.keep`).
    pub fn keep(&self, tensor_id: usize) {
        let mut state = self.inner.state.lock();
        if let Some(rec) = state.tensors.get_mut(&tensor_id) {
            rec.kept = true;
        }
    }

    pub(crate) fn mark_variable(&self, tensor_id: usize) {
        let mut state = self.inner.state.lock();
        if let Some(rec) = state.tensors.get_mut(&tensor_id) {
            rec.variable = true;
            rec.kept = true;
        }
    }

    /// Push a named memory scope. Prefer [`Engine::tidy`].
    pub fn start_scope(&self, name: &'static str) {
        let mut state = self.inner.state.lock();
        let id = state.next_scope_id;
        state.next_scope_id += 1;
        state.scopes.push(Scope { id, name, tensors: Vec::new() });
    }

    /// Pop the current scope, disposing every tensor allocated inside it
    /// except kept tensors, variables, tape-referenced tensors, and the ids
    /// in `keep_ids` (which move to the parent scope).
    pub fn end_scope(&self, keep_ids: &[usize]) {
        let mut state = self.inner.state.lock();
        self.collect_garbage(&mut state);
        let scope = match state.scopes.pop() {
            Some(s) => s,
            None => return,
        };
        let parent = state.scopes.last().map(|s| s.id);
        let mut to_dispose = Vec::new();
        let mut to_parent = Vec::new();
        for id in scope.tensors {
            let rec = match state.tensors.get(&id) {
                Some(r) => r,
                None => continue, // already disposed
            };
            // Tensors may have been re-homed (kept) since creation.
            if rec.scope != Some(scope.id) {
                continue;
            }
            let survive =
                rec.kept || rec.variable || keep_ids.contains(&id) || state.kept_by_tape.contains(&id);
            if survive {
                to_parent.push(id);
            } else {
                to_dispose.push(id);
            }
        }
        for id in to_parent {
            if let Some(rec) = state.tensors.get_mut(&id) {
                rec.scope = parent;
            }
            if let Some(p) = state.scopes.last_mut() {
                p.tensors.push(id);
            }
        }
        for id in to_dispose {
            Self::dispose_tensor_locked(&mut state, id);
        }
        let _ = scope.name;
    }

    /// Execute `f` inside a memory scope and dispose every intermediate
    /// tensor it allocated, except those referenced by the return value —
    /// `tf.tidy()` (paper Sec 3.7).
    pub fn tidy<R: TidyOutput>(&self, f: impl FnOnce() -> R) -> R {
        self.start_scope("tidy");
        let out = f();
        self.end_scope(&out.tensor_ids());
        out
    }

    // --- tape --------------------------------------------------------------

    pub(crate) fn push_tape(&self) {
        self.inner.state.lock().tape_stack.push(Tape::new());
    }

    /// Pop the active tape. Clears the tape-keep set when the stack empties.
    pub(crate) fn pop_tape(&self) -> Tape {
        let (tape, _leftover): (Tape, Vec<usize>) = {
            let mut state = self.inner.state.lock();
            let tape = state.tape_stack.pop().expect("tape stack underflow");
            let leftover = if state.tape_stack.is_empty() {
                state.kept_by_tape.drain().collect()
            } else {
                Vec::new()
            };
            (tape, leftover)
        };
        // Tape node drops (and the saved tensor handle drops inside) happen
        // here, outside the state lock, via the caller dropping `tape`.
        tape
    }

    pub(crate) fn pause_recording<R>(&self, f: impl FnOnce() -> R) -> R {
        {
            self.inner.state.lock().recording_paused = true;
        }
        let r = f();
        {
            self.inner.state.lock().recording_paused = false;
        }
        r
    }

    #[allow(dead_code)] // diagnostic helper for composite ops
    pub(crate) fn tape_active(&self) -> bool {
        let state = self.inner.state.lock();
        !state.tape_stack.is_empty() && !state.recording_paused
    }

    // --- diagnostics ---------------------------------------------------------

    /// Engine-plus-backend memory snapshot (`tf.memory()`).
    pub fn memory(&self) -> MemoryInfo {
        let backend = self.backend();
        let mut state = self.inner.state.lock();
        self.collect_garbage(&mut state);
        MemoryInfo {
            num_tensors: state.tensors.len(),
            num_data_buffers: state.data.len(),
            num_bytes: state.num_bytes,
            backend: backend.memory(),
            degradations: state.degradations,
            current_backend: state
                .current_backend
                .map(|i| state.backends[i].0.clone())
                .unwrap_or_default(),
        }
    }

    /// Count of live tensors (`tf.memory().numTensors`).
    pub fn num_tensors(&self) -> usize {
        let mut state = self.inner.state.lock();
        self.collect_garbage(&mut state);
        state.tensors.len()
    }

    /// Enable or disable NaN-checking debug mode (paper Sec 3.8).
    pub fn set_debug(&self, on: bool) {
        self.inner.state.lock().debug = on;
    }

    /// Whether NaN-checking debug mode is on.
    pub fn debug(&self) -> bool {
        self.inner.state.lock().debug
    }

    /// Profile the memory and kernel behaviour of `f` (`tf.profile`).
    pub fn profile<R>(&self, f: impl FnOnce() -> R) -> (R, ProfileInfo) {
        {
            let mut state = self.inner.state.lock();
            state.profile = Some(ProfileState {
                new_tensors: 0,
                new_bytes: 0,
                peak_tensors: state.tensors.len(),
                peak_bytes: state.num_bytes,
                kernels: Vec::new(),
            });
        }
        let r = f();
        let p = {
            let mut state = self.inner.state.lock();
            state.profile.take().expect("profile state set above")
        };
        (
            r,
            ProfileInfo {
                new_tensors: p.new_tensors,
                new_bytes: p.new_bytes,
                peak_tensors: p.peak_tensors,
                peak_bytes: p.peak_bytes,
                kernels: p.kernels,
            },
        )
    }

    /// Time `f`, reporting wall time and backend kernel time (`tf.time`).
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> (R, TimeInfo) {
        let backend = self.backend();
        backend.begin_timing();
        let t0 = Instant::now();
        let r = f();
        let KernelTiming { kernel_ms } = backend.end_timing();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (r, TimeInfo { wall_ms, kernel_ms })
    }
}

/// Types that can be returned from [`Engine::tidy`]: the engine must be able
/// to see which tensors the return value references so it can keep them.
pub trait TidyOutput {
    /// Ids of the tensors referenced by this value.
    fn tensor_ids(&self) -> Vec<usize>;
}

impl TidyOutput for () {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for Tensor {
    fn tensor_ids(&self) -> Vec<usize> {
        vec![self.id()]
    }
}

impl TidyOutput for Vec<Tensor> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.iter().map(|t| t.id()).collect()
    }
}

impl<const N: usize> TidyOutput for [Tensor; N] {
    fn tensor_ids(&self) -> Vec<usize> {
        self.iter().map(|t| t.id()).collect()
    }
}

impl<T: TidyOutput> TidyOutput for Option<T> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.as_ref().map(|t| t.tensor_ids()).unwrap_or_default()
    }
}

impl<T: TidyOutput> TidyOutput for Result<T> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.as_ref().map(|t| t.tensor_ids()).unwrap_or_default()
    }
}

impl<A: TidyOutput, B: TidyOutput> TidyOutput for (A, B) {
    fn tensor_ids(&self) -> Vec<usize> {
        let mut v = self.0.tensor_ids();
        v.extend(self.1.tensor_ids());
        v
    }
}

impl<A: TidyOutput, B: TidyOutput, C: TidyOutput> TidyOutput for (A, B, C) {
    fn tensor_ids(&self) -> Vec<usize> {
        let mut v = self.0.tensor_ids();
        v.extend(self.1.tensor_ids());
        v.extend(self.2.tensor_ids());
        v
    }
}

impl TidyOutput for f32 {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for Vec<f32> {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for usize {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for bool {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for String {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for f64 {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuBackend;
    use crate::ops;

    /// An engine with two CPU-identical tiers: "gpu" (priority 2, default)
    /// and "cpu" (priority 1, the degradation target).
    fn two_tier_engine() -> Engine {
        let e = Engine::new();
        e.register_backend("gpu", Arc::new(CpuBackend::new()), 2);
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn emit_scalar(backend: &dyn Backend, value: f32) -> Result<Vec<(DataId, Shape, DType)>> {
        let id = backend.register(TensorData::F32(vec![value]), DType::F32);
        Ok(vec![(id, Shape::new(vec![1]), DType::F32)])
    }

    #[test]
    fn transient_failure_retries_in_place_without_degrading() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Flaky",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls < MAX_TRANSIENT_ATTEMPTS {
                        Err(Error::resource_exhausted("gpu", "simulated pressure"))
                    } else {
                        emit_scalar(b, 7.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, MAX_TRANSIENT_ATTEMPTS);
        assert_eq!(e.degradations(), 0, "in-place retry must not degrade");
        assert_eq!(e.backend_name(), "gpu");
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![7.0]);
    }

    #[test]
    fn context_loss_degrades_immediately_with_event() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "MatMul",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls == 1 {
                        Err(Error::context_lost("gpu"))
                    } else {
                        emit_scalar(b, 1.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, 2, "context loss must skip in-place retries");
        assert_eq!(e.degradations(), 1);
        assert_eq!(e.backend_name(), "cpu");
        let events = e.degradation_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kernel, "MatMul");
        assert_eq!(events[0].from_backend, "gpu");
        assert_eq!(events[0].to_backend, "cpu");
        assert!(events[0].reason.contains("lost"), "reason: {}", events[0].reason);
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![1.0]);
        let mem = e.memory();
        assert_eq!(mem.degradations, 1);
        assert_eq!(mem.current_backend, "cpu");
    }

    #[test]
    fn exhausted_transient_retries_fall_back_to_next_backend() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Oom",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls <= MAX_TRANSIENT_ATTEMPTS {
                        Err(Error::resource_exhausted("gpu", "texture pool exhausted"))
                    } else {
                        emit_scalar(b, 2.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, MAX_TRANSIENT_ATTEMPTS + 1);
        assert_eq!(e.degradations(), 1);
        assert_eq!(e.backend_name(), "cpu");
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![2.0]);
    }

    #[test]
    fn kernel_unsupported_degrades_without_retrying() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Conv2D",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls == 1 {
                        Err(Error::kernel_unsupported("gpu", "Conv2D"))
                    } else {
                        emit_scalar(b, 3.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, 2, "unsupported kernels are not transient");
        assert_eq!(e.degradations(), 1);
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![3.0]);
    }

    #[test]
    fn non_degradable_error_propagates_untouched() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let err = e
            .run_kernel(
                "Bad",
                &[],
                &mut |_, _| {
                    calls += 1;
                    Err(Error::backend("gpu", "driver bug"))
                },
                None,
            )
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(e.degradations(), 0);
        assert_eq!(e.backend_name(), "gpu", "fatal errors must not switch backends");
        assert!(matches!(err, Error::Backend { .. }));
    }

    #[test]
    fn degradation_stops_when_no_fallback_is_left() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let err = e
            .run_kernel(
                "Doomed",
                &[],
                &mut |_, _| {
                    calls += 1;
                    Err(Error::context_lost("everything"))
                },
                None,
            )
            .unwrap_err();
        // One failure per tier: gpu degrades to cpu, cpu has nowhere to go.
        assert_eq!(calls, 2);
        assert_eq!(e.degradations(), 1);
        assert!(matches!(err, Error::ContextLost { .. }));
    }

    #[test]
    fn inputs_migrate_to_fallback_backend_after_degradation() {
        let e = two_tier_engine();
        let x = e.tensor_1d(&[1.0, 2.0]).unwrap(); // lives on "gpu"
        // Burn the gpu tier: the kernel fails on both tiers, but the
        // degradation it causes sticks.
        let _ = e.run_kernel("Burn", &[], &mut |_, _| Err(Error::context_lost("gpu")), None);
        assert_eq!(e.backend_name(), "cpu");
        // First use on the cpu tier migrates x's data across backends.
        let y = ops::add(&x, &x).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![2.0, 4.0]);
        assert_eq!(e.degradations(), 1);
    }
}
