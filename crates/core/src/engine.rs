//! The eager execution engine.
//!
//! The engine owns backend registration, the tensor/data registries with
//! reference counting (paper Sec 3.4), memory scopes for `tidy()` (Sec 3.7),
//! the gradient tape (Sec 3.5), and the profiling/debugging hooks (Sec 3.8).
//!
//! ## Concurrency model (sharded registries)
//!
//! The registries are *sharded*: tensor records and data records live in
//! `SHARD_COUNT` independently locked maps keyed by tensor id / data
//! handle, and the engine-wide gauges (`num_tensors`, `num_bytes`,
//! degradation count) are atomics. A kernel dispatch therefore touches only
//! the shards its inputs and outputs hash to, so independent inferences on
//! different threads overlap instead of serializing behind one mutex.
//! Kernel execution itself, profiling appends, and degradation logging all
//! happen off the registry locks.
//!
//! Lock ordering (outermost first): `meta` (scopes/tape) → tensor shard →
//! data shard → backend table → profile/degradation log. No code path may
//! acquire an earlier lock while holding a later one, and no path holds two
//! shards of the same registry at once.
//!
//! `tidy` scopes are tracked **per thread**: a scope opened on one thread
//! only collects tensors created on that thread, so concurrent inference
//! requests cannot dispose each other's intermediates.

use crate::backend::{Backend, BackendMemory, DataId, KTensor, KernelTiming};
use crate::dtype::{DType, TensorData};
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tape::{GradFn, Tape, TapeNode};
use crate::tensor::Tensor;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// Number of independently locked registry shards (power of two).
const SHARD_COUNT: usize = 16;

/// How tensor memory is reclaimed.
///
/// The paper contrasts the browser (no finalization: manual `dispose()` /
/// `tidy()`, Sec 3.7) with Node.js (V8 finalization frees memory
/// automatically, Sec 4.2). [`MemoryPolicy::Manual`] reproduces browser
/// semantics — dropping a [`Tensor`] handle does *not* free its memory;
/// [`MemoryPolicy::Finalized`] reproduces Node semantics — the last handle
/// drop disposes the tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPolicy {
    /// Browser-like: only `dispose()`/`tidy()` free memory. Forgetting them
    /// leaks, exactly as in WebGL TensorFlow.js.
    Manual,
    /// Node-like: dropping the last handle frees the tensor.
    Finalized,
}

/// Engine-level memory snapshot (`tf.memory()`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryInfo {
    /// Number of live (undisposed) tensors.
    pub num_tensors: usize,
    /// Number of live data containers (shared by shallow copies).
    pub num_data_buffers: usize,
    /// Total bytes across live containers.
    pub num_bytes: usize,
    /// Backend-specific gauges.
    pub backend: BackendMemory,
    /// Times the engine abandoned a failing backend for a lower-priority
    /// one (graceful degradation).
    pub degradations: u64,
    /// Name of the backend currently serving kernels.
    pub current_backend: String,
}

/// Health snapshot of the engine's backend stack — the surface a serving
/// router's circuit breaker watches. Cheap to take: one read lock plus one
/// relaxed atomic load.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendHealth {
    /// Backend currently serving kernels.
    pub current_backend: String,
    /// Highest-priority registered backend (where the engine *wants* to be).
    pub preferred_backend: String,
    /// Whether the engine is running on its preferred backend — `false`
    /// means a degradation ladder step is still in effect and the engine is
    /// serving slower than its device allows.
    pub at_preferred: bool,
    /// The degradation generation (see [`Engine::degradation_generation`]).
    pub degradation_generation: u64,
}

/// One graceful-degradation event: a kernel abandoned a failing backend and
/// the engine fell back to the next backend in the priority chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    /// Kernel that was executing when the backend failed.
    pub kernel: &'static str,
    /// Backend that failed.
    pub from_backend: String,
    /// Backend the engine fell back to.
    pub to_backend: String,
    /// Display form of the error that triggered the fallback.
    pub reason: String,
}

/// Cached handles to the engine's registered telemetry metrics, resolved
/// once so the kernel hot path never touches the registry lock.
struct KernelMetrics {
    kernels: Arc<webml_telemetry::Counter>,
    wall_ms: Arc<webml_telemetry::Histogram>,
    device_ms: Arc<webml_telemetry::Histogram>,
    retries: Arc<webml_telemetry::Counter>,
    degradations: Arc<webml_telemetry::Counter>,
}

fn kernel_metrics() -> &'static KernelMetrics {
    static METRICS: std::sync::OnceLock<KernelMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| KernelMetrics {
        kernels: webml_telemetry::counter("engine.kernels_total"),
        wall_ms: webml_telemetry::histogram("engine.kernel_wall_ms"),
        device_ms: webml_telemetry::histogram("engine.kernel_device_ms"),
        retries: webml_telemetry::counter("engine.kernel_retries_total"),
        degradations: webml_telemetry::counter("engine.degradations_total"),
    })
}

/// Bounded in-place retries of a transient kernel failure before the engine
/// degrades to the next backend.
const MAX_TRANSIENT_ATTEMPTS: u32 = 3;

/// Bounded retries of a transient data read (migration or `dataSync`).
const MAX_READ_ATTEMPTS: u32 = 4;

/// Exponential backoff schedule for transient retries (bounded; the last
/// attempt waits under a millisecond, keeping kernels responsive).
fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_micros(100u64 << attempt.min(4))
}

/// Per-kernel profile entry (paper Sec 3.8: "users can profile every kernel
/// that gets called, seeing the output shape, memory footprint, as well as
/// device-specific timing information").
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: &'static str,
    /// Wall-clock milliseconds spent in the kernel call.
    pub wall_ms: f64,
    /// Device-side milliseconds for the kernel, as measured by the
    /// backend's device timer (the disjoint-timer-query counter on the
    /// webgl backend). `None` when the device exposes no timer — e.g. a
    /// simulated device profile without `EXT_disjoint_timer_query`.
    pub kernel_ms: Option<f64>,
    /// Shapes of the outputs.
    pub output_shapes: Vec<Shape>,
    /// Bytes allocated for the outputs.
    pub bytes_added: usize,
}

/// Result of [`Engine::profile`] (`tf.profile(f)`).
#[derive(Debug, Clone, Default)]
pub struct ProfileInfo {
    /// Tensors newly allocated while running the function.
    pub new_tensors: usize,
    /// Bytes newly allocated while running the function.
    pub new_bytes: usize,
    /// Peak live tensor count inside the function.
    pub peak_tensors: usize,
    /// Peak live bytes inside the function.
    pub peak_bytes: usize,
    /// Every kernel invocation, in order.
    pub kernels: Vec<KernelProfile>,
}

/// Result of [`Engine::time`] (`tf.time(f)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeInfo {
    /// Wall-clock milliseconds for the whole function, including scheduling.
    pub wall_ms: f64,
    /// Device kernel milliseconds as reported by the backend (on the webgl
    /// backend this is pure GPU time, excluding upload/download).
    pub kernel_ms: f64,
}

/// Number of lock-striped kernel buffers in the profile collector.
/// Threads hash onto stripes by [`webml_telemetry::thread_index`], so with
/// typical thread counts each stripe is effectively thread-private and its
/// mutex is uncontended — this is what keeps `run_kernel` off a shared
/// profile lock while profiling (the counters are plain atomics).
const PROFILE_STRIPES: usize = 16;

/// Concurrent profile collector for [`Engine::profile`]: atomic counters
/// plus per-thread-striped kernel logs, folded into a [`ProfileInfo`] at
/// scope exit. One profiling window at a time (like the old
/// `Mutex<Option<ProfileState>>` it replaces).
struct ProfileCollector {
    new_tensors: AtomicUsize,
    new_bytes: AtomicUsize,
    peak_tensors: AtomicUsize,
    peak_bytes: AtomicUsize,
    /// Global kernel sequence number, so the folded log preserves
    /// cross-thread dispatch order.
    seq: AtomicU64,
    kernels: Vec<Mutex<Vec<(u64, KernelProfile)>>>,
}

impl ProfileCollector {
    fn new() -> ProfileCollector {
        ProfileCollector {
            new_tensors: AtomicUsize::new(0),
            new_bytes: AtomicUsize::new(0),
            peak_tensors: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            kernels: (0..PROFILE_STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn stripe(&self) -> &Mutex<Vec<(u64, KernelProfile)>> {
        &self.kernels[webml_telemetry::thread_index() & (PROFILE_STRIPES - 1)]
    }
}

pub(crate) struct DataRecord {
    backend_name: String,
    id: DataId,
    refcount: usize,
    bytes: usize,
    dtype: DType,
}

pub(crate) struct TensorRecord {
    data: u64,
    kept: bool,
    variable: bool,
    scope: Option<usize>,
    /// Affine dequantization params for U8-stored quantized tensors.
    /// Keyed by tensor id (not data handle), so they survive backend
    /// migration and context-loss recovery — only raw codes move between
    /// devices. Disposal frees them with the record.
    quant: Option<Arc<crate::quant::QuantParams>>,
}

struct Scope {
    id: usize,
    name: &'static str,
    tensors: Vec<usize>,
}

/// Registered backends and the index of the active one (read-mostly; only
/// `register_backend`/`set_backend`/degradation take the write lock).
struct BackendTable {
    entries: Vec<(String, i32, Arc<dyn Backend>)>,
    current: Option<usize>,
}

/// Cold bookkeeping: per-thread `tidy` scope stacks and the gradient tape.
/// Held only for scope membership pushes and tape recording — never across
/// kernel execution, data migration, or backend calls.
struct MetaState {
    scopes: HashMap<ThreadId, Vec<Scope>>,
    tape_stack: Vec<Tape>,
    recording_paused: bool,
    kept_by_tape: HashSet<usize>,
}

/// The eager execution engine. Cheap to clone (`Arc` internally); usually
/// accessed through [`crate::global::engine`] the way `tf` is the global
/// namespace in TensorFlow.js.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    /// Sharded tensor registry, keyed by tensor id.
    tensor_shards: Vec<Mutex<HashMap<usize, TensorRecord>>>,
    /// Sharded data-container registry, keyed by data handle.
    data_shards: Vec<Mutex<HashMap<u64, DataRecord>>>,
    /// Live tensor count (exact: mutated adjacent to every shard mutation).
    num_tensors: AtomicUsize,
    /// Live data-container count.
    num_data: AtomicUsize,
    /// Total live bytes.
    num_bytes: AtomicUsize,
    /// High-water mark of `num_bytes` since creation (or the last
    /// [`Engine::reset_peak_bytes`]). Always on, unlike the profile
    /// collector's windowed peak — one relaxed `fetch_max` per allocation.
    peak_bytes: AtomicUsize,
    backends: RwLock<BackendTable>,
    meta: Mutex<MetaState>,
    /// Whether any tape is active (fast-path skip of `meta` in kernels).
    tape_active: AtomicBool,
    profile: ProfileCollector,
    /// Whether profiling is active (fast-path skip of the collector).
    profiling: AtomicBool,
    debug: AtomicBool,
    degradations: AtomicU64,
    degradation_log: Mutex<Vec<DegradationEvent>>,
    garbage: Mutex<Vec<usize>>,
    /// Whether `garbage` may be non-empty (skip the lock when clean).
    garbage_pending: AtomicBool,
    next_data_handle: AtomicU64,
    next_tensor_id: AtomicUsize,
    next_scope_id: AtomicUsize,
    policy: AtomicU8,
    fusion_enabled: AtomicBool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table = self.inner.backends.read();
        f.debug_struct("Engine")
            .field("num_tensors", &self.inner.num_tensors.load(Ordering::Relaxed))
            .field("num_bytes", &self.inner.num_bytes.load(Ordering::Relaxed))
            .field("backend", &table.current.map(|i| table.entries[i].0.clone()))
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl PartialEq for Engine {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Engine {
    /// Create an engine with no backends registered.
    pub fn new() -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                tensor_shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
                data_shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
                num_tensors: AtomicUsize::new(0),
                num_data: AtomicUsize::new(0),
                num_bytes: AtomicUsize::new(0),
                peak_bytes: AtomicUsize::new(0),
                backends: RwLock::new(BackendTable { entries: Vec::new(), current: None }),
                meta: Mutex::new(MetaState {
                    scopes: HashMap::new(),
                    tape_stack: Vec::new(),
                    recording_paused: false,
                    kept_by_tape: HashSet::new(),
                }),
                tape_active: AtomicBool::new(false),
                profile: ProfileCollector::new(),
                profiling: AtomicBool::new(false),
                debug: AtomicBool::new(false),
                degradations: AtomicU64::new(0),
                degradation_log: Mutex::new(Vec::new()),
                garbage: Mutex::new(Vec::new()),
                garbage_pending: AtomicBool::new(false),
                next_data_handle: AtomicU64::new(1),
                next_tensor_id: AtomicUsize::new(1),
                next_scope_id: AtomicUsize::new(0),
                policy: AtomicU8::new(0), // Manual
                fusion_enabled: AtomicBool::new(true),
            }),
        }
    }

    fn tensor_shard(&self, id: usize) -> &Mutex<HashMap<usize, TensorRecord>> {
        &self.inner.tensor_shards[id & (SHARD_COUNT - 1)]
    }

    fn data_shard(&self, handle: u64) -> &Mutex<HashMap<u64, DataRecord>> {
        &self.inner.data_shards[(handle as usize) & (SHARD_COUNT - 1)]
    }

    /// Enable or disable kernel fusion. When disabled, the `ops::fused_*`
    /// family always runs the unfused kernel composition — useful for
    /// fused-vs-unfused benchmark comparisons and bitwise-equality tests.
    pub fn set_fusion_enabled(&self, enabled: bool) {
        self.inner.fusion_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether fused kernels are dispatched (default true).
    pub fn fusion_enabled(&self) -> bool {
        self.inner.fusion_enabled.load(Ordering::Relaxed)
    }

    // --- backends ----------------------------------------------------------

    /// Register a backend under `name`. The highest-priority backend becomes
    /// the default, mirroring `tf.registerBackend` semantics.
    pub fn register_backend(&self, name: impl Into<String>, backend: Arc<dyn Backend>, priority: i32) {
        let name = name.into();
        let mut table = self.inner.backends.write();
        table.entries.retain(|(n, _, _)| n != &name);
        table.entries.push((name, priority, backend));
        // Default to the highest priority backend.
        let best = table
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, p, _))| *p)
            .map(|(i, _)| i);
        table.current = best;
    }

    /// Register an ordered backend-preference list in one call: `rungs`
    /// lists backends most-preferred first and each rung receives a
    /// strictly descending priority, so graceful degradation walks the
    /// list left to right (e.g. webgpu → webgl → cpu) and
    /// [`Engine::promote_backend`] / canary re-admission climbs back to
    /// the head. This is the configuration surface of the degradation
    /// ladder — any number of rungs, not a hardcoded gpu/cpu pair.
    pub fn register_backend_ladder(&self, rungs: Vec<(String, Arc<dyn Backend>)>) {
        let top = rungs.len() as i32;
        for (i, (name, backend)) in rungs.into_iter().enumerate() {
            self.register_backend(name, backend, top - i as i32);
        }
    }

    /// The registered backend names in descending priority order — the
    /// degradation ladder as configured, head first.
    pub fn backend_ladder(&self) -> Vec<String> {
        let table = self.inner.backends.read();
        let mut entries: Vec<(String, i32)> =
            table.entries.iter().map(|(n, p, _)| (n.clone(), *p)).collect();
        entries.sort_by_key(|(_, p)| std::cmp::Reverse(*p));
        entries.into_iter().map(|(n, _)| n).collect()
    }

    /// Switch the active backend by name.
    ///
    /// # Errors
    /// [`Error::UnknownBackend`] when no backend has that name.
    pub fn set_backend(&self, name: &str) -> Result<()> {
        let mut table = self.inner.backends.write();
        match table.entries.iter().position(|(n, _, _)| n == name) {
            Some(i) => {
                table.current = Some(i);
                Ok(())
            }
            None => Err(Error::UnknownBackend { name: name.to_string() }),
        }
    }

    /// Name of the active backend.
    ///
    /// # Panics
    /// Panics if no backend is registered.
    pub fn backend_name(&self) -> String {
        let table = self.inner.backends.read();
        let i = table.current.expect("no backend registered");
        table.entries[i].0.clone()
    }

    /// Names of all registered backends.
    pub fn backend_names(&self) -> Vec<String> {
        let table = self.inner.backends.read();
        table.entries.iter().map(|(n, _, _)| n.clone()).collect()
    }

    /// Handle to the active backend.
    ///
    /// # Panics
    /// Panics if no backend is registered.
    pub fn backend(&self) -> Arc<dyn Backend> {
        let table = self.inner.backends.read();
        let i = table.current.expect("no backend registered");
        table.entries[i].2.clone()
    }

    /// The active backend together with its *registry* name (the same
    /// backend implementation can be registered under several names).
    fn current_backend(&self) -> Result<(Arc<dyn Backend>, String)> {
        let table = self.inner.backends.read();
        let i = table.current.ok_or_else(|| Error::UnknownBackend { name: "<none>".into() })?;
        Ok((table.entries[i].2.clone(), table.entries[i].0.clone()))
    }

    fn backend_by_name(&self, name: &str) -> Arc<dyn Backend> {
        self.inner
            .backends
            .read()
            .entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, b)| b.clone())
            .expect("backend of live data must stay registered")
    }

    /// Smallest safely representable positive value on the active backend
    /// (paper Sec 4.1.3: adjusted for 16-bit-float devices).
    pub fn epsilon(&self) -> f32 {
        self.backend().epsilon()
    }

    /// Insert a fence covering all work submitted to the active backend so
    /// far (`gl.fenceSync`, Sec 4.1.1). `None` on synchronous backends,
    /// meaning everything already completed.
    pub fn submit_fence(&self) -> Option<crate::backend::FenceToken> {
        self.backend().submit_fence()
    }

    /// Poll whether a fence has passed. `None` tokens (synchronous
    /// backends) have trivially passed.
    pub fn fence_passed(&self, token: Option<crate::backend::FenceToken>) -> bool {
        match token {
            Some(t) => self.backend().fence_passed(t),
            None => true,
        }
    }

    /// Block until a fence passes (`gl.clientWaitSync`); a no-op for
    /// `None` tokens. Waiting on a token after a degradation switched the
    /// active backend is safe: the new backend's defaults treat foreign
    /// tokens as passed, and the failed device's queue keeps executing
    /// fences independently.
    pub fn wait_fence(&self, token: Option<crate::backend::FenceToken>) {
        if let Some(t) = token {
            self.backend().wait_fence(t);
        }
    }

    // --- memory policy -----------------------------------------------------

    /// Set how memory is reclaimed (browser-manual vs node-finalized).
    pub fn set_memory_policy(&self, policy: MemoryPolicy) {
        let v = match policy {
            MemoryPolicy::Manual => 0,
            MemoryPolicy::Finalized => 1,
        };
        self.inner.policy.store(v, Ordering::SeqCst);
    }

    /// The active memory policy.
    pub fn memory_policy(&self) -> MemoryPolicy {
        match self.inner.policy.load(Ordering::SeqCst) {
            0 => MemoryPolicy::Manual,
            _ => MemoryPolicy::Finalized,
        }
    }

    pub(crate) fn enqueue_garbage(&self, tensor_id: usize) {
        self.inner.garbage.lock().push(tensor_id);
        self.inner.garbage_pending.store(true, Ordering::Release);
    }

    fn collect_garbage(&self) {
        if !self.inner.garbage_pending.swap(false, Ordering::AcqRel) {
            return;
        }
        let ids: Vec<usize> = std::mem::take(&mut *self.inner.garbage.lock());
        for id in ids {
            self.dispose_tensor(id);
        }
    }

    // --- tensor/data registry ----------------------------------------------

    fn fresh_tensor_id(&self) -> usize {
        self.inner.next_tensor_id.fetch_add(1, Ordering::Relaxed)
    }

    fn fresh_data_handle(&self) -> u64 {
        self.inner.next_data_handle.fetch_add(1, Ordering::Relaxed)
    }

    fn register_tensor(&self, data_handle: u64, shape: Shape, dtype: DType) -> Tensor {
        let id = self.fresh_tensor_id();
        let scope = {
            let mut meta = self.inner.meta.lock();
            match meta.scopes.get_mut(&std::thread::current().id()).and_then(|s| s.last_mut()) {
                Some(s) => {
                    s.tensors.push(id);
                    Some(s.id)
                }
                None => None,
            }
        };
        self.tensor_shard(id).lock().insert(
            id,
            TensorRecord { data: data_handle, kept: false, variable: false, scope, quant: None },
        );
        let live = self.inner.num_tensors.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.profiling.load(Ordering::Relaxed) {
            let p = &self.inner.profile;
            p.new_tensors.fetch_add(1, Ordering::Relaxed);
            p.peak_tensors.fetch_max(live, Ordering::Relaxed);
        }
        Tensor::from_parts(self.clone(), id, shape, dtype)
    }

    fn register_data(&self, backend_name: String, id: DataId, bytes: usize, dtype: DType) -> u64 {
        let handle = self.fresh_data_handle();
        self.data_shard(handle)
            .lock()
            .insert(handle, DataRecord { backend_name, id, refcount: 1, bytes, dtype });
        self.inner.num_data.fetch_add(1, Ordering::Relaxed);
        let live_bytes = self.inner.num_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak_bytes.fetch_max(live_bytes, Ordering::Relaxed);
        if self.inner.profiling.load(Ordering::Relaxed) {
            let p = &self.inner.profile;
            p.new_bytes.fetch_add(bytes, Ordering::Relaxed);
            p.peak_bytes.fetch_max(live_bytes, Ordering::Relaxed);
        }
        handle
    }

    /// Create a tensor from host data on the active backend.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `data.len() != shape.size()`.
    pub fn make_tensor(&self, data: TensorData, shape: Shape, dtype: DType) -> Result<Tensor> {
        if data.len() != shape.size() {
            return Err(Error::invalid(
                "tensor",
                format!("data length {} does not match shape {} (size {})", data.len(), shape, shape.size()),
            ));
        }
        // The float→U8 cast saturates and maps NaN to 0 (see
        // `TensorData::cast`); a NaN pixel silently zeroing out would
        // corrupt quantized image inputs, so the engine boundary rejects
        // non-finite values instead.
        if dtype == DType::U8 {
            if let Some((i, v)) = data.first_non_finite() {
                return Err(Error::invalid(
                    "tensor",
                    format!(
                        "cannot create a uint8 tensor: non-finite value {v} at index {i} would silently cast to 0"
                    ),
                ));
            }
        }
        let data = data.cast(dtype);
        let bytes = shape.size() * dtype.byte_size();
        self.collect_garbage();
        // Record the *registry* name, not `backend.name()`: the same backend
        // implementation can be registered under several names (and the data
        // must follow the registration it actually lives on).
        let (backend, backend_name) = self.current_backend()?;
        let id = backend.register(data, dtype);
        let handle = self.register_data(backend_name, id, bytes, dtype);
        Ok(self.register_tensor(handle, shape, dtype))
    }

    /// Create a **quantized** tensor from raw U8 codes plus affine
    /// dequantization parameters (paper Sec 5.1), stored at one byte per
    /// element with `value ≈ code * scale + min` semantics. The params live
    /// in the tensor registry — they survive backend migration and
    /// context-loss recovery, and fused quantized kernels read them to run
    /// dequant-free (see [`crate::quant::QuantParams`]).
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] when `codes.len() != shape.size()` or the
    /// params fail [`crate::quant::QuantParams::validate`].
    pub fn quantized_tensor(
        &self,
        codes: Vec<u8>,
        shape: impl Into<Shape>,
        params: crate::quant::QuantParams,
    ) -> Result<Tensor> {
        let shape = shape.into();
        params.validate(&shape)?;
        let t = self.make_tensor(TensorData::U8(codes), shape, DType::U8)?;
        self.set_quant_params(t.id(), Arc::new(params));
        Ok(t)
    }

    /// Attach dequantization params to an existing tensor (used by alias
    /// propagation and the quantized-weight loader).
    pub(crate) fn set_quant_params(&self, tensor_id: usize, params: Arc<crate::quant::QuantParams>) {
        if let Some(rec) = self.tensor_shard(tensor_id).lock().get_mut(&tensor_id) {
            rec.quant = Some(params);
        }
    }

    /// The dequantization params attached to a tensor, if it is quantized.
    pub fn quant_params(&self, tensor_id: usize) -> Option<Arc<crate::quant::QuantParams>> {
        self.tensor_shard(tensor_id).lock().get(&tensor_id).and_then(|r| r.quant.clone())
    }

    /// Create a new tensor that shares the data of `t` under a new shape —
    /// the free `reshape`/`clone` of paper Sec 3.4. Records a tape node when
    /// a gradient function is supplied and a tape is active.
    ///
    /// # Errors
    /// Fails when `t` is disposed or the element counts differ.
    pub fn run_alias(
        &self,
        kernel: &'static str,
        t: &Tensor,
        new_shape: Shape,
        grad: Option<GradFn>,
    ) -> Result<Tensor> {
        if t.shape().size() != new_shape.size() {
            return Err(Error::shape(
                kernel,
                format!("cannot view {} as {} (different sizes)", t.shape(), new_shape),
            ));
        }
        self.collect_garbage();
        let data_handle = self
            .tensor_shard(t.id())
            .lock()
            .get(&t.id())
            .ok_or(Error::TensorDisposed { tensor_id: t.id() })?
            .data;
        {
            let mut shard = self.data_shard(data_handle).lock();
            let rec = shard
                .get_mut(&data_handle)
                .ok_or(Error::TensorDisposed { tensor_id: t.id() })?;
            rec.refcount += 1;
        }
        let out = self.register_tensor(data_handle, new_shape, t.dtype());
        // A view of quantized codes dequantizes with the same params
        // (per-channel params may stop lining up after a reshape, but the
        // codes themselves are unchanged; consumers re-validate per-channel
        // axes against the shape they dispatch with).
        if let Some(q) = self.quant_params(t.id()) {
            self.set_quant_params(out.id(), q);
        }
        if let Some(grad_fn) = grad {
            self.maybe_record(kernel, &[t], std::slice::from_ref(&out), grad_fn);
        }
        Ok(out)
    }

    fn maybe_record(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        outputs: &[Tensor],
        grad_fn: GradFn,
    ) {
        if !self.inner.tape_active.load(Ordering::Acquire) {
            return;
        }
        let mut meta = self.inner.meta.lock();
        if meta.tape_stack.is_empty() || meta.recording_paused {
            return;
        }
        let node = TapeNode {
            kernel,
            input_ids: inputs.iter().map(|t| t.id()).collect(),
            output_ids: outputs.iter().map(|t| t.id()).collect(),
            inputs: inputs.iter().map(|&t| t.clone()).collect(),
            outputs: outputs.to_vec(),
            grad_fn,
        };
        for t in inputs {
            meta.kept_by_tape.insert(t.id());
        }
        for t in outputs {
            meta.kept_by_tape.insert(t.id());
        }
        meta.tape_stack.last_mut().expect("tape active").record(node);
    }

    /// Resolve `t`'s data record, migrate it to the active backend when it
    /// lives elsewhere, and pin it (refcount) so a concurrent dispose cannot
    /// free it mid-kernel. The migration happens while this data shard's
    /// lock is held, so the same container is never migrated twice.
    fn pin_input(
        &self,
        t: &Tensor,
        backend: &dyn Backend,
        backend_name: &str,
    ) -> Result<(u64, DataId)> {
        let data_handle = self
            .tensor_shard(t.id())
            .lock()
            .get(&t.id())
            .ok_or(Error::TensorDisposed { tensor_id: t.id() })?
            .data;
        let mut shard = self.data_shard(data_handle).lock();
        let rec = shard
            .get_mut(&data_handle)
            .ok_or(Error::TensorDisposed { tensor_id: t.id() })?;
        // Migrate data living on another backend (lazy movement on first
        // use, like tfjs `moveData`). After a degradation this is the
        // recovery path: the read serves the failed backend's host-side
        // copies.
        if rec.backend_name != backend_name {
            let old_backend = self.backend_by_name(&rec.backend_name);
            let host = Self::read_sync_with_retry(old_backend.as_ref(), rec.id)?;
            old_backend.dispose_data(rec.id);
            let new_id = backend.register(host, rec.dtype);
            rec.backend_name = backend_name.to_string();
            rec.id = new_id;
        }
        rec.refcount += 1; // pin
        Ok((data_handle, rec.id))
    }

    /// Run a kernel: validate inputs, execute `forward` on the active
    /// backend, register outputs, and record a tape node when differentiable
    /// and a gradient scope is active.
    ///
    /// This is the single funnel every op goes through; profiling, the
    /// NaN-debug mode (paper Sec 3.8), and the fault-recovery policy hook
    /// in here. On a transient backend failure the kernel is retried in
    /// place with bounded exponential backoff; on context loss — or when
    /// retries are exhausted, or the backend cannot run the kernel at all —
    /// the engine *degrades*: it switches to the next backend in the
    /// priority chain and re-dispatches. The input-migration step at the
    /// top of the funnel then re-uploads the tensors' data from the failing
    /// backend's host-side copies, so no data is lost and callers only
    /// observe a [`DegradationEvent`] instead of an error.
    ///
    /// Only the registry shards holding the kernel's inputs/outputs are
    /// locked, and never across the `forward` call itself — concurrent
    /// kernels on disjoint tensors proceed in parallel.
    ///
    /// # Errors
    /// Propagates disposed-tensor, NaN-debug, and non-degradable backend
    /// errors, plus degradable errors once no lower-priority backend is
    /// left to fall back to.
    #[allow(clippy::type_complexity)] // the documented kernel funnel signature
    pub fn run_kernel(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        forward: &mut dyn FnMut(&dyn Backend, &[KTensor<'_>]) -> Result<Vec<(DataId, Shape, DType)>>,
        grad: Option<GradFn>,
    ) -> Result<Vec<Tensor>> {
        self.run_kernel_shaped(kernel, inputs, &[], forward, grad)
    }

    /// [`Engine::run_kernel`] with per-input *shape overrides*: input `i`
    /// is presented to the kernel as `shapes[i]` instead of its own shape
    /// (inputs beyond `shapes.len()` keep theirs). The override must
    /// describe the same element count over the same data layout — it is a
    /// zero-cost reinterpretation, exactly what a `reshape` alias would
    /// express, minus the alias tensor. Callers that dispatch the same
    /// kernel repeatedly (the plan executor) precompute these shapes once
    /// and skip per-call alias registration/disposal entirely.
    ///
    /// # Errors
    /// Same conditions as [`Engine::run_kernel`].
    #[allow(clippy::type_complexity)] // the documented kernel funnel signature
    pub fn run_kernel_shaped(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        shapes: &[Shape],
        forward: &mut dyn FnMut(&dyn Backend, &[KTensor<'_>]) -> Result<Vec<(DataId, Shape, DType)>>,
        grad: Option<GradFn>,
    ) -> Result<Vec<Tensor>> {
        // Transient in-place retries against the current backend; reset on
        // every degradation so a fresh backend gets its full budget.
        let mut attempts: u32 = 0;
        loop {
            self.collect_garbage();
            // Phase 1: resolve the backend, then validate/migrate/pin each
            // input under its own shard locks.
            let (backend, backend_name) = self.current_backend()?;
            let mut input_data: Vec<(u64, DataId)> = Vec::with_capacity(inputs.len());
            let mut pin_failure: Option<Error> = None;
            for t in inputs {
                match self.pin_input(t, backend.as_ref(), &backend_name) {
                    Ok(pinned) => input_data.push(pinned),
                    Err(e) => {
                        pin_failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = pin_failure {
                self.unpin(&input_data);
                return Err(e);
            }

            // Phase 2 (no registry locks held): run the kernel.
            let ktensors: Vec<KTensor<'_>> = inputs
                .iter()
                .zip(&input_data)
                .enumerate()
                .map(|(i, (t, (_, id)))| KTensor {
                    data: *id,
                    shape: shapes.get(i).unwrap_or_else(|| t.shape_ref()),
                    dtype: t.dtype(),
                })
                .collect();
            let profiling = self.inner.profiling.load(Ordering::Relaxed);
            let tracing = webml_telemetry::enabled();
            // Device-timer bracket: sampling may flush the device queue
            // (disjoint timer queries serialize the pipeline), so it is
            // only done while a profile window is open.
            let dev0 = if profiling { backend.device_timer_ns() } else { None };
            let trace_t0 = if tracing { webml_telemetry::now_ns() } else { 0 };
            let t0 = Instant::now();
            let result = forward(backend.as_ref(), &ktensors);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let kernel_ms = match (profiling, dev0, if profiling { backend.device_timer_ns() } else { None }) {
                (true, Some(a), Some(b)) => Some(b.saturating_sub(a) as f64 / 1e6),
                _ => None,
            };
            if tracing {
                webml_telemetry::record_span(kernel, "kernel", trace_t0, webml_telemetry::now_ns());
                let tele = kernel_metrics();
                tele.kernels.inc();
                tele.wall_ms.observe(wall_ms);
                if let Some(d) = kernel_ms {
                    tele.device_ms.observe(d);
                }
            }

            // NaN-debug mode: download every output and fail at the first
            // NaN, naming the kernel (paper Sec 3.8).
            if self.inner.debug.load(Ordering::Relaxed) {
                if let Ok(outs) = &result {
                    for (id, _, dtype) in outs {
                        if dtype.is_float() && backend.read_sync(*id)?.has_nan() {
                            // Clean up the outputs we won't register.
                            for (oid, _, _) in outs {
                                backend.dispose_data(*oid);
                            }
                            self.unpin(&input_data);
                            return Err(Error::NanDetected { kernel });
                        }
                    }
                }
            }

            // Phase 3: unpin inputs, then register outputs / handle failure.
            self.unpin(&input_data);
            let outs = match result {
                Ok(outs) => outs,
                Err(e) => {
                    // Context loss cannot heal by itself, so it skips the
                    // in-place retries and degrades immediately.
                    let retryable = e.is_transient() && !matches!(e, Error::ContextLost { .. });
                    if retryable && attempts + 1 < MAX_TRANSIENT_ATTEMPTS {
                        attempts += 1;
                        if tracing {
                            webml_telemetry::instant_arg(kernel, "retry", "attempt", attempts as f64);
                        }
                        kernel_metrics().retries.inc();
                        std::thread::sleep(backoff_delay(attempts));
                        continue;
                    }
                    if e.is_degradable() && self.try_degrade(kernel, &backend_name, &e) {
                        attempts = 0;
                        continue;
                    }
                    return Err(e);
                }
            };
            let mut outputs = Vec::with_capacity(outs.len());
            let mut bytes_added = 0;
            let mut output_shapes = Vec::with_capacity(outs.len());
            for (id, shape, dtype) in outs {
                let bytes = shape.size() * dtype.byte_size();
                bytes_added += bytes;
                output_shapes.push(shape.clone());
                let handle = self.register_data(backend_name.clone(), id, bytes, dtype);
                outputs.push(self.register_tensor(handle, shape, dtype));
            }
            if profiling {
                let p = &self.inner.profile;
                let seq = p.seq.fetch_add(1, Ordering::Relaxed);
                p.stripe().lock().push((
                    seq,
                    KernelProfile { name: kernel, wall_ms, kernel_ms, output_shapes, bytes_added },
                ));
            }
            if let Some(grad_fn) = grad {
                self.maybe_record(kernel, inputs, &outputs, grad_fn);
            }
            return Ok(outputs);
        }
    }

    /// Switch the active backend to the highest-priority backend strictly
    /// below the failing one, recording a [`DegradationEvent`]. Returns
    /// whether a fallback target exists. When another thread already
    /// degraded away from `failed_backend`, no event is recorded and the
    /// caller simply retries on the new backend.
    fn try_degrade(&self, kernel: &'static str, failed_backend: &str, err: &Error) -> bool {
        let mut table = self.inner.backends.write();
        let cur = match table.current {
            Some(i) => i,
            None => return false,
        };
        if table.entries[cur].0 != failed_backend {
            return true;
        }
        let cur_priority = table.entries[cur].1;
        let next = table
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (n, p, _))| *p < cur_priority && n != failed_backend)
            .max_by_key(|(_, (_, p, _))| *p)
            .map(|(i, _)| i);
        match next {
            Some(i) => {
                let event = DegradationEvent {
                    kernel,
                    from_backend: failed_backend.to_string(),
                    to_backend: table.entries[i].0.clone(),
                    reason: err.to_string(),
                };
                table.current = Some(i);
                self.inner.degradations.fetch_add(1, Ordering::Relaxed);
                webml_telemetry::flight::transition(
                    "engine.degrade",
                    format!("{} -> {} on {kernel}: {err}", event.from_backend, event.to_backend),
                );
                self.inner.degradation_log.lock().push(event);
                kernel_metrics().degradations.inc();
                webml_telemetry::instant(kernel, "degrade");
                true
            }
            None => false,
        }
    }

    /// Read from a backend, retrying transient failures (e.g. an injected
    /// readback fault) with bounded backoff. Context loss is not retried:
    /// backends keep host-side copies readable across a loss.
    fn read_sync_with_retry(backend: &dyn Backend, id: DataId) -> Result<TensorData> {
        let mut attempt = 0;
        loop {
            match backend.read_sync(id) {
                Err(ref e) if e.is_transient() && attempt + 1 < MAX_READ_ATTEMPTS => {
                    attempt += 1;
                    std::thread::sleep(backoff_delay(attempt));
                }
                other => return other,
            }
        }
    }

    /// Times the engine abandoned a failing backend for a lower-priority
    /// one (graceful degradation) over its lifetime.
    pub fn degradations(&self) -> u64 {
        self.inner.degradations.load(Ordering::SeqCst)
    }

    /// The full degradation event log, oldest first.
    pub fn degradation_events(&self) -> Vec<DegradationEvent> {
        self.inner.degradation_log.lock().clone()
    }

    /// A generation counter that changes whenever the engine degrades to a
    /// fallback backend. One relaxed atomic load — the cheap way for
    /// caches (e.g. the serve-side warm-model cache) to poll "did the
    /// world change since I last looked?" without touching the event log.
    pub fn degradation_generation(&self) -> u64 {
        self.inner.degradations.load(Ordering::Relaxed)
    }

    /// Health snapshot of the backend stack: which backend is serving,
    /// which one the engine would prefer, and the degradation generation.
    /// A serving router's circuit breaker polls this to decide whether an
    /// engine is degraded (running below its preferred backend) and whether
    /// anything changed since it last looked.
    pub fn backend_health(&self) -> BackendHealth {
        let table = self.inner.backends.read();
        let current = table
            .current
            .map(|i| table.entries[i].0.clone())
            .unwrap_or_else(|| "<none>".to_string());
        let preferred = table
            .entries
            .iter()
            .max_by_key(|(_, p, _)| *p)
            .map(|(n, _, _)| n.clone())
            .unwrap_or_else(|| "<none>".to_string());
        BackendHealth {
            at_preferred: current == preferred,
            current_backend: current,
            preferred_backend: preferred,
            degradation_generation: self.inner.degradations.load(Ordering::Relaxed),
        }
    }

    /// Re-select the highest-priority registered backend after external
    /// recovery (e.g. a restored WebGL context) — the re-admission half of
    /// the degradation ladder. Returns the name of the backend promoted to,
    /// or `None` when the engine is already on its preferred backend (or no
    /// backend is registered). Safe to call optimistically: if the promoted
    /// backend is still broken, the next kernel simply degrades again.
    pub fn promote_backend(&self) -> Option<String> {
        let mut table = self.inner.backends.write();
        let best = table
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, p, _))| *p)
            .map(|(i, _)| i)?;
        if table.current == Some(best) {
            return None;
        }
        table.current = Some(best);
        Some(table.entries[best].0.clone())
    }

    /// Run a *composite* op with a user-supplied gradient (`tf.customGrad`):
    /// `forward` computes the outputs using ordinary ops, but those inner
    /// ops are not recorded — instead a single tape node with `grad_fn` is,
    /// so backprop treats the whole composite as one differentiable unit.
    ///
    /// Useful for numerically better gradients than the composed ones
    /// (e.g. fused softmax-cross-entropy) and for gradient overrides.
    ///
    /// # Errors
    /// Propagates errors from `forward`.
    pub fn run_custom(
        &self,
        kernel: &'static str,
        inputs: &[&Tensor],
        forward: impl FnOnce() -> Result<Vec<Tensor>>,
        grad: GradFn,
    ) -> Result<Vec<Tensor>> {
        let outputs = self.pause_recording(forward)?;
        self.maybe_record(kernel, inputs, &outputs, grad);
        Ok(outputs)
    }

    fn unpin(&self, input_data: &[(u64, DataId)]) {
        for (handle, _) in input_data {
            self.release_data(*handle);
        }
    }

    fn release_data(&self, handle: u64) {
        let removed = {
            let mut shard = self.data_shard(handle).lock();
            let rec = shard.get_mut(&handle).expect("pinned data exists");
            rec.refcount -= 1;
            if rec.refcount == 0 {
                shard.remove(&handle)
            } else {
                None
            }
        };
        if let Some(rec) = removed {
            self.inner.num_data.fetch_sub(1, Ordering::Relaxed);
            self.inner.num_bytes.fetch_sub(rec.bytes, Ordering::Relaxed);
            let backend = self.backend_by_name(&rec.backend_name);
            backend.dispose_data(rec.id);
        }
    }

    // --- reads -------------------------------------------------------------

    pub(crate) fn read_sync(&self, tensor_id: usize) -> Result<TensorData> {
        let (backend, id) = self.locate_data(tensor_id)?;
        Self::read_sync_with_retry(backend.as_ref(), id)
    }

    pub(crate) fn read(&self, tensor_id: usize) -> Result<crate::backend::DataFuture> {
        let (backend, id) = self.locate_data(tensor_id)?;
        Ok(backend.read(id))
    }

    fn locate_data(&self, tensor_id: usize) -> Result<(Arc<dyn Backend>, DataId)> {
        let handle = self
            .tensor_shard(tensor_id)
            .lock()
            .get(&tensor_id)
            .ok_or(Error::TensorDisposed { tensor_id })?
            .data;
        let (backend_name, id) = {
            let shard = self.data_shard(handle).lock();
            let rec = shard.get(&handle).ok_or(Error::TensorDisposed { tensor_id })?;
            (rec.backend_name.clone(), rec.id)
        };
        Ok((self.backend_by_name(&backend_name), id))
    }

    pub(crate) fn is_disposed(&self, tensor_id: usize) -> bool {
        !self.tensor_shard(tensor_id).lock().contains_key(&tensor_id)
    }

    /// Bytes held by a live tensor's data container (0 when disposed).
    pub(crate) fn tensor_bytes(&self, tensor_id: usize) -> usize {
        let handle = match self.tensor_shard(tensor_id).lock().get(&tensor_id) {
            Some(rec) => rec.data,
            None => return 0,
        };
        self.data_shard(handle).lock().get(&handle).map(|rec| rec.bytes).unwrap_or(0)
    }

    // --- disposal, keep, scopes ---------------------------------------------

    /// Dispose a tensor explicitly (`tensor.dispose()`). Idempotent.
    pub fn dispose_tensor(&self, tensor_id: usize) {
        let removed = self.tensor_shard(tensor_id).lock().remove(&tensor_id);
        if let Some(rec) = removed {
            self.inner.num_tensors.fetch_sub(1, Ordering::Relaxed);
            self.release_data(rec.data);
        }
    }

    /// Mark a tensor as kept: it survives all enclosing `tidy` scopes
    /// (`tf.keep`).
    pub fn keep(&self, tensor_id: usize) {
        if let Some(rec) = self.tensor_shard(tensor_id).lock().get_mut(&tensor_id) {
            rec.kept = true;
        }
    }

    pub(crate) fn mark_variable(&self, tensor_id: usize) {
        if let Some(rec) = self.tensor_shard(tensor_id).lock().get_mut(&tensor_id) {
            rec.variable = true;
            rec.kept = true;
        }
    }

    /// Push a named memory scope onto the *calling thread's* scope stack.
    /// Prefer [`Engine::tidy`].
    pub fn start_scope(&self, name: &'static str) {
        let id = self.inner.next_scope_id.fetch_add(1, Ordering::Relaxed);
        let mut meta = self.inner.meta.lock();
        meta.scopes
            .entry(std::thread::current().id())
            .or_default()
            .push(Scope { id, name, tensors: Vec::new() });
    }

    /// Pop the calling thread's current scope, disposing every tensor
    /// allocated inside it except kept tensors, variables, tape-referenced
    /// tensors, and the ids in `keep_ids` (which move to the parent scope).
    pub fn end_scope(&self, keep_ids: &[usize]) {
        self.collect_garbage();
        let tid = std::thread::current().id();
        let mut meta = self.inner.meta.lock();
        let scope = {
            let stack = match meta.scopes.get_mut(&tid) {
                Some(s) => s,
                None => return,
            };
            match stack.pop() {
                Some(s) => s,
                None => return,
            }
        };
        if meta.scopes.get(&tid).is_some_and(|s| s.is_empty()) {
            meta.scopes.remove(&tid);
        }
        let parent = meta.scopes.get(&tid).and_then(|s| s.last()).map(|s| s.id);
        let mut to_dispose = Vec::new();
        let mut to_parent = Vec::new();
        for id in &scope.tensors {
            let shard = self.tensor_shard(*id).lock();
            let rec = match shard.get(id) {
                Some(r) => r,
                None => continue, // already disposed
            };
            // Tensors may have been re-homed (kept) since creation.
            if rec.scope != Some(scope.id) {
                continue;
            }
            let survive = rec.kept
                || rec.variable
                || keep_ids.contains(id)
                || meta.kept_by_tape.contains(id);
            if survive {
                to_parent.push(*id);
            } else {
                to_dispose.push(*id);
            }
        }
        for id in to_parent {
            if let Some(rec) = self.tensor_shard(id).lock().get_mut(&id) {
                rec.scope = parent;
            }
            if let Some(p) = meta.scopes.get_mut(&tid).and_then(|s| s.last_mut()) {
                p.tensors.push(id);
            }
        }
        drop(meta);
        for id in to_dispose {
            self.dispose_tensor(id);
        }
        let _ = scope.name;
    }

    /// Execute `f` inside a memory scope and dispose every intermediate
    /// tensor it allocated, except those referenced by the return value —
    /// `tf.tidy()` (paper Sec 3.7). Scopes are per-thread: concurrent
    /// `tidy` calls on different threads are fully independent.
    pub fn tidy<R: TidyOutput>(&self, f: impl FnOnce() -> R) -> R {
        self.start_scope("tidy");
        let out = f();
        self.end_scope(&out.tensor_ids());
        out
    }

    /// Number of tensors registered so far in the calling thread's current
    /// scope (0 without a scope). Pair with [`Engine::trim_scope`] for
    /// cheap composite-op cleanup on a hot path.
    pub fn scope_mark(&self) -> usize {
        let meta = self.inner.meta.lock();
        meta.scopes
            .get(&std::thread::current().id())
            .and_then(|s| s.last())
            .map(|s| s.tensors.len())
            .unwrap_or(0)
    }

    /// Dispose every tensor registered in the current scope from index
    /// `mark` onward, except `keep_id` and kept/variable/tape-referenced
    /// tensors. Semantically a `tidy` wrapped around just those
    /// registrations, but without the scope push/pop, parent re-homing, or
    /// garbage pass — the plan executor uses this to clean up a composite
    /// op's internal alias handles at a fraction of a nested scope's cost.
    pub fn trim_scope(&self, mark: usize, keep_id: usize) {
        let mut to_dispose = Vec::new();
        {
            let mut meta = self.inner.meta.lock();
            let tid = std::thread::current().id();
            let tail = {
                let scope = match meta.scopes.get_mut(&tid).and_then(|s| s.last_mut()) {
                    Some(s) => s,
                    None => return,
                };
                if mark >= scope.tensors.len() {
                    return;
                }
                scope.tensors.split_off(mark)
            };
            let mut survivors = Vec::new();
            for id in tail {
                if id == keep_id {
                    survivors.push(id);
                    continue;
                }
                let survive = {
                    let shard = self.tensor_shard(id).lock();
                    match shard.get(&id) {
                        None => continue, // already disposed
                        Some(rec) => rec.kept || rec.variable,
                    }
                } || meta.kept_by_tape.contains(&id);
                if survive {
                    survivors.push(id);
                } else {
                    to_dispose.push(id);
                }
            }
            if !survivors.is_empty() {
                if let Some(scope) = meta.scopes.get_mut(&tid).and_then(|s| s.last_mut()) {
                    scope.tensors.extend(survivors);
                }
            }
        }
        for id in to_dispose {
            self.dispose_tensor(id);
        }
    }

    // --- tape --------------------------------------------------------------

    pub(crate) fn push_tape(&self) {
        let mut meta = self.inner.meta.lock();
        meta.tape_stack.push(Tape::new());
        self.inner.tape_active.store(true, Ordering::Release);
    }

    /// Pop the active tape. Clears the tape-keep set when the stack empties.
    pub(crate) fn pop_tape(&self) -> Tape {
        let (tape, _leftover): (Tape, Vec<usize>) = {
            let mut meta = self.inner.meta.lock();
            let tape = meta.tape_stack.pop().expect("tape stack underflow");
            let leftover = if meta.tape_stack.is_empty() {
                self.inner.tape_active.store(false, Ordering::Release);
                meta.kept_by_tape.drain().collect()
            } else {
                Vec::new()
            };
            (tape, leftover)
        };
        // Tape node drops (and the saved tensor handle drops inside) happen
        // here, outside the meta lock, via the caller dropping `tape`.
        tape
    }

    pub(crate) fn pause_recording<R>(&self, f: impl FnOnce() -> R) -> R {
        {
            self.inner.meta.lock().recording_paused = true;
        }
        let r = f();
        {
            self.inner.meta.lock().recording_paused = false;
        }
        r
    }

    #[allow(dead_code)] // diagnostic helper for composite ops
    pub(crate) fn tape_active(&self) -> bool {
        let meta = self.inner.meta.lock();
        !meta.tape_stack.is_empty() && !meta.recording_paused
    }

    // --- diagnostics ---------------------------------------------------------

    /// Engine-plus-backend memory snapshot (`tf.memory()`).
    pub fn memory(&self) -> MemoryInfo {
        let backend = self.backend();
        self.collect_garbage();
        let table = self.inner.backends.read();
        MemoryInfo {
            num_tensors: self.inner.num_tensors.load(Ordering::SeqCst),
            num_data_buffers: self.inner.num_data.load(Ordering::SeqCst),
            num_bytes: self.inner.num_bytes.load(Ordering::SeqCst),
            backend: backend.memory(),
            degradations: self.inner.degradations.load(Ordering::SeqCst),
            current_backend: table
                .current
                .map(|i| table.entries[i].0.clone())
                .unwrap_or_default(),
        }
    }

    /// Count of live tensors (`tf.memory().numTensors`).
    pub fn num_tensors(&self) -> usize {
        self.collect_garbage();
        self.inner.num_tensors.load(Ordering::SeqCst)
    }

    /// High-water mark of live bytes since engine creation or the last
    /// [`Engine::reset_peak_bytes`]. Always maintained (one relaxed
    /// `fetch_max` per allocation), unlike [`Engine::profile`]'s peak which
    /// only tracks inside a profiling window — memory planners and benches
    /// read this without paying for kernel-log collection.
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak_bytes.load(Ordering::Relaxed)
    }

    /// Reset the peak-bytes high-water mark to the current live bytes, so a
    /// subsequent [`Engine::peak_bytes`] measures only the window after this
    /// call.
    pub fn reset_peak_bytes(&self) {
        self.inner
            .peak_bytes
            .store(self.inner.num_bytes.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Whether a gradient tape is currently recording on this thread's
    /// engine (and not paused). Execution planners use this to fall back to
    /// tape-safe paths: eager intermediate disposal would destroy tensors
    /// the tape still references.
    pub fn is_recording(&self) -> bool {
        if !self.inner.tape_active.load(Ordering::Acquire) {
            return false;
        }
        self.tape_active()
    }

    /// Enable or disable NaN-checking debug mode (paper Sec 3.8).
    pub fn set_debug(&self, on: bool) {
        self.inner.debug.store(on, Ordering::Relaxed);
    }

    /// Whether NaN-checking debug mode is on.
    pub fn debug(&self) -> bool {
        self.inner.debug.load(Ordering::Relaxed)
    }

    /// Profile the memory and kernel behaviour of `f` (`tf.profile`).
    ///
    /// Kernels run by *any* thread while the window is open are recorded
    /// (into per-thread-striped buffers, folded here in dispatch order),
    /// so `f` may fan work out across threads as long as it joins them
    /// before returning. One profile window at a time per engine.
    pub fn profile<R>(&self, f: impl FnOnce() -> R) -> (R, ProfileInfo) {
        let p = &self.inner.profile;
        for stripe in &p.kernels {
            stripe.lock().clear();
        }
        p.new_tensors.store(0, Ordering::Relaxed);
        p.new_bytes.store(0, Ordering::Relaxed);
        p.peak_tensors.store(self.inner.num_tensors.load(Ordering::SeqCst), Ordering::Relaxed);
        p.peak_bytes.store(self.inner.num_bytes.load(Ordering::SeqCst), Ordering::Relaxed);
        p.seq.store(0, Ordering::Relaxed);
        self.inner.profiling.store(true, Ordering::Release);
        let r = f();
        self.inner.profiling.store(false, Ordering::Release);
        let mut ordered: Vec<(u64, KernelProfile)> = Vec::new();
        for stripe in &p.kernels {
            ordered.append(&mut stripe.lock());
        }
        ordered.sort_by_key(|(seq, _)| *seq);
        (
            r,
            ProfileInfo {
                new_tensors: p.new_tensors.load(Ordering::Relaxed),
                new_bytes: p.new_bytes.load(Ordering::Relaxed),
                peak_tensors: p.peak_tensors.load(Ordering::Relaxed),
                peak_bytes: p.peak_bytes.load(Ordering::Relaxed),
                kernels: ordered.into_iter().map(|(_, k)| k).collect(),
            },
        )
    }

    /// Time `f`, reporting wall time and backend kernel time (`tf.time`).
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> (R, TimeInfo) {
        let backend = self.backend();
        backend.begin_timing();
        let t0 = Instant::now();
        let r = f();
        let KernelTiming { kernel_ms } = backend.end_timing();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (r, TimeInfo { wall_ms, kernel_ms })
    }
}

/// Types that can be returned from [`Engine::tidy`]: the engine must be able
/// to see which tensors the return value references so it can keep them.
pub trait TidyOutput {
    /// Ids of the tensors referenced by this value.
    fn tensor_ids(&self) -> Vec<usize>;
}

impl TidyOutput for () {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for Tensor {
    fn tensor_ids(&self) -> Vec<usize> {
        vec![self.id()]
    }
}

impl TidyOutput for Vec<Tensor> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.iter().map(|t| t.id()).collect()
    }
}

impl<const N: usize> TidyOutput for [Tensor; N] {
    fn tensor_ids(&self) -> Vec<usize> {
        self.iter().map(|t| t.id()).collect()
    }
}

impl<T: TidyOutput> TidyOutput for Option<T> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.as_ref().map(|t| t.tensor_ids()).unwrap_or_default()
    }
}

impl<T: TidyOutput> TidyOutput for Result<T> {
    fn tensor_ids(&self) -> Vec<usize> {
        self.as_ref().map(|t| t.tensor_ids()).unwrap_or_default()
    }
}

impl<A: TidyOutput, B: TidyOutput> TidyOutput for (A, B) {
    fn tensor_ids(&self) -> Vec<usize> {
        let mut v = self.0.tensor_ids();
        v.extend(self.1.tensor_ids());
        v
    }
}

impl<A: TidyOutput, B: TidyOutput, C: TidyOutput> TidyOutput for (A, B, C) {
    fn tensor_ids(&self) -> Vec<usize> {
        let mut v = self.0.tensor_ids();
        v.extend(self.1.tensor_ids());
        v.extend(self.2.tensor_ids());
        v
    }
}

impl TidyOutput for f32 {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for Vec<f32> {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for usize {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for bool {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for String {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl TidyOutput for f64 {
    fn tensor_ids(&self) -> Vec<usize> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuBackend;
    use crate::ops;

    /// An engine with two CPU-identical tiers: "gpu" (priority 2, default)
    /// and "cpu" (priority 1, the degradation target).
    fn two_tier_engine() -> Engine {
        let e = Engine::new();
        e.register_backend("gpu", Arc::new(CpuBackend::new()), 2);
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn emit_scalar(backend: &dyn Backend, value: f32) -> Result<Vec<(DataId, Shape, DType)>> {
        let id = backend.register(TensorData::F32(vec![value]), DType::F32);
        Ok(vec![(id, Shape::new(vec![1]), DType::F32)])
    }

    #[test]
    fn transient_failure_retries_in_place_without_degrading() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Flaky",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls < MAX_TRANSIENT_ATTEMPTS {
                        Err(Error::resource_exhausted("gpu", "simulated pressure"))
                    } else {
                        emit_scalar(b, 7.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, MAX_TRANSIENT_ATTEMPTS);
        assert_eq!(e.degradations(), 0, "in-place retry must not degrade");
        assert_eq!(e.backend_name(), "gpu");
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![7.0]);
    }

    #[test]
    fn context_loss_degrades_immediately_with_event() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "MatMul",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls == 1 {
                        Err(Error::context_lost("gpu"))
                    } else {
                        emit_scalar(b, 1.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, 2, "context loss must skip in-place retries");
        assert_eq!(e.degradations(), 1);
        assert_eq!(e.backend_name(), "cpu");
        let events = e.degradation_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kernel, "MatMul");
        assert_eq!(events[0].from_backend, "gpu");
        assert_eq!(events[0].to_backend, "cpu");
        assert!(events[0].reason.contains("lost"), "reason: {}", events[0].reason);
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![1.0]);
        let mem = e.memory();
        assert_eq!(mem.degradations, 1);
        assert_eq!(mem.current_backend, "cpu");
    }

    #[test]
    fn three_rung_ladder_walks_in_order_and_promotes_back() {
        let e = Engine::new();
        e.register_backend_ladder(vec![
            ("webgpu".to_string(), Arc::new(CpuBackend::new()) as Arc<dyn Backend>),
            ("webgl".to_string(), Arc::new(CpuBackend::new())),
            ("cpu".to_string(), Arc::new(CpuBackend::new())),
        ]);
        assert_eq!(e.backend_ladder(), vec!["webgpu", "webgl", "cpu"]);
        assert_eq!(e.backend_name(), "webgpu", "head of the ladder is the default");
        // The top two rungs lose their device in turn: the kernel walks
        // webgpu → webgl → cpu and succeeds with no caller-visible error.
        let out = e
            .run_kernel(
                "MatMul",
                &[],
                &mut |b, _| match e.backend_name().as_str() {
                    "webgpu" => Err(Error::context_lost("webgpu")),
                    "webgl" => Err(Error::context_lost("webgl")),
                    _ => emit_scalar(b, 9.0),
                },
                None,
            )
            .unwrap();
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![9.0]);
        assert_eq!(e.degradations(), 2);
        let events = e.degradation_events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].from_backend.as_str(), events[0].to_backend.as_str()), ("webgpu", "webgl"));
        assert_eq!((events[1].from_backend.as_str(), events[1].to_backend.as_str()), ("webgl", "cpu"));
        let health = e.backend_health();
        assert!(!health.at_preferred);
        assert_eq!(health.current_backend, "cpu");
        assert_eq!(health.preferred_backend, "webgpu");
        // Re-admission climbs back to the head of the ladder.
        assert_eq!(e.promote_backend().as_deref(), Some("webgpu"));
        assert!(e.backend_health().at_preferred);
    }

    #[test]
    fn exhausted_transient_retries_fall_back_to_next_backend() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Oom",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls <= MAX_TRANSIENT_ATTEMPTS {
                        Err(Error::resource_exhausted("gpu", "texture pool exhausted"))
                    } else {
                        emit_scalar(b, 2.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, MAX_TRANSIENT_ATTEMPTS + 1);
        assert_eq!(e.degradations(), 1);
        assert_eq!(e.backend_name(), "cpu");
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![2.0]);
    }

    #[test]
    fn kernel_unsupported_degrades_without_retrying() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let out = e
            .run_kernel(
                "Conv2D",
                &[],
                &mut |b, _| {
                    calls += 1;
                    if calls == 1 {
                        Err(Error::kernel_unsupported("gpu", "Conv2D"))
                    } else {
                        emit_scalar(b, 3.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(calls, 2, "unsupported kernels are not transient");
        assert_eq!(e.degradations(), 1);
        assert_eq!(out[0].to_f32_vec().unwrap(), vec![3.0]);
    }

    #[test]
    fn non_degradable_error_propagates_untouched() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let err = e
            .run_kernel(
                "Bad",
                &[],
                &mut |_, _| {
                    calls += 1;
                    Err(Error::backend("gpu", "driver bug"))
                },
                None,
            )
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(e.degradations(), 0);
        assert_eq!(e.backend_name(), "gpu", "fatal errors must not switch backends");
        assert!(matches!(err, Error::Backend { .. }));
    }

    #[test]
    fn degradation_stops_when_no_fallback_is_left() {
        let e = two_tier_engine();
        let mut calls = 0u32;
        let err = e
            .run_kernel(
                "Doomed",
                &[],
                &mut |_, _| {
                    calls += 1;
                    Err(Error::context_lost("everything"))
                },
                None,
            )
            .unwrap_err();
        // One failure per tier: gpu degrades to cpu, cpu has nowhere to go.
        assert_eq!(calls, 2);
        assert_eq!(e.degradations(), 1);
        assert!(matches!(err, Error::ContextLost { .. }));
    }

    #[test]
    fn inputs_migrate_to_fallback_backend_after_degradation() {
        let e = two_tier_engine();
        let x = e.tensor_1d(&[1.0, 2.0]).unwrap(); // lives on "gpu"
        // Burn the gpu tier: the kernel fails on both tiers, but the
        // degradation it causes sticks.
        let _ = e.run_kernel("Burn", &[], &mut |_, _| Err(Error::context_lost("gpu")), None);
        assert_eq!(e.backend_name(), "cpu");
        // First use on the cpu tier migrates x's data across backends.
        let y = ops::add(&x, &x).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![2.0, 4.0]);
        assert_eq!(e.degradations(), 1);
    }

    #[test]
    fn disposed_input_mid_list_unpins_earlier_inputs() {
        // A kernel whose second input is disposed must release the pin it
        // took on the first input (no refcount leak).
        let e = two_tier_engine();
        let a = e.tensor_1d(&[1.0]).unwrap();
        let b = e.tensor_1d(&[2.0]).unwrap();
        b.dispose();
        let err = e
            .run_kernel("Pinned", &[&a, &b], &mut |bk, _| emit_scalar(bk, 0.0), None)
            .unwrap_err();
        assert!(matches!(err, Error::TensorDisposed { .. }));
        // The pin on `a` was released: disposing it now frees its bytes.
        let before = e.memory().num_bytes;
        a.dispose();
        assert_eq!(e.memory().num_bytes, before - 4);
        assert_eq!(e.num_tensors(), 0);
    }

    #[test]
    fn tidy_scopes_are_per_thread() {
        let e = two_tier_engine();
        let e2 = e.clone();
        // A scope left open on a worker thread must not capture tensors
        // created later on the main thread.
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            e2.start_scope("worker");
            let t = e2.tensor_1d(&[1.0]).unwrap();
            started_tx.send(()).unwrap();
            done_rx.recv().unwrap();
            e2.end_scope(&[]);
            assert!(t.is_disposed(), "worker scope disposes its own tensor");
        });
        started_rx.recv().unwrap();
        let mine = e.tensor_1d(&[5.0]).unwrap();
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        assert!(!mine.is_disposed(), "main-thread tensor survives the worker's scope");
        assert_eq!(mine.to_f32_vec().unwrap(), vec![5.0]);
        mine.dispose();
        assert_eq!(e.num_tensors(), 0);
    }

    #[test]
    fn backend_health_tracks_degradation_and_promotion() {
        let e = two_tier_engine();
        let h = e.backend_health();
        assert_eq!(h.current_backend, "gpu");
        assert_eq!(h.preferred_backend, "gpu");
        assert!(h.at_preferred);
        assert_eq!(h.degradation_generation, 0);
        assert!(e.promote_backend().is_none(), "already at the preferred backend");

        // A context loss degrades to the cpu tier.
        let out = e
            .run_kernel(
                "Doomed",
                &[],
                &mut |b, _| {
                    if e.backend_health().at_preferred {
                        Err(Error::context_lost("gpu"))
                    } else {
                        emit_scalar(b, 3.0)
                    }
                },
                None,
            )
            .unwrap();
        assert_eq!(out[0].to_scalar().unwrap(), 3.0);
        let h = e.backend_health();
        assert_eq!(h.current_backend, "cpu");
        assert_eq!(h.preferred_backend, "gpu");
        assert!(!h.at_preferred);
        assert_eq!(h.degradation_generation, 1);

        // Promotion (post-recovery) returns the engine to the fast tier.
        assert_eq!(e.promote_backend().as_deref(), Some("gpu"));
        assert!(e.backend_health().at_preferred);
        // The generation only counts degradations, not promotions.
        assert_eq!(e.degradation_generation(), 1);
        out[0].dispose();
    }

    #[test]
    fn peak_bytes_tracks_high_water_and_resets() {
        let e = two_tier_engine();
        e.reset_peak_bytes();
        let a = e.tensor_1d(&[1.0, 2.0]).unwrap(); // 8 bytes
        let b = e.tensor_1d(&[3.0, 4.0]).unwrap(); // 8 bytes
        assert_eq!(e.peak_bytes(), 16);
        a.dispose();
        b.dispose();
        // The high-water mark survives disposals...
        assert_eq!(e.peak_bytes(), 16);
        // ...until explicitly reset to the (now zero) live bytes.
        e.reset_peak_bytes();
        assert_eq!(e.peak_bytes(), 0);
        let c = e.tensor_1d(&[5.0]).unwrap();
        assert_eq!(e.peak_bytes(), 4);
        c.dispose();
    }
}
