//! # webml-core
//!
//! An eager tensor-computation engine with automatic differentiation and
//! pluggable backends — a Rust reproduction of the core of *TensorFlow.js:
//! Machine Learning for the Web and Beyond* (Smilkov et al., SysML 2019).
//!
//! The crate provides:
//!
//! - [`tensor::Tensor`]: immutable handles decoupled from refcounted data
//!   containers, making `reshape`/`clone` free (paper Sec 3.4);
//! - [`engine::Engine`]: kernel dispatch, `tidy()` memory scopes (Sec 3.7),
//!   the gradient tape (Sec 3.5), profiling and NaN-debug mode (Sec 3.8);
//! - [`ops`]: the Ops API — synchronous ops whose results may still be
//!   computing on the device; only `data()`/`data_sync()` synchronize
//!   (Sec 3.6);
//! - [`backend::Backend`]: the device abstraction implemented by the
//!   bundled [`cpu::CpuBackend`] and by the webgl/native backend crates;
//! - [`asyncx::EventLoop`]: a browser main-thread simulator reproducing the
//!   Figure 2/3 timelines.
//!
//! ## Example
//!
//! ```
//! use webml_core::{global, ops};
//!
//! # fn main() -> webml_core::error::Result<()> {
//! let engine = global::engine();
//! let (y, grads) = engine.tidy(|| {
//!     let x = engine.tensor_1d(&[1.0, 2.0, 3.0])?;
//!     engine.value_and_grads(&[&x], || ops::sum(&ops::square(&x)?, None, false))
//! })?;
//! assert_eq!(y.to_scalar()?, 14.0);
//! assert_eq!(grads[0].to_f32_vec()?, vec![2.0, 4.0, 6.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asyncx;
pub mod backend;
pub mod buffer;
pub mod conv_util;
pub mod cpu;
pub mod dtype;
pub mod engine;
pub mod error;
pub mod global;
pub mod grads;
pub mod kernels;
pub mod ops;
pub mod quant;
pub mod shape;
pub mod tape;
pub mod tensor;
pub mod variable;

pub use backend::{Backend, DataFuture, DataId, FenceToken, FusedStep};
pub use buffer::TensorBuffer;
pub use dtype::{DType, TensorData};
pub use engine::{
    BackendHealth, DegradationEvent, Engine, MemoryInfo, MemoryPolicy, ProfileInfo, TimeInfo,
};
pub use error::{Error, Result};
pub use quant::QuantParams;
pub use shape::Shape;
pub use tensor::Tensor;
pub use variable::Variable;
