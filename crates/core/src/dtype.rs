//! Data types and host-side tensor storage.
//!
//! TensorFlow.js backs tensors with JavaScript `TypedArray`s
//! (`Float32Array`, `Int32Array`, `Uint8Array`). [`TensorData`] is the Rust
//! analogue: a dtype-tagged owned buffer. Half precision ([`DType::F16`]) is
//! stored as `f32` on the host but rounded through the IEEE 754 binary16
//! format by devices that only support 16-bit float textures (paper
//! Sec 4.1.3), via [`f32_to_f16_bits`] / [`f16_bits_to_f32`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum DType {
    /// 32-bit IEEE float (the default, like tfjs `'float32'`).
    #[default]
    F32,
    /// 16-bit IEEE float, emulated: stored as f32, rounded on f16-only devices.
    F16,
    /// 32-bit signed integer (tfjs `'int32'`).
    I32,
    /// Boolean, stored one byte per element (tfjs `'bool'`).
    Bool,
    /// Unsigned byte, used for quantized weights and image data.
    U8,
}

impl DType {
    /// Size in bytes of one element when stored on a backend.
    pub fn byte_size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I32 => 4,
            DType::Bool | DType::U8 => 1,
        }
    }

    /// Whether this is a floating-point dtype.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16)
    }

    /// The dtype arithmetic between two operands promotes to
    /// (float beats int beats bool; f32 beats f16).
    pub fn promote(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (F32, _) | (_, F32) => F32,
            (F16, _) | (_, F16) => F16,
            (I32, _) | (_, I32) => I32,
            (U8, _) | (_, U8) => U8,
            (Bool, Bool) => Bool,
        }
    }

    /// The canonical tfjs-style name (`"float32"`, `"int32"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::F16 => "float16",
            DType::I32 => "int32",
            DType::Bool => "bool",
            DType::U8 => "uint8",
        }
    }

    /// Parse a tfjs-style dtype name.
    ///
    /// # Errors
    /// Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<DType> {
        match name {
            "float32" => Some(DType::F32),
            "float16" => Some(DType::F16),
            "int32" => Some(DType::I32),
            "bool" => Some(DType::Bool),
            "uint8" => Some(DType::U8),
            _ => None,
        }
    }
}


impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Owned, dtype-tagged host buffer backing a tensor — the analogue of a
/// JavaScript `TypedArray`.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// `Float32Array`: also used to carry F16 values on the host.
    F32(Vec<f32>),
    /// `Int32Array`.
    I32(Vec<i32>),
    /// `Uint8Array`: carries both `Bool` and `U8` tensors.
    U8(Vec<u8>),
}

impl TensorData {
    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::I32(v) => v.len(),
            TensorData::U8(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a zero-filled buffer appropriate for `dtype`.
    pub fn zeros(dtype: DType, len: usize) -> TensorData {
        match dtype {
            DType::F32 | DType::F16 => TensorData::F32(vec![0.0; len]),
            DType::I32 => TensorData::I32(vec![0; len]),
            DType::Bool | DType::U8 => TensorData::U8(vec![0; len]),
        }
    }

    /// View the contents as f64 for comparison/printing regardless of dtype.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            TensorData::F32(v) => v.iter().map(|&x| x as f64).collect(),
            TensorData::I32(v) => v.iter().map(|&x| x as f64).collect(),
            TensorData::U8(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }

    /// Convert the contents to a `Vec<f32>` (copies).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self {
            TensorData::F32(v) => v.clone(),
            TensorData::I32(v) => v.iter().map(|&x| x as f32).collect(),
            TensorData::U8(v) => v.iter().map(|&x| x as f32).collect(),
        }
    }

    /// Convert the contents to a `Vec<i32>` (copies, truncating floats).
    pub fn to_i32_vec(&self) -> Vec<i32> {
        match self {
            TensorData::F32(v) => v.iter().map(|&x| x as i32).collect(),
            TensorData::I32(v) => v.clone(),
            TensorData::U8(v) => v.iter().map(|&x| x as i32).collect(),
        }
    }

    /// Borrow as `&[f32]`, if this is an F32 buffer.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            TensorData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i32]`, if this is an I32 buffer.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            TensorData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[u8]`, if this is a U8 buffer.
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            TensorData::U8(v) => Some(v),
            _ => None,
        }
    }

    /// Element at flat index `i`, widened to f64.
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            TensorData::F32(v) => v[i] as f64,
            TensorData::I32(v) => v[i] as f64,
            TensorData::U8(v) => v[i] as f64,
        }
    }

    /// Whether any element is NaN (used by the NaN-debug mode, paper 3.8).
    pub fn has_nan(&self) -> bool {
        match self {
            TensorData::F32(v) => v.iter().any(|x| x.is_nan()),
            _ => false,
        }
    }

    /// Cast the buffer into the representation for `dtype`.
    ///
    /// Float→`U8` is a **saturating** cast: values clamp to `[0, 255]` and
    /// round toward zero. NaN maps to 0 — the same policy as Rust's
    /// `as u8` and WebGL's unsigned-normalized texture stores. Callers for
    /// whom a silent NaN→0 would corrupt data (quantized image inputs)
    /// must validate first; [`Engine::tensor_u8`](crate::Engine) and the
    /// quantized-weight path reject non-finite inputs before ever reaching
    /// this cast.
    pub fn cast(&self, dtype: DType) -> TensorData {
        match dtype {
            DType::F32 | DType::F16 => TensorData::F32(self.to_f32_vec()),
            DType::I32 => TensorData::I32(self.to_i32_vec()),
            DType::Bool => TensorData::U8(
                self.to_f64_vec().iter().map(|&x| (x != 0.0) as u8).collect(),
            ),
            DType::U8 => TensorData::U8(
                self.to_f64_vec().iter().map(|&x| x.clamp(0.0, 255.0) as u8).collect(),
            ),
        }
    }

    /// Index and value of the first non-finite element, if any. Used by
    /// tensor-creation paths that must reject NaN/±inf before a lossy
    /// integer cast (the float→U8 cast silently maps NaN to 0).
    pub fn first_non_finite(&self) -> Option<(usize, f64)> {
        match self {
            TensorData::F32(v) => v
                .iter()
                .enumerate()
                .find(|(_, x)| !x.is_finite())
                .map(|(i, &x)| (i, x as f64)),
            TensorData::I32(_) | TensorData::U8(_) => None,
        }
    }

    /// Total bytes when stored with the given dtype.
    pub fn byte_len(&self, dtype: DType) -> usize {
        self.len() * dtype.byte_size()
    }
}

impl From<Vec<f32>> for TensorData {
    fn from(v: Vec<f32>) -> Self {
        TensorData::F32(v)
    }
}

impl From<Vec<i32>> for TensorData {
    fn from(v: Vec<i32>) -> Self {
        TensorData::I32(v)
    }
}

impl From<Vec<u8>> for TensorData {
    fn from(v: Vec<u8>) -> Self {
        TensorData::U8(v)
    }
}

/// Convert an `f32` to IEEE 754 binary16 bits (round-to-nearest-even).
///
/// Used by the WebGL simulator to emulate 16-bit float textures on iOS-class
/// devices (paper Sec 4.1.3).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let mut exp = ((bits >> 23) & 0xff) as i32;
    let mut mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let m = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | m as u16;
    }
    // Re-bias from 127 to 15.
    exp -= 127 - 15;
    if exp >= 0x1f {
        // Overflow to infinity.
        return sign | 0x7c00;
    }
    if exp <= 0 {
        if exp < -10 {
            // Underflows to zero even as a subnormal.
            return sign;
        }
        // Subnormal: shift mantissa (with implicit leading 1) right.
        mant |= 0x0080_0000;
        let shift = (14 - exp) as u32;
        let half = 1u32 << (shift - 1);
        let mut m = mant >> shift;
        // Round to nearest even.
        if (mant & (half * 2 - 1)) > half || ((mant & (half * 2 - 1)) == half && (m & 1) == 1) {
            m += 1;
        }
        return sign | m as u16;
    }
    // Normal: round mantissa from 23 to 10 bits, to nearest even.
    let mut m = mant >> 13;
    let rem = mant & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
        m += 1;
        if m == 0x400 {
            m = 0;
            exp += 1;
            if exp >= 0x1f {
                return sign | 0x7c00;
            }
        }
    }
    sign | ((exp as u16) << 10) | m as u16
}

/// Convert IEEE 754 binary16 bits to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            m &= 0x03ff;
            sign | (((127 - 15 - e) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Round an `f32` through binary16 precision (the f16-texture write path).
pub fn round_to_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_prefers_float() {
        assert_eq!(DType::F32.promote(DType::I32), DType::F32);
        assert_eq!(DType::I32.promote(DType::Bool), DType::I32);
        assert_eq!(DType::Bool.promote(DType::Bool), DType::Bool);
        assert_eq!(DType::F16.promote(DType::I32), DType::F16);
        assert_eq!(DType::F32.promote(DType::F16), DType::F32);
    }

    #[test]
    fn dtype_names_round_trip() {
        for d in [DType::F32, DType::F16, DType::I32, DType::Bool, DType::U8] {
            assert_eq!(DType::from_name(d.name()), Some(d));
        }
        assert_eq!(DType::from_name("complex64"), None);
    }

    #[test]
    fn f16_round_trip_exact_values() {
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(round_to_f16(x), x, "value {x} should be exactly representable");
        }
    }

    #[test]
    fn f16_overflow_is_infinite() {
        assert!(round_to_f16(70000.0).is_infinite());
        assert!(round_to_f16(-70000.0).is_infinite());
    }

    #[test]
    fn f16_underflow_is_zero() {
        // The paper's epsilon problem: 1e-8 is not representable in f16.
        assert_eq!(round_to_f16(1e-8), 0.0);
        // 1e-4 (the adjusted epsilon) survives.
        assert!(round_to_f16(1e-4) > 0.0);
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive f16 subnormal is 2^-24 ≈ 5.96e-8.
        let tiny = f16_bits_to_f32(1);
        assert!(tiny > 0.0);
        assert_eq!(f32_to_f16_bits(tiny), 1);
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(round_to_f16(f32::NAN).is_nan());
        assert!(round_to_f16(f32::INFINITY).is_infinite());
    }

    #[test]
    fn f16_rounding_is_nearest() {
        // 1.0 + 2^-11 rounds to 1.0 (nearest even); 1.0 + 2^-10 is exact.
        let ulp = (2.0f32).powi(-10);
        assert_eq!(round_to_f16(1.0 + ulp / 2.0), 1.0);
        assert_eq!(round_to_f16(1.0 + ulp), 1.0 + ulp);
    }

    #[test]
    fn tensor_data_cast_bool() {
        let d = TensorData::F32(vec![0.0, 1.5, -2.0]);
        assert_eq!(d.cast(DType::Bool), TensorData::U8(vec![0, 1, 1]));
    }

    #[test]
    fn u8_cast_policy_saturates_and_maps_nan_to_zero() {
        // The documented policy for the lossy float→U8 cast: clamp to
        // [0, 255], truncate, NaN → 0. Engine-level U8 tensor creation
        // rejects non-finite values *before* this cast; this test pins the
        // raw-cast behaviour so the policy cannot drift silently.
        let d = TensorData::F32(vec![-1.0, 0.0, 254.6, 300.0, f32::NAN, f32::INFINITY]);
        assert_eq!(d.cast(DType::U8), TensorData::U8(vec![0, 0, 254, 255, 0, 255]));
    }

    #[test]
    fn first_non_finite_finds_nan_and_inf() {
        assert_eq!(TensorData::F32(vec![1.0, 2.0]).first_non_finite(), None);
        let (i, v) = TensorData::F32(vec![1.0, f32::NAN]).first_non_finite().unwrap();
        assert_eq!(i, 1);
        assert!(v.is_nan());
        let (i, _) = TensorData::F32(vec![f32::NEG_INFINITY]).first_non_finite().unwrap();
        assert_eq!(i, 0);
        assert_eq!(TensorData::I32(vec![7]).first_non_finite(), None);
    }

    #[test]
    fn tensor_data_nan_detection() {
        assert!(TensorData::F32(vec![1.0, f32::NAN]).has_nan());
        assert!(!TensorData::F32(vec![1.0, 2.0]).has_nan());
        assert!(!TensorData::I32(vec![1, 2]).has_nan());
    }

    #[test]
    fn zeros_matches_dtype() {
        assert_eq!(TensorData::zeros(DType::I32, 3), TensorData::I32(vec![0; 3]));
        assert_eq!(TensorData::zeros(DType::Bool, 2), TensorData::U8(vec![0; 2]));
        assert_eq!(TensorData::zeros(DType::F16, 2), TensorData::F32(vec![0.0; 2]));
    }
}
