//! A mutable host-side tensor builder (`tf.buffer()`).
//!
//! Tensors are immutable; a [`TensorBuffer`] accumulates values by
//! coordinate on the host and materializes a tensor once, avoiding
//! per-element op dispatch when assembling data procedurally.

use crate::dtype::{DType, TensorData};
use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// A mutable, host-resident n-dimensional value buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorBuffer {
    shape: Shape,
    dtype: DType,
    values: Vec<f32>,
}

impl TensorBuffer {
    /// A zero-initialized buffer.
    pub fn new(shape: impl Into<Shape>, dtype: DType) -> TensorBuffer {
        let shape = shape.into();
        let values = vec![0.0; shape.size()];
        TensorBuffer { shape, dtype, values }
    }

    /// The buffer's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The buffer's dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Set the value at N-D `coords`.
    ///
    /// # Errors
    /// Fails on rank mismatch or out-of-bounds coordinates.
    pub fn set(&mut self, coords: &[usize], value: f32) -> Result<()> {
        let idx = self.index_of(coords)?;
        self.values[idx] = value;
        Ok(())
    }

    /// Read the value at N-D `coords`.
    ///
    /// # Errors
    /// Fails on rank mismatch or out-of-bounds coordinates.
    pub fn get(&self, coords: &[usize]) -> Result<f32> {
        Ok(self.values[self.index_of(coords)?])
    }

    fn index_of(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.shape.rank() {
            return Err(Error::invalid(
                "TensorBuffer",
                format!("got {} coords for rank {}", coords.len(), self.shape.rank()),
            ));
        }
        for (axis, (&c, &d)) in coords.iter().zip(self.shape.dims()).enumerate() {
            if c >= d {
                return Err(Error::invalid(
                    "TensorBuffer",
                    format!("coordinate {c} out of bounds for axis {axis} (size {d})"),
                ));
            }
        }
        Ok(self.shape.flat_index(coords))
    }

    /// Mutable access to the flat values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// The flat values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Materialize the buffer as an immutable tensor on `engine`
    /// (`buffer.toTensor()`).
    ///
    /// # Errors
    /// Propagates tensor-creation errors.
    pub fn to_tensor(&self, engine: &Engine) -> Result<Tensor> {
        engine.make_tensor(TensorData::F32(self.values.clone()), self.shape.clone(), self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::test_engine;

    #[test]
    fn set_get_round_trip() {
        let mut b = TensorBuffer::new([2, 3], DType::F32);
        b.set(&[1, 2], 7.5).unwrap();
        b.set(&[0, 0], -1.0).unwrap();
        assert_eq!(b.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(b.get(&[0, 0]).unwrap(), -1.0);
        assert_eq!(b.get(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn bounds_and_rank_checks() {
        let mut b = TensorBuffer::new([2, 2], DType::F32);
        assert!(b.set(&[2, 0], 1.0).is_err());
        assert!(b.set(&[0], 1.0).is_err());
        assert!(b.get(&[0, 5]).is_err());
    }

    #[test]
    fn to_tensor_materializes_values_and_dtype() {
        let e = test_engine();
        let mut b = TensorBuffer::new([3], DType::I32);
        b.set(&[0], 1.9).unwrap();
        b.set(&[2], -2.0).unwrap();
        let t = b.to_tensor(&e).unwrap();
        assert_eq!(t.dtype(), DType::I32);
        assert_eq!(t.to_i32_vec().unwrap(), vec![1, 0, -2]);
    }

    #[test]
    fn scalar_buffer() {
        let e = test_engine();
        let mut b = TensorBuffer::new(Shape::scalar(), DType::F32);
        b.set(&[], 4.0).unwrap();
        assert_eq!(b.to_tensor(&e).unwrap().to_scalar().unwrap(), 4.0);
    }
}
