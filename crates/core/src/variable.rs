//! Mutable, trainable variables (`tf.variable`).
//!
//! A [`Variable`] owns a tensor that survives all `tidy` scopes and can be
//! re-assigned in place by optimizers.

use crate::error::{Error, Result};
use crate::shape::Shape;
use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

struct VariableInner {
    name: String,
    trainable: bool,
    value: Mutex<Tensor>,
}

/// A named, optionally trainable tensor container.
#[derive(Clone)]
pub struct Variable {
    inner: Arc<VariableInner>,
}

impl Variable {
    /// Wrap `initial` as a trainable variable. The tensor is marked kept so
    /// no `tidy` scope can dispose it.
    pub fn new(initial: Tensor, name: impl Into<String>) -> Variable {
        Self::with_trainable(initial, name, true)
    }

    /// Create a variable with an explicit `trainable` flag.
    pub fn with_trainable(initial: Tensor, name: impl Into<String>, trainable: bool) -> Variable {
        initial.engine().mark_variable(initial.id());
        let mut name = name.into();
        if name.is_empty() {
            name = format!("variable_{}", NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed));
        }
        Variable {
            inner: Arc::new(VariableInner { name, trainable, value: Mutex::new(initial) }),
        }
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether optimizers should update this variable.
    pub fn trainable(&self) -> bool {
        self.inner.trainable
    }

    /// A handle to the current value.
    pub fn value(&self) -> Tensor {
        self.inner.value.lock().clone()
    }

    /// Shape of the current value.
    pub fn shape(&self) -> Shape {
        self.inner.value.lock().shape()
    }

    /// Replace the value. The previous tensor is disposed; the new one is
    /// marked kept.
    ///
    /// # Errors
    /// Fails when the new value's shape differs from the current shape.
    pub fn assign(&self, new_value: Tensor) -> Result<()> {
        let mut slot = self.inner.value.lock();
        if new_value.shape_ref() != slot.shape_ref() {
            return Err(Error::shape(
                "Variable.assign",
                format!("cannot assign {} into variable of shape {}", new_value.shape(), slot.shape()),
            ));
        }
        new_value.engine().mark_variable(new_value.id());
        let old = std::mem::replace(&mut *slot, new_value);
        drop(slot);
        old.dispose();
        Ok(())
    }

    /// Dispose the variable's storage.
    pub fn dispose(&self) {
        self.inner.value.lock().dispose();
    }
}

impl std::fmt::Debug for Variable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Variable")
            .field("name", &self.inner.name)
            .field("trainable", &self.inner.trainable)
            .field("shape", &self.shape())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::test_engine;

    #[test]
    fn variable_survives_tidy() {
        let e = test_engine();
        e.tidy(|| {
            let t = e.tensor_1d(&[1.0, 2.0]).unwrap();
            Variable::new(t, "w");
            // Return nothing: the variable's tensor must still survive.
        });
        assert_eq!(e.num_tensors(), 1);
    }

    #[test]
    fn assign_replaces_and_disposes_old() {
        let e = test_engine();
        let v = Variable::new(e.tensor_1d(&[1.0]).unwrap(), "w");
        let old = v.value();
        v.assign(e.tensor_1d(&[2.0]).unwrap()).unwrap();
        assert!(old.is_disposed());
        assert_eq!(v.value().to_f32_vec().unwrap(), vec![2.0]);
        assert_eq!(e.num_tensors(), 1);
    }

    #[test]
    fn assign_shape_mismatch_errors() {
        let e = test_engine();
        let v = Variable::new(e.tensor_1d(&[1.0]).unwrap(), "w");
        assert!(v.assign(e.tensor_1d(&[1.0, 2.0]).unwrap()).is_err());
    }

    #[test]
    fn auto_names_are_unique() {
        let e = test_engine();
        let a = Variable::new(e.tensor_1d(&[1.0]).unwrap(), "");
        let b = Variable::new(e.tensor_1d(&[1.0]).unwrap(), "");
        assert_ne!(a.name(), b.name());
    }
}
