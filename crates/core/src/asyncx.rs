//! A browser main-thread (event-loop) simulator, used to reproduce the
//! timelines of Figures 2 and 3 of the paper.
//!
//! The browser UI thread must keep rendering frames (~60 fps). A blocking
//! `tensor.dataSync()` stalls it for the whole GPU computation (Figure 2);
//! the asynchronous `tensor.data()` releases it, so frames keep rendering
//! while the device works and the promise resolves at the end (Figure 3).
//! [`EventLoop`] renders simulated frames on the calling thread and records
//! the gaps between them, so the two read styles can be compared
//! quantitatively.

use crate::backend::DataFuture;
use crate::dtype::TensorData;
use crate::error::Result;
use std::time::{Duration, Instant};

/// Statistics of one simulated main-thread run.
#[derive(Debug, Clone, Default)]
pub struct TimelineReport {
    /// Total wall time of the run, in milliseconds.
    pub total_ms: f64,
    /// Timestamps (ms from start) when each frame was rendered.
    pub frame_times_ms: Vec<f64>,
    /// Number of frames rendered.
    pub frames_rendered: usize,
    /// Largest gap between consecutive frames (ms): the "jank" measure.
    /// Under a blocking read this approaches the full device time; under an
    /// async read it stays near the frame interval.
    pub longest_frame_gap_ms: f64,
    /// Milliseconds the main thread spent blocked inside a synchronous read.
    pub blocked_ms: f64,
    /// When the tensor data became available (ms from start).
    pub data_ready_at_ms: f64,
}

impl TimelineReport {
    fn finish(&mut self, start: Instant) {
        self.total_ms = start.elapsed().as_secs_f64() * 1e3;
        self.frames_rendered = self.frame_times_ms.len();
        let mut prev = 0.0;
        for &t in &self.frame_times_ms {
            self.longest_frame_gap_ms = self.longest_frame_gap_ms.max(t - prev);
            prev = t;
        }
        self.longest_frame_gap_ms = self.longest_frame_gap_ms.max(self.total_ms - prev);
    }
}

/// A simulated browser event loop rendering frames at a fixed interval.
#[derive(Debug, Clone, Copy)]
pub struct EventLoop {
    frame_interval: Duration,
}

impl Default for EventLoop {
    fn default() -> Self {
        // 60 fps.
        EventLoop { frame_interval: Duration::from_micros(16_667) }
    }
}

impl EventLoop {
    /// Event loop with a custom frame interval.
    pub fn new(frame_interval: Duration) -> EventLoop {
        EventLoop { frame_interval }
    }

    /// Reproduce **Figure 2**: enqueue device work via `enqueue` (which must
    /// return quickly, like an op call), then perform a *blocking* read with
    /// `read_sync`, then keep rendering frames until `tail` has elapsed.
    ///
    /// The main thread renders no frames while blocked, so
    /// `longest_frame_gap_ms` captures the stall.
    pub fn run_sync<T>(
        &self,
        enqueue: impl FnOnce() -> T,
        read_sync: impl FnOnce(&T) -> Result<TensorData>,
        tail: Duration,
    ) -> (Result<TensorData>, TimelineReport) {
        let start = Instant::now();
        let mut report = TimelineReport::default();
        self.render_frame(start, &mut report);
        let handle = enqueue();
        // Blocking read: the event loop cannot run.
        let t0 = Instant::now();
        let data = read_sync(&handle);
        report.blocked_ms = t0.elapsed().as_secs_f64() * 1e3;
        report.data_ready_at_ms = start.elapsed().as_secs_f64() * 1e3;
        // Tail frames after the data arrived.
        let tail_end = Instant::now() + tail;
        while Instant::now() < tail_end {
            self.render_frame(start, &mut report);
            std::thread::sleep(self.frame_interval);
        }
        report.finish(start);
        (data, report)
    }

    /// Reproduce **Figure 3**: enqueue device work returning a
    /// [`DataFuture`], then keep rendering frames while polling the future.
    /// The main thread never blocks; the promise resolves when the device is
    /// done.
    pub fn run_async(
        &self,
        enqueue: impl FnOnce() -> Result<DataFuture>,
        tail: Duration,
    ) -> (Result<TensorData>, TimelineReport) {
        let start = Instant::now();
        let mut report = TimelineReport::default();
        self.render_frame(start, &mut report);
        let future = match enqueue() {
            Ok(f) => f,
            Err(e) => {
                report.finish(start);
                return (Err(e), report);
            }
        };
        // Poll between frames, exactly like a promise callback scheduled on
        // the micro-task queue.
        let data = loop {
            if let Some(result) = future.poll() {
                report.data_ready_at_ms = start.elapsed().as_secs_f64() * 1e3;
                break result;
            }
            self.render_frame(start, &mut report);
            std::thread::sleep(self.frame_interval);
        };
        let tail_end = Instant::now() + tail;
        while Instant::now() < tail_end {
            self.render_frame(start, &mut report);
            std::thread::sleep(self.frame_interval);
        }
        report.finish(start);
        (data, report)
    }

    fn render_frame(&self, start: Instant, report: &mut TimelineReport) {
        report.frame_times_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DataFuture;

    #[test]
    fn sync_read_blocks_frames() {
        let lp = EventLoop::new(Duration::from_millis(2));
        let (data, report) = lp.run_sync(
            || (),
            |_| {
                // Simulate 40 ms of device work with a blocking read.
                std::thread::sleep(Duration::from_millis(40));
                Ok(TensorData::F32(vec![1.0]))
            },
            Duration::from_millis(10),
        );
        assert!(data.is_ok());
        assert!(report.blocked_ms >= 35.0, "blocked {} ms", report.blocked_ms);
        assert!(
            report.longest_frame_gap_ms >= 35.0,
            "sync read must cause a long frame gap, got {}",
            report.longest_frame_gap_ms
        );
    }

    #[test]
    fn async_read_keeps_frames_flowing() {
        let lp = EventLoop::new(Duration::from_millis(2));
        let (fut, promise) = DataFuture::pending();
        // Device thread resolves after 40 ms.
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            promise.complete(Ok(TensorData::F32(vec![2.0])));
        });
        let (data, report) = lp.run_async(move || Ok(fut), Duration::from_millis(10));
        worker.join().unwrap();
        assert_eq!(data.unwrap(), TensorData::F32(vec![2.0]));
        assert_eq!(report.blocked_ms, 0.0);
        assert!(
            report.longest_frame_gap_ms < 30.0,
            "async read must keep frames flowing, longest gap {}",
            report.longest_frame_gap_ms
        );
        assert!(report.frames_rendered >= 10);
        assert!(report.data_ready_at_ms >= 35.0);
    }
}
