//! The user-facing gradient API (paper Sec 3.5): eager differentiation in
//! the style of `tf.grad` / `tf.grads` / `tf.valueAndGrads`.
//!
//! While the supplied function runs, every kernel is recorded on a tape;
//! backpropagation then walks the tape in reverse over the nodes that lie on
//! a path from the requested inputs to the output. Because differentiation
//! is eager, native Rust `if`/`while` control flow works inside the closure
//! — no special control-flow ops are needed.

use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::ops;
use crate::tensor::Tensor;
use std::collections::HashMap;

impl Engine {
    /// Compute `f()` and the gradients of its scalar-ish output with respect
    /// to each tensor in `xs`.
    ///
    /// Inputs in `xs` that do not influence the output receive a zero
    /// gradient (TensorFlow.js throws in this case; returning zeros composes
    /// better with optimizers over partially-frozen variable sets).
    ///
    /// All intermediate tensors allocated by `f` and by backpropagation are
    /// disposed before returning; only the value and gradients survive.
    ///
    /// # Errors
    /// Propagates errors from `f` and from gradient functions, and fails if
    /// an op on the path has no registered gradient.
    pub fn value_and_grads(
        &self,
        xs: &[&Tensor],
        f: impl FnOnce() -> Result<Tensor>,
    ) -> Result<(Tensor, Vec<Tensor>)> {
        self.start_scope("grads");
        let result = self.value_and_grads_inner(xs, f);
        match &result {
            Ok((y, gs)) => {
                let mut keep: Vec<usize> = gs.iter().map(|g| g.id()).collect();
                keep.push(y.id());
                self.end_scope(&keep);
            }
            Err(_) => self.end_scope(&[]),
        }
        result
    }

    fn value_and_grads_inner(
        &self,
        xs: &[&Tensor],
        f: impl FnOnce() -> Result<Tensor>,
    ) -> Result<(Tensor, Vec<Tensor>)> {
        self.push_tape();
        let y = match f() {
            Ok(y) => y,
            Err(e) => {
                drop(self.pop_tape());
                return Err(e);
            }
        };
        let tape = self.pop_tape();

        let x_ids: Vec<usize> = xs.iter().map(|t| t.id()).collect();
        let path = tape.filter_nodes(&x_ids, &[y.id()]);

        // Seed dL/dy = 1.
        let mut grad_map: HashMap<usize, Tensor> = HashMap::new();
        grad_map.insert(y.id(), ops::ones_like(&y)?);

        for &i in path.iter().rev() {
            let node = &tape.nodes[i];
            // Assemble output gradients (zeros where nothing flowed yet).
            let mut dys = Vec::with_capacity(node.outputs.len());
            let mut any = false;
            for out in &node.outputs {
                match grad_map.get(&out.id()) {
                    Some(g) => {
                        any = true;
                        dys.push(g.clone());
                    }
                    None => dys.push(ops::zeros_like(out)?),
                }
            }
            if !any {
                continue;
            }
            let input_grads = (node.grad_fn)(&dys, &node.inputs, &node.outputs).map_err(|e| {
                match e {
                    Error::GradientNotDefined { .. } => Error::GradientNotDefined { op: node.kernel },
                    other => other,
                }
            })?;
            if input_grads.len() != node.inputs.len() {
                return Err(Error::invalid(
                    "grads",
                    format!(
                        "gradient of {} returned {} grads for {} inputs",
                        node.kernel,
                        input_grads.len(),
                        node.inputs.len()
                    ),
                ));
            }
            for (input, g) in node.inputs.iter().zip(input_grads) {
                if let Some(g) = g {
                    match grad_map.remove(&input.id()) {
                        Some(existing) => {
                            grad_map.insert(input.id(), ops::add(&existing, &g)?);
                        }
                        None => {
                            grad_map.insert(input.id(), g);
                        }
                    }
                }
            }
        }

        let mut grads = Vec::with_capacity(xs.len());
        for x in xs {
            match grad_map.get(&x.id()) {
                Some(g) => grads.push(g.clone()),
                None => grads.push(ops::zeros_like(x)?),
            }
        }
        Ok((y, grads))
    }

    /// Gradients only; the output value is disposed.
    ///
    /// # Errors
    /// See [`Engine::value_and_grads`].
    pub fn grads(&self, xs: &[&Tensor], f: impl FnOnce() -> Result<Tensor>) -> Result<Vec<Tensor>> {
        let (y, gs) = self.value_and_grads(xs, f)?;
        y.dispose();
        Ok(gs)
    }

    /// Single-input convenience: `d f(x) / d x`.
    ///
    /// # Errors
    /// See [`Engine::value_and_grads`].
    pub fn grad(&self, x: &Tensor, f: impl FnOnce() -> Result<Tensor>) -> Result<Tensor> {
        Ok(self.grads(&[x], f)?.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testutil::{assert_close, test_engine};
    use crate::ops::{self};

    #[test]
    fn grad_of_square_is_2x() {
        let e = test_engine();
        let x = e.tensor_1d(&[3.0]).unwrap();
        let g = e.grad(&x, || ops::sum(&ops::square(&x)?, None, false)).unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[6.0], 1e-6);
    }

    #[test]
    fn grad_through_chain() {
        // d/dx sum(exp(2x)) at x = 0 is 2.
        let e = test_engine();
        let x = e.tensor_1d(&[0.0]).unwrap();
        let g = e
            .grad(&x, || {
                let two = e.scalar(2.0)?;
                ops::sum(&ops::exp(&ops::mul(&x, &two)?)?, None, false)
            })
            .unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[2.0], 1e-6);
    }

    #[test]
    fn grads_multiple_inputs() {
        // f = sum(a * b): df/da = b, df/db = a.
        let e = test_engine();
        let a = e.tensor_1d(&[2.0, 3.0]).unwrap();
        let b = e.tensor_1d(&[10.0, 20.0]).unwrap();
        let gs = e.grads(&[&a, &b], || ops::sum(&ops::mul(&a, &b)?, None, false)).unwrap();
        assert_close(&gs[0].to_f32_vec().unwrap(), &[10.0, 20.0], 1e-6);
        assert_close(&gs[1].to_f32_vec().unwrap(), &[2.0, 3.0], 1e-6);
    }

    #[test]
    fn fan_out_accumulates() {
        // f = sum(x * x + x): df/dx = 2x + 1.
        let e = test_engine();
        let x = e.tensor_1d(&[4.0]).unwrap();
        let g = e
            .grad(&x, || ops::sum(&ops::add(&ops::mul(&x, &x)?, &x)?, None, false))
            .unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[9.0], 1e-6);
    }

    #[test]
    fn unconnected_input_gets_zeros() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0]).unwrap();
        let unused = e.tensor_1d(&[5.0, 6.0]).unwrap();
        let gs = e.grads(&[&x, &unused], || ops::sum(&ops::square(&x)?, None, false)).unwrap();
        assert_close(&gs[1].to_f32_vec().unwrap(), &[0.0, 0.0], 1e-9);
    }

    #[test]
    fn native_control_flow_works() {
        // Eager differentiation supports plain Rust `if` (paper Sec 3.5).
        let e = test_engine();
        let x = e.tensor_1d(&[2.0]).unwrap();
        let f = |x: &crate::tensor::Tensor| -> crate::error::Result<crate::tensor::Tensor> {
            let v = x.to_scalar()?;
            if v > 0.0 {
                ops::sum(&ops::mul(x, x)?, None, false)
            } else {
                ops::sum(x, None, false)
            }
        };
        let g = e.grad(&x, || f(&x)).unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[4.0], 1e-6);
    }

    #[test]
    fn intermediates_are_disposed_after_grads() {
        let e = test_engine();
        let x = e.tensor_1d(&[1.0, 2.0]).unwrap();
        let before = e.num_tensors();
        let g = e
            .grad(&x, || {
                let a = ops::exp(&x)?;
                let b = ops::mul(&a, &x)?;
                ops::sum(&b, None, false)
            })
            .unwrap();
        // Only the gradient survives.
        assert_eq!(e.num_tensors(), before + 1);
        g.dispose();
        assert_eq!(e.num_tensors(), before);
    }

    #[test]
    fn matmul_grad_matches_finite_difference() {
        let e = test_engine();
        let a = e.tensor_2d(&[0.5, -0.3, 0.8, 0.1], 2, 2).unwrap();
        let b = e.tensor_2d(&[1.0, 2.0, -1.0, 0.5], 2, 2).unwrap();
        let gs = e
            .grads(&[&a, &b], || ops::sum(&ops::matmul(&a, &b, false, false)?, None, false))
            .unwrap();
        let ga = gs[0].to_f32_vec().unwrap();
        // Finite difference on a[0].
        let f = |av: &[f32]| -> f32 {
            let at = e.tensor_2d(av, 2, 2).unwrap();
            let y = ops::sum(&ops::matmul(&at, &b, false, false).unwrap(), None, false).unwrap();
            let v = y.to_scalar().unwrap();
            at.dispose();
            y.dispose();
            v
        };
        let base = [0.5, -0.3, 0.8, 0.1];
        for i in 0..4 {
            let mut p = base;
            p[i] += 1e-3;
            let mut m = base;
            m[i] -= 1e-3;
            let fd = (f(&p) - f(&m)) / 2e-3;
            assert!((fd - ga[i]).abs() < 1e-2, "i={i} fd={fd} got={}", ga[i]);
        }
    }

    #[test]
    fn tidy_inside_grad_keeps_needed_tensors() {
        // An inner tidy must not dispose tensors needed by backprop.
        let e = test_engine();
        let x = e.tensor_1d(&[2.0]).unwrap();
        let g = e
            .grad(&x, || {
                e.tidy(|| -> crate::error::Result<crate::tensor::Tensor> {
                    let a = ops::exp(&x)?;
                    ops::sum(&ops::mul(&a, &x)?, None, false)
                })
            })
            .unwrap();
        // d/dx (x e^x) = e^x (1 + x) = e^2 * 3.
        assert_close(&g.to_f32_vec().unwrap(), &[(2.0f32).exp() * 3.0], 1e-4);
    }
}

#[cfg(test)]
mod custom_grad_tests {
    use crate::ops::testutil::{assert_close, test_engine};
    use crate::ops;
    use crate::tape::GradFn;
    use std::sync::Arc;

    #[test]
    fn run_custom_overrides_the_composed_gradient() {
        // f(x) = x^2 computed normally, but with a custom gradient of 7
        // (not 2x): backprop must use the override.
        let e = test_engine();
        let x = e.tensor_1d(&[3.0]).unwrap();
        let grad_fn: GradFn = Arc::new(|dys, _ins, _outs| {
            let seven = dys[0].engine().scalar(7.0)?;
            Ok(vec![Some(ops::mul(&dys[0], &seven)?)])
        });
        let g = e
            .grad(&x, || {
                let ys = e.run_custom(
                    "SquareCustom",
                    &[&x],
                    || Ok(vec![ops::square(&x)?]),
                    grad_fn.clone(),
                )?;
                ops::sum(&ys[0], None, false)
            })
            .unwrap();
        assert_close(&g.to_f32_vec().unwrap(), &[7.0], 1e-6);
    }

    #[test]
    fn run_custom_forward_value_is_normal() {
        let e = test_engine();
        let x = e.tensor_1d(&[2.0, -3.0]).unwrap();
        let grad_fn: GradFn = Arc::new(|dys, _ins, _outs| Ok(vec![Some(dys[0].clone())]));
        let ys = e
            .run_custom("Id", &[&x], || Ok(vec![ops::square(&x)?]), grad_fn)
            .unwrap();
        assert_eq!(ys[0].to_f32_vec().unwrap(), vec![4.0, 9.0]);
    }

    #[test]
    fn run_custom_inner_ops_are_not_taped() {
        // A custom op whose inner computation would normally add many tape
        // nodes contributes exactly one gradient path.
        let e = test_engine();
        let x = e.tensor_1d(&[1.5]).unwrap();
        // Custom stable "softplus" with the analytic gradient sigmoid(x).
        let grad_fn: GradFn = Arc::new(|dys, ins, _outs| {
            Ok(vec![Some(ops::mul(&dys[0], &ops::sigmoid(&ins[0])?)?)])
        });
        let g = e
            .grad(&x, || {
                let ys = e.run_custom(
                    "StableSoftplus",
                    &[&x],
                    || {
                        // Deliberately convoluted forward; gradient must
                        // still be the single custom one.
                        let a = ops::exp(&x)?;
                        let b = ops::log1p(&a)?;
                        Ok(vec![ops::identity(&b)?])
                    },
                    grad_fn.clone(),
                )?;
                ops::sum(&ys[0], None, false)
            })
            .unwrap();
        let expect = 1.0 / (1.0 + (-1.5f32).exp());
        assert_close(&g.to_f32_vec().unwrap(), &[expect], 1e-5);
    }
}
