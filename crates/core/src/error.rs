//! Error types for the WebML core engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by all fallible engine, tensor and op APIs.
///
/// Mirrors the error surface of TensorFlow.js: shape mismatches, disposed
/// tensors, unsupported dtype combinations, backend failures, and the
/// NaN-debug mode exception described in Section 3.8 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Two shapes were incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// An operation was attempted on a tensor whose data has been disposed.
    TensorDisposed {
        /// Identifier of the disposed tensor.
        tensor_id: usize,
    },
    /// The requested dtype is not supported by the operation or backend.
    InvalidDType {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// An argument failed validation.
    InvalidArgument {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// The backend failed to execute a kernel.
    Backend {
        /// Backend name.
        backend: String,
        /// Human-readable description.
        message: String,
    },
    /// Debug mode detected a NaN in the output of a kernel (paper Sec 3.8).
    NanDetected {
        /// The kernel that first produced a NaN.
        kernel: &'static str,
    },
    /// The gradient for an op was requested but is not defined.
    GradientNotDefined {
        /// The op missing a gradient.
        op: &'static str,
    },
    /// No backend is registered under the requested name.
    UnknownBackend {
        /// The requested backend name.
        name: String,
    },
    /// Serialization / deserialization failure (converter, layers configs).
    Serialization {
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::ShapeMismatch`].
    pub fn shape(op: &'static str, message: impl Into<String>) -> Self {
        Error::ShapeMismatch { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid(op: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidArgument { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::InvalidDType`].
    pub fn dtype(op: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidDType { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::Backend`].
    pub fn backend(backend: impl Into<String>, message: impl Into<String>) -> Self {
        Error::Backend { backend: backend.into(), message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, message } => {
                write!(f, "shape mismatch in {op}: {message}")
            }
            Error::TensorDisposed { tensor_id } => {
                write!(f, "tensor {tensor_id} is disposed")
            }
            Error::InvalidDType { op, message } => {
                write!(f, "invalid dtype in {op}: {message}")
            }
            Error::InvalidArgument { op, message } => {
                write!(f, "invalid argument in {op}: {message}")
            }
            Error::Backend { backend, message } => {
                write!(f, "backend {backend} error: {message}")
            }
            Error::NanDetected { kernel } => {
                write!(f, "the result of kernel {kernel} contains a NaN")
            }
            Error::GradientNotDefined { op } => {
                write!(f, "gradient is not defined for op {op}")
            }
            Error::UnknownBackend { name } => {
                write!(f, "no backend registered under name {name}")
            }
            Error::Serialization { message } => {
                write!(f, "serialization error: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::shape("matMul", "inner dims 3 vs 4");
        assert_eq!(e.to_string(), "shape mismatch in matMul: inner dims 3 vs 4");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Error>();
        assert_sync::<Error>();
    }

    #[test]
    fn nan_error_names_kernel() {
        let e = Error::NanDetected { kernel: "log" };
        assert!(e.to_string().contains("log"));
    }
}
