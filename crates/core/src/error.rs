//! Error types for the WebML core engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by all fallible engine, tensor and op APIs.
///
/// Mirrors the error surface of TensorFlow.js: shape mismatches, disposed
/// tensors, unsupported dtype combinations, backend failures, and the
/// NaN-debug mode exception described in Section 3.8 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Two shapes were incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// An operation was attempted on a tensor whose data has been disposed.
    TensorDisposed {
        /// Identifier of the disposed tensor.
        tensor_id: usize,
    },
    /// The requested dtype is not supported by the operation or backend.
    InvalidDType {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// An argument failed validation.
    InvalidArgument {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// The backend failed to execute a kernel.
    Backend {
        /// Backend name.
        backend: String,
        /// Human-readable description.
        message: String,
    },
    /// Debug mode detected a NaN in the output of a kernel (paper Sec 3.8).
    NanDetected {
        /// The kernel that first produced a NaN.
        kernel: &'static str,
    },
    /// The gradient for an op was requested but is not defined.
    GradientNotDefined {
        /// The op missing a gradient.
        op: &'static str,
    },
    /// No backend is registered under the requested name.
    UnknownBackend {
        /// The requested backend name.
        name: String,
    },
    /// Serialization / deserialization failure (converter, layers configs).
    Serialization {
        /// Human-readable description.
        message: String,
    },
    /// The backend's device context was lost (the browser's
    /// `webglcontextlost` event): every device resource is invalidated. The
    /// engine treats this as degradable — live tensors are re-uploaded from
    /// host-side copies on the next backend in the priority chain.
    ContextLost {
        /// Backend whose context was lost.
        backend: String,
    },
    /// The backend ran out of a device resource (texture memory, readback
    /// slots). Transient: a bounded retry, possibly after paging or frees,
    /// can succeed; repeated failure degrades to the next backend.
    ResourceExhausted {
        /// Backend that exhausted a resource.
        backend: String,
        /// Human-readable description.
        message: String,
    },
    /// The backend cannot run this kernel at all (e.g. the driver rejected
    /// the shader at compile time). Degradable but not retryable on the
    /// same backend.
    KernelUnsupported {
        /// Backend that rejected the kernel.
        backend: String,
        /// The rejected kernel or program name.
        kernel: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::ShapeMismatch`].
    pub fn shape(op: &'static str, message: impl Into<String>) -> Self {
        Error::ShapeMismatch { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid(op: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidArgument { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::InvalidDType`].
    pub fn dtype(op: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidDType { op, message: message.into() }
    }

    /// Convenience constructor for [`Error::Backend`].
    pub fn backend(backend: impl Into<String>, message: impl Into<String>) -> Self {
        Error::Backend { backend: backend.into(), message: message.into() }
    }

    /// Convenience constructor for [`Error::ContextLost`].
    pub fn context_lost(backend: impl Into<String>) -> Self {
        Error::ContextLost { backend: backend.into() }
    }

    /// Convenience constructor for [`Error::ResourceExhausted`].
    pub fn resource_exhausted(backend: impl Into<String>, message: impl Into<String>) -> Self {
        Error::ResourceExhausted { backend: backend.into(), message: message.into() }
    }

    /// Convenience constructor for [`Error::KernelUnsupported`].
    pub fn kernel_unsupported(backend: impl Into<String>, kernel: impl Into<String>) -> Self {
        Error::KernelUnsupported { backend: backend.into(), kernel: kernel.into() }
    }

    /// Whether retrying the failed operation can succeed without code
    /// changes: the fault is in the environment (a lost context, exhausted
    /// device memory), not in the request itself.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::ContextLost { .. } | Error::ResourceExhausted { .. })
    }

    /// Whether the engine may recover by re-dispatching the kernel on the
    /// next backend in the priority chain (graceful degradation) instead of
    /// surfacing the error. Transient faults qualify, as does a kernel the
    /// backend cannot run at all; logic errors (shapes, dtypes, disposed
    /// tensors) do not — they would fail identically everywhere.
    pub fn is_degradable(&self) -> bool {
        self.is_transient() || matches!(self, Error::KernelUnsupported { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, message } => {
                write!(f, "shape mismatch in {op}: {message}")
            }
            Error::TensorDisposed { tensor_id } => {
                write!(f, "tensor {tensor_id} is disposed")
            }
            Error::InvalidDType { op, message } => {
                write!(f, "invalid dtype in {op}: {message}")
            }
            Error::InvalidArgument { op, message } => {
                write!(f, "invalid argument in {op}: {message}")
            }
            Error::Backend { backend, message } => {
                write!(f, "backend {backend} error: {message}")
            }
            Error::NanDetected { kernel } => {
                write!(f, "the result of kernel {kernel} contains a NaN")
            }
            Error::GradientNotDefined { op } => {
                write!(f, "gradient is not defined for op {op}")
            }
            Error::UnknownBackend { name } => {
                write!(f, "no backend registered under name {name}")
            }
            Error::Serialization { message } => {
                write!(f, "serialization error: {message}")
            }
            Error::ContextLost { backend } => {
                write!(f, "backend {backend} lost its device context")
            }
            Error::ResourceExhausted { backend, message } => {
                write!(f, "backend {backend} exhausted a device resource: {message}")
            }
            Error::KernelUnsupported { backend, kernel } => {
                write!(f, "backend {backend} cannot run kernel {kernel}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::shape("matMul", "inner dims 3 vs 4");
        assert_eq!(e.to_string(), "shape mismatch in matMul: inner dims 3 vs 4");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Error>();
        assert_sync::<Error>();
    }

    #[test]
    fn nan_error_names_kernel() {
        let e = Error::NanDetected { kernel: "log" };
        assert!(e.to_string().contains("log"));
    }

    #[test]
    fn transient_and_degradable_classification() {
        let lost = Error::context_lost("webgl");
        let oom = Error::resource_exhausted("webgl", "texture allocation failed");
        let unsupported = Error::kernel_unsupported("webgl", "MatMul");
        let shape = Error::shape("matMul", "inner dims 3 vs 4");
        let backend = Error::backend("webgl", "texture 7 does not exist");

        assert!(lost.is_transient() && lost.is_degradable());
        assert!(oom.is_transient() && oom.is_degradable());
        assert!(!unsupported.is_transient() && unsupported.is_degradable());
        assert!(!shape.is_transient() && !shape.is_degradable());
        assert!(!backend.is_transient() && !backend.is_degradable());
    }

    #[test]
    fn every_variant_displays_lowercase_with_context() {
        let cases: Vec<Error> = vec![
            Error::shape("matMul", "bad"),
            Error::TensorDisposed { tensor_id: 3 },
            Error::dtype("cast", "bad"),
            Error::invalid("slice", "bad"),
            Error::backend("webgl", "bad"),
            Error::NanDetected { kernel: "log" },
            Error::GradientNotDefined { op: "argMax" },
            Error::UnknownBackend { name: "tpu".into() },
            Error::Serialization { message: "bad".into() },
            Error::context_lost("webgl"),
            Error::resource_exhausted("webgl", "oom"),
            Error::kernel_unsupported("webgl", "MatMul"),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "display starts lowercase: {s}");
            // std::error::Error is implemented for every variant.
            let _: &dyn std::error::Error = &e;
        }
    }
}
