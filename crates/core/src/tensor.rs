//! The [`Tensor`] handle.
//!
//! A tensor is a cheap handle (shape, dtype, data pointer) onto a data
//! container owned by a backend; handles are decoupled from the data so
//! `reshape` and `clone` are free shallow copies (paper Sec 3.4). Under the
//! browser-like [`MemoryPolicy::Manual`](crate::engine::MemoryPolicy) memory
//! is freed only by [`Tensor::dispose`] or `tidy`; under the Node-like
//! `Finalized` policy, dropping the last handle frees it.

use crate::dtype::{DType, TensorData};
use crate::engine::{Engine, MemoryPolicy};
use crate::error::{Error, Result};
use crate::shape::Shape;
use std::fmt;
use std::sync::Arc;

struct TensorInner {
    id: usize,
    shape: Shape,
    dtype: DType,
    engine: Engine,
}

impl Drop for TensorInner {
    fn drop(&mut self) {
        if self.engine.memory_policy() == MemoryPolicy::Finalized {
            self.engine.enqueue_garbage(self.id);
        }
    }
}

/// A handle to an immutable n-dimensional array of values on a backend.
///
/// Cloning a `Tensor` clones the *handle* (same tensor id, same data);
/// use [`crate::ops::identity`] for a new tensor sharing the data, and ops in
/// [`crate::ops`] to compute new tensors.
#[derive(Clone)]
pub struct Tensor {
    inner: Arc<TensorInner>,
}

impl Tensor {
    pub(crate) fn from_parts(engine: Engine, id: usize, shape: Shape, dtype: DType) -> Tensor {
        Tensor { inner: Arc::new(TensorInner { id, shape, dtype, engine }) }
    }

    /// Unique id of this tensor within its engine.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Logical shape.
    pub fn shape(&self) -> Shape {
        self.inner.shape.clone()
    }

    /// Borrowed logical shape.
    pub fn shape_ref(&self) -> &Shape {
        &self.inner.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.inner.shape.rank()
    }

    /// Number of elements.
    pub fn size(&self) -> usize {
        self.inner.shape.size()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.inner.dtype
    }

    /// Bytes held by this tensor's data container (0 once disposed). Shallow
    /// copies share one container, so summing `bytes()` over aliases
    /// over-counts relative to `Engine::memory().num_bytes`.
    pub fn bytes(&self) -> usize {
        self.inner.engine.tensor_bytes(self.inner.id)
    }

    /// The engine that owns this tensor.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Synchronously download the tensor's values, blocking the calling
    /// thread until the backend has finished computing them — the
    /// `tensor.dataSync()` path of Figure 2.
    ///
    /// # Errors
    /// Fails when the tensor has been disposed or the backend errored.
    pub fn data_sync(&self) -> Result<TensorData> {
        self.inner.engine.read_sync(self.inner.id)
    }

    /// Asynchronously download the tensor's values; the returned future
    /// resolves when the device has finished — the `tensor.data()` path of
    /// Figure 3. The calling thread is free while the device works.
    ///
    /// # Errors
    /// Fails when the tensor has been disposed.
    pub fn data(&self) -> Result<crate::backend::DataFuture> {
        self.inner.engine.read(self.inner.id)
    }

    /// Convenience: download and convert to `Vec<f32>`.
    ///
    /// # Errors
    /// Same as [`Tensor::data_sync`].
    pub fn to_f32_vec(&self) -> Result<Vec<f32>> {
        Ok(self.data_sync()?.to_f32_vec())
    }

    /// Convenience: download and convert to `Vec<i32>`.
    ///
    /// # Errors
    /// Same as [`Tensor::data_sync`].
    pub fn to_i32_vec(&self) -> Result<Vec<i32>> {
        Ok(self.data_sync()?.to_i32_vec())
    }

    /// Convenience: download a scalar (or single-element) tensor's value.
    ///
    /// # Errors
    /// Fails when the tensor is disposed or has more than one element.
    pub fn to_scalar(&self) -> Result<f32> {
        if self.size() != 1 {
            return Err(Error::invalid(
                "toScalar",
                format!("tensor has {} elements, expected 1", self.size()),
            ));
        }
        Ok(self.data_sync()?.to_f32_vec()[0])
    }

    /// Explicitly release the memory backing this tensor (paper Sec 3.7).
    /// Idempotent; later reads fail with
    /// [`Error::TensorDisposed`](crate::error::Error).
    pub fn dispose(&self) {
        self.inner.engine.dispose_tensor(self.inner.id);
    }

    /// Whether the tensor's storage has been released.
    pub fn is_disposed(&self) -> bool {
        self.inner.engine.is_disposed(self.inner.id)
    }

    /// Mark this tensor to survive all enclosing `tidy` scopes (`tf.keep`).
    pub fn keep(&self) -> &Tensor {
        self.inner.engine.keep(self.inner.id);
        self
    }

    /// The affine dequantization parameters attached to this tensor, when
    /// it stores quantized U8 codes (`Engine::quantized_tensor`).
    pub fn quant_params(&self) -> Option<Arc<crate::quant::QuantParams>> {
        self.inner.engine.quant_params(self.inner.id)
    }

    /// Whether this tensor stores quantized codes with attached params.
    pub fn is_quantized(&self) -> bool {
        self.dtype() == DType::U8 && self.quant_params().is_some()
    }

    /// Pretty-print the tensor's values to stdout (`tensor.print()`).
    pub fn print(&self) {
        println!("{self}");
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.inner.id)
            .field("shape", &self.inner.shape)
            .field("dtype", &self.inner.dtype)
            .finish()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor (shape: {}, dtype: {})", self.inner.shape, self.inner.dtype)?;
        match self.data_sync() {
            Err(_) => write!(f, "  <disposed>"),
            Ok(data) => {
                let vals = data.to_f64_vec();
                write!(f, "  ")?;
                format_nd(f, &vals, self.inner.shape.dims())
            }
        }
    }
}

/// Recursively format an n-d array with nested brackets, eliding long rows.
#[allow(clippy::needless_range_loop)]
fn format_nd(f: &mut fmt::Formatter<'_>, vals: &[f64], dims: &[usize]) -> fmt::Result {
    const MAX_ITEMS: usize = 8;
    if dims.is_empty() {
        return write!(f, "{}", vals[0]);
    }
    if dims.len() == 1 {
        write!(f, "[")?;
        let n = dims[0];
        for i in 0..n.min(MAX_ITEMS) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", vals[i])?;
        }
        if n > MAX_ITEMS {
            write!(f, ", ... {} more", n - MAX_ITEMS)?;
        }
        return write!(f, "]");
    }
    let inner: usize = dims[1..].iter().product();
    write!(f, "[")?;
    let n = dims[0];
    for i in 0..n.min(MAX_ITEMS) {
        if i > 0 {
            write!(f, ", ")?;
        }
        format_nd(f, &vals[i * inner..(i + 1) * inner], &dims[1..])?;
    }
    if n > MAX_ITEMS {
        write!(f, ", ... {} more", n - MAX_ITEMS)?;
    }
    write!(f, "]")
}
