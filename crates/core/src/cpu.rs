//! The bundled fallback CPU backend.
//!
//! Straightforward single-threaded scalar loops over host vectors, used as
//! the correctness reference for every other backend and registered as the
//! default backend of the global engine — mirroring the role of the plain-JS
//! CPU implementation in TensorFlow.js ("automatically used when the
//! environment has no access to WebGL or the TensorFlow binary", Sec 3.1).

use crate::backend::{
    ArgReduceOp, Backend, BackendMemory, BinaryOp, DataFuture, DataId, KTensor, KernelTiming,
    PoolOp, ReduceOp, UnaryOp,
};
use crate::conv_util::Conv2dInfo;
use crate::dtype::{DType, TensorData};
use crate::error::{Error, Result};
use crate::kernels as k;
use crate::shape::Shape;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct Entry {
    data: TensorData,
    dtype: DType,
}

/// Single-threaded scalar CPU backend; the reference implementation.
pub struct CpuBackend {
    name: String,
    store: Mutex<HashMap<DataId, Entry>>,
    next_id: AtomicU64,
    kernel_nanos: AtomicU64,
    timing_mark: Mutex<u64>,
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new()
    }
}

impl CpuBackend {
    /// Create a backend named `"cpu"`.
    pub fn new() -> CpuBackend {
        CpuBackend::with_name("cpu")
    }

    /// Create a backend with a custom registry name.
    pub fn with_name(name: impl Into<String>) -> CpuBackend {
        CpuBackend {
            name: name.into(),
            store: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            kernel_nanos: AtomicU64::new(0),
            timing_mark: Mutex::new(0),
        }
    }

    fn fresh(&self) -> DataId {
        DataId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn put(&self, data: TensorData, dtype: DType) -> DataId {
        let id = self.fresh();
        self.store.lock().insert(id, Entry { data, dtype });
        id
    }

    fn get_f32(&self, id: DataId) -> Result<Vec<f32>> {
        let store = self.store.lock();
        let entry = store
            .get(&id)
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
        Ok(entry.data.to_f32_vec())
    }

    fn get_i32(&self, id: DataId) -> Result<Vec<i32>> {
        let store = self.store.lock();
        let entry = store
            .get(&id)
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
        Ok(entry.data.to_i32_vec())
    }

    /// Raw u8 quantization codes. U8 containers are returned directly; any
    /// other storage (e.g. a migrated float copy of codes) is rounded and
    /// clamped back into code space.
    fn get_u8(&self, id: DataId) -> Result<Vec<u8>> {
        let store = self.store.lock();
        let entry = store
            .get(&id)
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
        Ok(match &entry.data {
            TensorData::U8(v) => v.clone(),
            other => {
                other.to_f32_vec().iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect()
            }
        })
    }

    fn put_f32(&self, v: Vec<f32>, dtype: DType) -> DataId {
        let data = TensorData::F32(v).cast(dtype);
        self.put(data, dtype)
    }

    fn timer(&self) -> KernelTimer<'_> {
        KernelTimer { backend: self, start: Instant::now() }
    }
}

struct KernelTimer<'a> {
    backend: &'a CpuBackend,
    start: Instant,
}

impl Drop for KernelTimer<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.backend.kernel_nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, data: TensorData, dtype: DType) -> DataId {
        self.put(data.cast(dtype), dtype)
    }

    fn read_sync(&self, id: DataId) -> Result<TensorData> {
        let store = self.store.lock();
        store
            .get(&id)
            .map(|e| e.data.clone())
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))
    }

    fn read(&self, id: DataId) -> DataFuture {
        DataFuture::ready(self.read_sync(id))
    }

    fn dispose_data(&self, id: DataId) {
        self.store.lock().remove(&id);
    }

    fn memory(&self) -> BackendMemory {
        let store = self.store.lock();
        let num_bytes = store.values().map(|e| e.data.byte_len(e.dtype)).sum();
        BackendMemory { num_buffers: store.len(), num_bytes, details: Vec::new() }
    }

    fn begin_timing(&self) {
        *self.timing_mark.lock() = self.kernel_nanos.load(Ordering::Relaxed);
    }

    fn end_timing(&self) -> KernelTiming {
        let mark = *self.timing_mark.lock();
        let now = self.kernel_nanos.load(Ordering::Relaxed);
        KernelTiming { kernel_ms: (now - mark) as f64 / 1e6 }
    }

    fn device_timer_ns(&self) -> Option<u64> {
        Some(self.kernel_nanos.load(Ordering::Relaxed))
    }

    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId> {
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        Ok(self.put_f32(k::unary(op, &x), op.out_dtype(a.dtype)))
    }

    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId> {
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        let y = self.get_f32(b.data)?;
        Ok(self.put_f32(k::binary(op, &x, a.shape, &y, b.shape, out_shape), out_dtype))
    }

    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId> {
        let _t = self.timer();
        let store = self.store.lock();
        let entry = store
            .get(&a.data)
            .ok_or_else(|| Error::backend(&self.name, "unknown data id"))?;
        let data = entry.data.cast(dtype);
        drop(store);
        Ok(self.put(data, dtype))
    }

    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        Ok(self.put_f32(k::reduce(op, &x, a.shape, axes), op.out_dtype(a.dtype)))
    }

    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        Ok(self.put(TensorData::I32(k::arg_reduce(op, &x, a.shape, axis)), DType::I32))
    }

    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        let y = self.get_f32(b.data)?;
        let batch = a.shape.dim(0);
        let (m, kk) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        Ok(self.put_f32(k::matmul(&x, &y, batch, m, kk, n, transpose_a, transpose_b), DType::F32))
    }

    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let wv = self.get_f32(filter.data)?;
        Ok(self.put_f32(k::conv2d(&xv, &wv, info), DType::F32))
    }

    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.get_f32(dy.data)?;
        let wv = self.get_f32(filter.data)?;
        Ok(self.put_f32(k::conv2d_backprop_input(&dyv, &wv, info), DType::F32))
    }

    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let dyv = self.get_f32(dy.data)?;
        Ok(self.put_f32(k::conv2d_backprop_filter(&xv, &dyv, info), DType::F32))
    }

    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let wv = self.get_f32(filter.data)?;
        Ok(self.put_f32(k::depthwise_conv2d(&xv, &wv, info), DType::F32))
    }

    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.get_f32(dy.data)?;
        let wv = self.get_f32(filter.data)?;
        Ok(self.put_f32(k::depthwise_conv2d_backprop_input(&dyv, &wv, info), DType::F32))
    }

    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let dyv = self.get_f32(dy.data)?;
        Ok(self.put_f32(k::depthwise_conv2d_backprop_filter(&xv, &dyv, info), DType::F32))
    }

    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::pool2d(op, &xv, info), x.dtype))
    }

    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.get_f32(dy.data)?;
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::pool2d_backprop(op, &dyv, &xv, info), DType::F32))
    }

    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::slice(&xv, x.shape, begin, size), x.dtype))
    }

    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let vals: Vec<Vec<f32>> = xs.iter().map(|t| self.get_f32(t.data)).collect::<Result<_>>()?;
        let pairs: Vec<(&[f32], &Shape)> =
            vals.iter().zip(xs).map(|(v, t)| (v.as_slice(), t.shape)).collect();
        Ok(self.put_f32(k::concat(&pairs, axis), xs[0].dtype))
    }

    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::transpose(&xv, x.shape, perm), x.dtype))
    }

    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::pad(&xv, x.shape, paddings, value), x.dtype))
    }

    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let ix = self.get_i32(indices.data)?;
        Ok(self.put_f32(k::gather(&xv, x.shape, &ix, axis), x.dtype))
    }

    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::tile(&xv, x.shape, reps), x.dtype))
    }

    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::reverse(&xv, x.shape, axes), x.dtype))
    }

    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId> {
        let _t = self.timer();
        let cv = self.get_f32(cond.data)?;
        let av = self.get_f32(a.data)?;
        let bv = self.get_f32(b.data)?;
        Ok(self.put_f32(
            k::select(&cv, cond.shape, &av, a.shape, &bv, b.shape, out_shape),
            a.dtype,
        ))
    }

    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId> {
        let _t = self.timer();
        let ix = self.get_i32(indices.data)?;
        Ok(self.put_f32(k::one_hot(&ix, depth, on, off), DType::F32))
    }

    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        Ok(self.put_f32(k::resize_bilinear(&xv, x.shape, new_h, new_w, align_corners), DType::F32))
    }

    // --- quantized fused kernels -------------------------------------------
    //
    // Reference dequant-free implementations: the u8 codes feed the factored
    // accumulation in crate::kernels directly; no f32 weight buffer is ever
    // materialized. Per-channel params whose axis does not line up with the
    // factored form fall back to the host-dequantize composition.

    fn fused_matmul_quant(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        b_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let col_axis = if transpose_b { 1 } else { 2 };
        if !k::quant_axis_ok(b_params, col_axis, n) {
            return crate::backend::fused_matmul_quant_fallback(
                self, a, b, b_params, bias, activation, transpose_a, transpose_b,
            );
        }
        let _t = self.timer();
        let x = self.get_f32(a.data)?;
        let codes = self.get_u8(b.data)?;
        let bias_v = bias.map(|t| self.get_f32(t.data)).transpose()?;
        let batch = a.shape.dim(0);
        let (m, kk) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        Ok(self.put_f32(
            k::fused_matmul_quant(
                &x,
                &codes,
                b_params,
                bias_v.as_deref(),
                activation,
                batch,
                m,
                kk,
                n,
                transpose_a,
                transpose_b,
            ),
            DType::F32,
        ))
    }

    fn fused_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        if !k::quant_axis_ok(filter_params, 3, info.out_channels) {
            return crate::backend::fused_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let codes = self.get_u8(filter.data)?;
        let bias_v = bias.map(|t| self.get_f32(t.data)).transpose()?;
        Ok(self.put_f32(
            k::fused_conv2d_quant(&xv, &codes, filter_params, bias_v.as_deref(), activation, info),
            DType::F32,
        ))
    }

    fn fused_depthwise_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &crate::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        // The factored depthwise kernel supports a constant scale per output:
        // per-tensor, or per-channel along filter axis 2 (input channel) or
        // 3 (channel multiplier).
        let axis_ok = k::quant_axis_ok(filter_params, 2, info.in_channels)
            || k::quant_axis_ok(filter_params, 3, info.channel_mul);
        if !axis_ok {
            return crate::backend::fused_depthwise_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let _t = self.timer();
        let xv = self.get_f32(x.data)?;
        let codes = self.get_u8(filter.data)?;
        let bias_v = bias.map(|t| self.get_f32(t.data)).transpose()?;
        Ok(self.put_f32(
            k::fused_depthwise_conv2d_quant(
                &xv,
                &codes,
                filter_params,
                bias_v.as_deref(),
                activation,
                info,
            ),
            DType::F32,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_round_trip() {
        let b = CpuBackend::new();
        let id = b.register(TensorData::F32(vec![1.0, 2.0]), DType::F32);
        assert_eq!(b.read_sync(id).unwrap(), TensorData::F32(vec![1.0, 2.0]));
    }

    #[test]
    fn register_casts_to_dtype() {
        let b = CpuBackend::new();
        let id = b.register(TensorData::F32(vec![1.5, 0.0]), DType::Bool);
        assert_eq!(b.read_sync(id).unwrap(), TensorData::U8(vec![1, 0]));
    }

    #[test]
    fn dispose_frees_memory() {
        let b = CpuBackend::new();
        let id = b.register(TensorData::F32(vec![0.0; 100]), DType::F32);
        assert_eq!(b.memory().num_bytes, 400);
        b.dispose_data(id);
        assert_eq!(b.memory().num_buffers, 0);
        assert_eq!(b.memory().num_bytes, 0);
    }

    #[test]
    fn read_unknown_id_errors() {
        let b = CpuBackend::new();
        assert!(b.read_sync(DataId(999)).is_err());
    }

    #[test]
    fn fused_matmul_quant_override_matches_dequantize_fallback() {
        use crate::backend::fused_matmul_quant_fallback;
        use crate::quant::QuantParams;
        let b = CpuBackend::new();
        let a_shape = Shape::new(vec![1, 2, 3]);
        let w_shape = Shape::new(vec![1, 3, 2]);
        let bias_shape = Shape::new(vec![2]);
        let a_id = b.register(TensorData::F32(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]), DType::F32);
        let w_id = b.register(TensorData::U8(vec![0, 255, 100, 17, 200, 64]), DType::U8);
        let bias_id = b.register(TensorData::F32(vec![0.25, -0.5]), DType::F32);
        let a = KTensor { data: a_id, shape: &a_shape, dtype: DType::F32 };
        let w = KTensor { data: w_id, shape: &w_shape, dtype: DType::U8 };
        let bias = KTensor { data: bias_id, shape: &bias_shape, dtype: DType::F32 };
        let params = QuantParams::per_tensor(0.03, -3.0);
        let fast = b
            .fused_matmul_quant(&a, &w, &params, Some(&bias), Some(UnaryOp::Relu), false, false)
            .unwrap();
        let slow = fused_matmul_quant_fallback(
            &b,
            &a,
            &w,
            &params,
            Some(&bias),
            Some(UnaryOp::Relu),
            false,
            false,
        )
        .unwrap();
        let fv = b.read_sync(fast).unwrap().to_f32_vec();
        let sv = b.read_sync(slow).unwrap().to_f32_vec();
        for (f, s) in fv.iter().zip(&sv) {
            assert!((f - s).abs() < 1e-4, "factored {f} vs dequantized {s}");
        }
    }

    #[test]
    fn mismatched_per_channel_axis_falls_back_not_errors() {
        use crate::quant::QuantParams;
        let b = CpuBackend::new();
        let a_shape = Shape::new(vec![1, 1, 2]);
        let w_shape = Shape::new(vec![1, 2, 2]);
        let a_id = b.register(TensorData::F32(vec![1.0, 1.0]), DType::F32);
        let w_id = b.register(TensorData::U8(vec![10, 20, 30, 40]), DType::U8);
        let a = KTensor { data: a_id, shape: &a_shape, dtype: DType::F32 };
        let w = KTensor { data: w_id, shape: &w_shape, dtype: DType::U8 };
        // Per-channel along the k axis (1): the factored kernel cannot keep
        // a constant scale per output column, so it must fall back.
        let params = QuantParams::per_channel(1, vec![0.1, 0.2], vec![0.0, 0.0]);
        let out = b.fused_matmul_quant(&a, &w, &params, None, None, false, false).unwrap();
        let got = b.read_sync(out).unwrap().to_f32_vec();
        // Row 0 dequantizes with scale .1, row 1 with scale .2.
        assert!((got[0] - (10.0 * 0.1 + 30.0 * 0.2)).abs() < 1e-5);
        assert!((got[1] - (20.0 * 0.1 + 40.0 * 0.2)).abs() < 1e-5);
    }

    #[test]
    fn timing_window_accumulates_kernel_time() {
        let b = CpuBackend::new();
        let shape = Shape::new(vec![64, 64]);
        let id = b.register(TensorData::F32(vec![1.0; 64 * 64]), DType::F32);
        b.begin_timing();
        let kt = KTensor { data: id, shape: &shape, dtype: DType::F32 };
        let _ = b.unary(UnaryOp::Exp, &kt).unwrap();
        let t = b.end_timing();
        assert!(t.kernel_ms >= 0.0);
    }
}
