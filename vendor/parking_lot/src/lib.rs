//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! The repo builds in an air-gapped environment, so the real crates-io
//! `parking_lot` is unavailable. This vendored shim reproduces the subset of
//! the API the workspace uses — non-poisoning `Mutex::lock()` returning a
//! guard directly, and `Condvar::wait(&mut guard)` — on top of the standard
//! library primitives. Poisoned locks are recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard; it is `Some` at all other times.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning API subset).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }
}
