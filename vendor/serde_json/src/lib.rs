//! Offline drop-in subset of `serde_json`, vendored for the air-gapped build.
//!
//! Re-exports the shared [`Value`] model from the vendored `serde` shim and
//! adds a JSON text parser, compact and pretty printers, `to_value`, and a
//! `json!` macro (tt-muncher, like the real one) covering the literal shapes
//! this workspace constructs.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by JSON (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// --- conversions ------------------------------------------------------------

/// Convert any `Serialize` type into a [`Value`].
///
/// # Errors
/// Infallible in this shim; `Result` is kept for API parity.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuild a `Deserialize` type from a [`Value`].
///
/// # Errors
/// Fails when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

// --- printing ---------------------------------------------------------------

/// Serialize to a compact JSON string.
///
/// # Errors
/// Infallible in this shim; `Result` is kept for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string.
///
/// # Errors
/// Infallible in this shim; `Result` is kept for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some("  "), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
///
/// # Errors
/// Infallible in this shim; `Result` is kept for API parity.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
///
/// # Errors
/// Infallible in this shim; `Result` is kept for API parity.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ----------------------------------------------------------------

/// Parse JSON text into any `Deserialize` type.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON bytes into any `Deserialize` type.
///
/// # Errors
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected input {other:?} at offset {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::new(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!("expected `,` or `]`, got {other:?}")));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!("expected `,` or `}}`, got {other:?}")));
                }
            }
        }
    }
}

// --- json! macro ------------------------------------------------------------

/// Macro internals: convert an interpolated expression to a [`Value`].
#[doc(hidden)]
pub fn __value_of<T: Serialize>(value: T) -> Value {
    value.serialize_value()
}

/// Build a [`Value`] from JSON-like syntax (subset of serde_json's `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::__json_array!(@acc [] @cur [] $($tt)+) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::__json_object!(@acc [] @key [] @cur [] $($tt)+) };
    ($other:expr) => { $crate::__value_of(&$other) };
}

/// Tt-muncher for `json!` array bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    // Terminal: flush a pending element.
    (@acc [$($out:expr,)*] @cur [$($cur:tt)+]) => {
        $crate::Value::Array(vec![$($out,)* $crate::json!($($cur)+)])
    };
    // Terminal: trailing comma left nothing pending.
    (@acc [$($out:expr,)*] @cur []) => {
        $crate::Value::Array(vec![$($out,)*])
    };
    // Top-level comma finishes the current element.
    (@acc [$($out:expr,)*] @cur [$($cur:tt)+] , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($out,)* $crate::json!($($cur)+),] @cur [] $($rest)*)
    };
    // Otherwise munch one token into the current element.
    (@acc [$($out:expr,)*] @cur [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($out,)*] @cur [$($cur)* $next] $($rest)*)
    };
}

/// Tt-muncher for `json!` object bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    // Terminal: flush a pending pair.
    (@acc [$($out:expr,)*] @key [$k:tt] @cur [$($cur:tt)+]) => {
        $crate::Value::Object(vec![$($out,)* (($k).to_string(), $crate::json!($($cur)+))])
    };
    // Terminal: trailing comma left nothing pending.
    (@acc [$($out:expr,)*] @key [] @cur []) => {
        $crate::Value::Object(vec![$($out,)*])
    };
    // Top-level comma finishes the current pair.
    (@acc [$($out:expr,)*] @key [$k:tt] @cur [$($cur:tt)+] , $($rest:tt)*) => {
        $crate::__json_object!(
            @acc [$($out,)* (($k).to_string(), $crate::json!($($cur)+)),] @key [] @cur [] $($rest)*
        )
    };
    // Start of a pair: `"key" : ...`.
    (@acc [$($out:expr,)*] @key [] @cur [] $k:tt : $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($out,)*] @key [$k] @cur [] $($rest)*)
    };
    // Otherwise munch one token into the current value.
    (@acc [$($out:expr,)*] @key [$k:tt] @cur [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($out,)*] @key [$k] @cur [$($cur)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let names = vec!["a".to_string(), "b".to_string()];
        let v = json!({
            "format": "test",
            "count": 2,
            "nested": { "items": names, "flag": true },
            "list": [1, 2, 3],
            "pi": 3.25,
            "none": null,
        });
        assert_eq!(v["format"], "test");
        assert_eq!(v["count"].as_u64(), Some(2));
        assert_eq!(v["nested"]["items"][1], "b");
        assert_eq!(v["list"].as_array().map(Vec::len), Some(3));
        assert_eq!(v["pi"].as_f64(), Some(3.25));
        assert!(v["none"].is_null());
    }

    #[test]
    fn print_parse_round_trip() {
        let v = json!({
            "s": "he said \"hi\"\n",
            "neg": -4,
            "big": 4294967296u64,
            "f": 0.5,
            "arr": [[], {}, null, false],
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_slice_matches_from_str() {
        let v: Value = from_slice(br#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], "x");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
