//! Offline drop-in subset of `serde_derive`, vendored for the air-gapped
//! build. Parses the input token stream directly (no `syn`/`quote`) and
//! emits impls of the shim's value-model `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what the workspace derives on:
//! - structs with named fields
//! - newtype structs (`struct Shape(Vec<usize>)`) — transparent
//! - enums whose variants are unit or tuple style, honoring
//!   `#[serde(rename_all = "snake_case")]`; externally tagged like serde:
//!   unit => `"name"`, 1-tuple => `{"name": payload}`,
//!   n-tuple => `{"name": [payloads...]}`
//!
//! Anything else (generics, named-field variants, other serde attributes)
//! produces a `compile_error!` so misuse fails loudly rather than silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with the given arity.
    TupleStruct(usize),
    /// Enum of unit/tuple variants: `(ident, arity)`.
    Enum(Vec<(String, usize)>),
}

struct Input {
    name: String,
    snake_case: bool,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok(parsed) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&parsed),
                Mode::Deserialize => gen_deserialize(&parsed),
            };
            code.parse().expect("serde_derive shim generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("compile_error parse"),
    }
}

// --- parsing ---------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut snake_case = false;

    // Leading attributes (doc comments, #[serde(...)], #[repr(...)], ...).
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_snake_case_rename(&g.stream()) {
                        snake_case = true;
                    }
                    i += 2;
                    continue;
                }
            }
        }
        break;
    }

    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1; // pub(crate) etc.
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        _ => return Err("serde shim derive: expected `struct` or `enum`".to_string()),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            let n = id.to_string();
            i += 1;
            n
        }
        _ => return Err("serde shim derive: expected type name".to_string()),
    };

    // Reject generics: none of the workspace's derived types are generic, and
    // supporting them without syn is not worth the complexity.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive: generic type `{name}` is not supported"));
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::TupleStruct(0),
            _ => return Err("serde shim derive: malformed struct body".to_string()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(&g.stream())?)
            }
            _ => return Err("serde shim derive: malformed enum body".to_string()),
        }
    };

    Ok(Input { name, snake_case, body })
}

/// Does this attribute body look like `serde(rename_all = "snake_case")`?
fn attr_is_snake_case_rename(stream: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.get(1) {
        Some(TokenTree::Group(g)) => {
            let inner = g.stream().to_string();
            inner.contains("rename_all") && inner.contains("snake_case")
        }
        _ => false,
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes on the field.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim derive: expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma (angle-bracket aware).
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Arity of a tuple body: number of top-level comma-separated fields.
fn count_top_level_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// `(name, arity)` for each enum variant; named-field variants are rejected.
fn parse_variants(stream: &TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_fields(&g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde shim derive: named-field variant `{name}` is not supported"
                ));
            }
            _ => 0,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

// --- codegen ---------------------------------------------------------------

/// CamelCase -> snake_case (serde's `rename_all = "snake_case"` rule).
fn to_snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(input: &Input, variant: &str) -> String {
    if input.snake_case {
        to_snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(entries)"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| {
                    let key = variant_key(input, v);
                    match arity {
                        0 => format!(
                            "{name}::{v} => ::serde::Value::String({key:?}.to_string()),\n"
                        ),
                        1 => format!(
                            "{name}::{v}(f0) => ::serde::Value::Object(vec![({key:?}.to_string(), \
                             ::serde::Serialize::serialize_value(f0))]),\n"
                        ),
                        n => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Object(vec![({key:?}.to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::get_field(value, {f:?})?,\n"))
                .collect();
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
        ),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected array for tuple struct\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple struct arity\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| {
                    let key = variant_key(input, v);
                    format!("{key:?} => return ::std::result::Result::Ok({name}::{v}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    let key = variant_key(input, v);
                    if *arity == 1 {
                        format!(
                            "{key:?} => return ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_value(payload)?)),\n"
                        )
                    } else {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        format!(
                            "{key:?} => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                             ::serde::de::Error::custom(\"expected array payload\"))?;\n\
                             if items.len() != {arity} {{ return ::std::result::Result::Err(\
                             ::serde::de::Error::custom(\"wrong variant arity\")); }}\n\
                             return ::std::result::Result::Ok({name}::{v}({}));\n}}\n",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(entries) = value.as_object_entries() {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"invalid value for enum {name}: {{value:?}}\")))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
