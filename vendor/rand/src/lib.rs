//! Offline drop-in subset of `rand`, vendored for the air-gapped build.
//!
//! Provides the `Rng` / `SeedableRng` traits, a deterministic SplitMix64
//! `StdRng`, uniform ranges over the primitive types the workspace uses, and
//! `seq::SliceRandom::shuffle`. Determinism per seed is the only contract the
//! workspace relies on (all call sites use `StdRng::seed_from_u64`).

/// A source of randomness: anything that can produce `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a uniform value of `T` (`f32`/`f64` in `[0, 1)`, full range for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types sampleable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draw one value in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one u64
            // of state, and trivially seedable — plenty for test workloads.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extension trait (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(0..30u8);
            assert!(v < 30);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(11));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
