//! Offline drop-in subset of `criterion`, vendored for the air-gapped build.
//!
//! Provides the group/bench_function/iter API the workspace's benches use,
//! backed by a simple mean-of-N wall-clock timer instead of criterion's
//! statistical machinery. Prints one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First non-flag CLI argument acts as a name filter, like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_one(&filter, &id.to_string(), 10, Duration::from_secs(1), Duration::from_millis(300), f);
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.filter, &full, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Benchmark a closure that receives an input reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the measured closure; drives iteration batches.
pub struct Bencher {
    batch_nanos: Vec<u128>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Time `f`, called repeatedly; the harness averages over batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(f());
        }
        self.batch_nanos.push(start.elapsed().as_nanos());
    }
}

fn run_one<F>(
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    // Warm-up: discover a per-batch iteration count that fits the budget.
    let mut bencher = Bencher { batch_nanos: Vec::new(), iters_per_batch: 1 };
    let warm_start = Instant::now();
    let mut batches = 0u64;
    while warm_start.elapsed() < warm_up_time || batches == 0 {
        f(&mut bencher);
        batches += 1;
        if batches > 1_000_000 {
            break;
        }
    }
    let warm_mean = bencher
        .batch_nanos
        .iter()
        .copied()
        .sum::<u128>()
        .checked_div(bencher.batch_nanos.len() as u128)
        .unwrap_or(1)
        .max(1);
    let budget_per_sample =
        (measurement_time.as_nanos() / sample_size.max(1) as u128).max(1);
    let iters = (budget_per_sample / warm_mean).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { batch_nanos: Vec::new(), iters_per_batch: iters };
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    let per_iter: Vec<f64> = bencher
        .batch_nanos
        .iter()
        .map(|&n| n as f64 / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("{id:<60} time: [{} {} {}]", fmt_nanos(min), fmt_nanos(mean), fmt_nanos(max));
}

fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut hits = 0u64;
        group.bench_function("count", |b| b.iter(|| hits = hits.wrapping_add(1)));
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nomatch".to_string()) };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
