//! Offline drop-in subset of `serde`, vendored for the air-gapped build.
//!
//! Instead of the real crate's visitor-based data model, this shim uses a
//! direct value model: [`Serialize`] converts to a JSON-like [`Value`],
//! [`Deserialize`] converts back. The `serde_json` shim re-exports [`Value`]
//! and supplies text parsing/printing on top. The derive macros (from the
//! vendored `serde_derive`) generate impls against these traits, covering the
//! shapes this workspace uses: named-field structs, newtype structs, and
//! enums with unit or tuple variants (with optional
//! `#[serde(rename_all = "snake_case")]`).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like dynamically-typed value (shared data model for the shim).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned/signed integer or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays; `None` for non-arrays or out of range.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries view (insertion-ordered key/value pairs).
    pub fn as_object_entries(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Unsigned-integer view (integers only, like serde_json).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// Float view (any number coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Types convertible into the shared [`Value`] model.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from the shared [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns a [`de::Error`] when the value's shape does not match.
    fn deserialize_value(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error support.
pub mod de {
    use std::fmt;

    /// A deserialization error with a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom<T: fmt::Display>(message: T) -> Error {
            Error { message: message.to_string() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}
}

/// Support helpers referenced by derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{de, Deserialize, Value};

    /// Fetch and deserialize a named struct field.
    pub fn get_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, de::Error> {
        match value.get(name) {
            Some(v) => T::deserialize_value(v),
            None => Err(de::Error::custom(format!("missing field `{name}`"))),
        }
    }
}

// --- Serialize impls for std types -----------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

// --- Deserialize impls for std types ---------------------------------------

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Value, de::Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<bool, de::Error> {
        value.as_bool().ok_or_else(|| de::Error::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<String, de::Error> {
        value.as_str().map(str::to_string).ok_or_else(|| de::Error::custom("expected string"))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<f64, de::Error> {
        value.as_f64().ok_or_else(|| de::Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<f32, de::Error> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| de::Error::custom("expected number"))
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<$t, de::Error> {
                value
                    .as_u64()
                    .ok_or_else(|| de::Error::custom("expected unsigned integer"))
                    .map(|v| v as $t)
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<$t, de::Error> {
                value
                    .as_i64()
                    .ok_or_else(|| de::Error::custom("expected integer"))
                    .map(|v| v as $t)
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Option<T>, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Vec<T>, de::Error> {
        value
            .as_array()
            .ok_or_else(|| de::Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // Ensure floats keep a decimal point so they reparse as
                    // floats when they happen to be whole numbers.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null like serde_json's
                    // lossy modes.
                    f.write_str("null")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::PosInt(3))),
            ("b".to_string(), Value::String("hi".to_string())),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v["b"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trip_primitives() {
        assert_eq!(usize::deserialize_value(&5usize.serialize_value()).unwrap(), 5);
        assert_eq!(f32::deserialize_value(&1.5f32.serialize_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<usize>::deserialize_value(&vec![1usize, 2].serialize_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null).unwrap(), None);
    }
}
