//! Offline drop-in subset of `bytes`, vendored for the air-gapped build.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<Vec<u8>>` — reference-counted clones rather than the real crate's
//! sliceable views, which the workspace does not need.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn from_vec_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }
}
