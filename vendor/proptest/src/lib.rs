//! Offline drop-in subset of `proptest`, vendored for the air-gapped build.
//!
//! Implements the surface the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, `name in strategy`
//! arguments, numeric `Range` strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros. Sampling is deterministic
//! (SplitMix64 seeded per test) rather than truly random, and there is no
//! shrinking — on failure the panic message reports the failing inputs via
//! `Debug` instead.

use std::fmt;
use std::ops::Range;

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction (each generated test derives its own seed).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0xA076_1D64_78BD_642F }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The produced value type.
    type Value: fmt::Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a size drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element, len_range)` — as in proptest.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// Per-block configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` sampled inputs per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Error carried out of a failing property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from any message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Deterministic per-test seed derived from the test name (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Define property tests: `proptest! { #![proptest_config(...)] fn ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )* } => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::seed_from_u64($crate::__seed_for(stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                // Describe inputs before the body, which may consume them.
                let inputs = format!("{:?}", ($(&$arg,)*));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e.message,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Assert inside a property body, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(values in prop::collection::vec(-1.0f32..1.0, 1..16)) {
            prop_assert!(!values.is_empty());
            prop_assert!(values.len() < 16);
            for v in &values {
                prop_assert!((-1.0..1.0).contains(v), "{} out of range", v);
            }
        }

        #[test]
        fn int_ranges_sample_uniformly_enough(n in 1usize..8, seed in 0u64..1000) {
            prop_assert!((1..8).contains(&n));
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
