//! Offline drop-in subset of `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Vendored because the build environment is air-gapped. Only the
//! `channel::unbounded` MPSC surface the workspace uses is provided. The
//! receiver is wrapped in a mutex so it is `Sync` and cloneable like
//! crossbeam's MPMC receiver.

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel (shareable across threads).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    /// Error returned when sending on a disconnected channel.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    // The mpsc receiver is guarded by a mutex, so sharing the wrapper is safe.
    unsafe impl<T: Send> Send for Receiver<T> {}
    unsafe impl<T: Send> Sync for Receiver<T> {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn sends_and_receives_across_threads() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..10 {
            sum += rx.recv().unwrap();
        }
        assert_eq!(sum, 45);
        t.join().unwrap();
    }

    #[test]
    fn recv_errors_after_sender_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
