//! Fault injection and graceful degradation: the engine must survive
//! simulated WebGL context loss, texture OOM, shader-compile failure and
//! transient readback errors — completing every computation on a fallback
//! backend with results bit-identical to a fault-free CPU run.
//!
//! The key enabler is that the simulated WebGL programs accumulate in the
//! same order as the reference CPU kernels, so on an f32 device a mid-graph
//! backend switch is numerically invisible and `assert_eq!` is the right
//! comparison.

use proptest::prelude::*;
use std::sync::Arc;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::core::cpu::CpuBackend;
use webml::webgl_sim::devices::DeviceProfile;
use webml::webgl_sim::pager::PagingPolicy;
use webml::{new_engine, new_engine_with_faults, ops, Engine, FaultPlan};

/// A small deterministic op graph: two matmul layers with bias and relu.
/// Several draws deep, so scheduled context losses land mid-computation;
/// built only from ops whose webgl programs are accumulation-order-identical
/// to the CPU kernels (exact equality on an f32 device).
fn two_layer_chain(e: &Engine) -> Vec<f32> {
    let x = e.rand_uniform([12, 16], -1.0, 1.0, 21).unwrap();
    let w1 = e.rand_uniform([16, 10], -1.0, 1.0, 22).unwrap();
    let b1 = e.rand_uniform([1, 10], -0.5, 0.5, 23).unwrap();
    let h = ops::relu(&ops::add(&ops::matmul(&x, &w1, false, false).unwrap(), &b1).unwrap())
        .unwrap();
    let w2 = e.rand_uniform([10, 4], -1.0, 1.0, 24).unwrap();
    let y = ops::add(&ops::matmul(&h, &w2, false, false).unwrap(), &h2_bias(e)).unwrap();
    y.to_f32_vec().unwrap()
}

fn h2_bias(e: &Engine) -> webml::Tensor {
    e.rand_uniform([1, 4], -0.5, 0.5, 25).unwrap()
}

/// The same graph on a pristine engine pinned to the reference CPU backend.
fn cpu_reference() -> Vec<f32> {
    let e = new_engine();
    e.set_backend("cpu").unwrap();
    two_layer_chain(&e)
}

/// A faulty engine like [`new_engine_with_faults`] but with a custom WebGL
/// config (e.g. paging enabled).
fn engine_with_faults_and_config(plan: FaultPlan, config: WebGlConfig) -> Engine {
    let engine = Engine::new();
    engine.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let webgl = WebGlBackend::with_faults(DeviceProfile::intel_iris_pro(), config, plan)
        .expect("webgl backend");
    engine.register_backend("webgl", Arc::new(webgl), 2);
    engine
}

#[test]
fn context_loss_mid_matmul_recovers_bit_identical_on_cpu() {
    let e = new_engine_with_faults(FaultPlan::none().lose_context_at(2));
    assert_eq!(e.backend_name(), "webgl");

    let got = two_layer_chain(&e);
    assert_eq!(got, cpu_reference(), "fallback run must be bit-identical");

    assert_eq!(e.degradations(), 1, "exactly one degradation");
    let events = e.degradation_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].from_backend, "webgl");
    assert_eq!(events[0].to_backend, "cpu");
    assert!(events[0].reason.contains("lost"), "reason: {}", events[0].reason);
    assert_eq!(e.backend_name(), "cpu", "engine stays on the fallback");
    let mem = e.memory();
    assert_eq!(mem.degradations, 1);
    assert_eq!(mem.current_backend, "cpu");
}

#[test]
fn paging_absorbs_memory_pressure_without_degradation() {
    // Every single allocation fits the 16 KiB budget and paging is enabled,
    // so cumulative pressure pages textures out instead of failing allocs.
    let plan = FaultPlan::none().with_texture_byte_limit(16 * 1024);
    let config = WebGlConfig {
        paging: PagingPolicy { enabled: true, threshold_bytes: 8 * 1024 },
        ..WebGlConfig::default()
    };
    let e = engine_with_faults_and_config(plan, config);

    // ~4 KiB per tensor, 10 tensors: cumulative pressure well over budget.
    let mut acc = e.rand_uniform([32, 32], -1.0, 1.0, 31).unwrap();
    for seed in 32..41 {
        let t = e.rand_uniform([32, 32], -1.0, 1.0, seed).unwrap();
        acc = ops::add(&acc, &t).unwrap();
    }
    let got = acc.to_f32_vec().unwrap();

    let r = new_engine();
    r.set_backend("cpu").unwrap();
    let mut acc = r.rand_uniform([32, 32], -1.0, 1.0, 31).unwrap();
    for seed in 32..41 {
        let t = r.rand_uniform([32, 32], -1.0, 1.0, seed).unwrap();
        acc = ops::add(&acc, &t).unwrap();
    }
    assert_eq!(got, acc.to_f32_vec().unwrap());
    assert_eq!(e.degradations(), 0, "paging must absorb the pressure");
    assert_eq!(e.backend_name(), "webgl");
}

#[test]
fn oom_beyond_paging_falls_back_to_cpu() {
    // A 256-byte budget rejects every allocation outright (requests exceed
    // the whole limit), which paging cannot absorb: the engine must exhaust
    // its transient retries and then degrade.
    let plan = FaultPlan::none().with_texture_byte_limit(256);
    let config = WebGlConfig {
        paging: PagingPolicy { enabled: true, threshold_bytes: 128 },
        ..WebGlConfig::default()
    };
    let e = engine_with_faults_and_config(plan, config);

    let got = two_layer_chain(&e);
    assert_eq!(got, cpu_reference());
    assert_eq!(e.degradations(), 1);
    assert_eq!(e.degradation_events()[0].to_backend, "cpu");
    assert_eq!(e.backend_name(), "cpu");
}

#[test]
fn blocked_shader_falls_back_without_data_loss() {
    // "MatMul" prefix-blocks both the packed and unpacked matmul programs.
    let e = new_engine_with_faults(FaultPlan::none().block_shader("MatMul"));

    // Warm up live data on the webgl backend before the failure...
    let a = e.rand_uniform([8, 8], -1.0, 1.0, 41).unwrap();
    let b = e.rand_uniform([8, 8], -1.0, 1.0, 42).unwrap();
    let warm = ops::add(&a, &b).unwrap();
    assert_eq!(e.degradations(), 0, "elementwise ops still compile");

    // ...then hit the blocked kernel: the engine degrades and the inputs
    // (still resident webgl-side) migrate to the fallback unharmed.
    let got = ops::matmul(&warm, &a, false, false).unwrap().to_f32_vec().unwrap();

    let r = new_engine();
    r.set_backend("cpu").unwrap();
    let a2 = r.rand_uniform([8, 8], -1.0, 1.0, 41).unwrap();
    let b2 = r.rand_uniform([8, 8], -1.0, 1.0, 42).unwrap();
    let warm2 = ops::add(&a2, &b2).unwrap();
    let want = ops::matmul(&warm2, &a2, false, false).unwrap().to_f32_vec().unwrap();

    assert_eq!(got, want);
    assert_eq!(e.degradations(), 1);
    let event = &e.degradation_events()[0];
    assert_eq!(event.kernel, "MatMul");
    assert!(event.reason.contains("MatMul"), "reason: {}", event.reason);
}

#[test]
fn transient_readback_faults_are_retried_invisibly() {
    let e = new_engine_with_faults(FaultPlan::none().with_readback_failures(1.0, 2));
    let got = two_layer_chain(&e);
    assert_eq!(got, cpu_reference());
    // Bounded readback faults heal through in-place retries, not fallback.
    assert_eq!(e.degradations(), 0);
    assert_eq!(e.backend_name(), "webgl");
}

/// The seed consumed by the `fault-soak` CI job: each matrix entry exports
/// `WEBML_FAULT_SEED` and re-runs this test against a different random
/// fault schedule. Defaults to seed 0 in a plain `cargo test`.
#[test]
fn fault_soak_seeded_plan_is_numerically_invisible() {
    let seed: u64 = std::env::var("WEBML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let plan = FaultPlan::from_seed(seed);
    let e = new_engine_with_faults(plan);
    let want = cpu_reference();
    // Two passes: the second exercises the engine in whatever degraded (or
    // healthy) state the first left it.
    for pass in 0..2 {
        let got = two_layer_chain(&e);
        assert_eq!(got, want, "seed {seed}, pass {pass}");
    }
    assert!(e.degradations() <= 1, "at most one webgl→cpu fallback exists");
}

/// Concurrent stress under the same seeded fault schedule the `fault-soak`
/// CI matrix replays: 8 threads share one faulty engine, mixing creation,
/// kernels, readback, disposal and accounting calls. Whatever the seed
/// injects (transient readbacks, OOM, context loss), every value must stay
/// correct and the final memory accounting must be exact.
#[test]
fn concurrent_stress_under_seeded_faults_keeps_exact_accounting() {
    let seed: u64 = std::env::var("WEBML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let e = Arc::new(new_engine_with_faults(FaultPlan::from_seed(seed)));
    let base = e.memory();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            let mut kept = Vec::new();
            for i in 0..16u64 {
                let v = (t * 17 + i) as f32;
                let a = e.fill([64], v, webml::DType::F32).unwrap();
                let b = ops::add(&a, &a).unwrap();
                let vals = b.to_f32_vec().unwrap();
                assert!(
                    vals.iter().all(|&x| x == v * 2.0),
                    "seed {seed} thread {t} iter {i}"
                );
                a.dispose();
                if i % 5 == 0 {
                    kept.push(b);
                } else {
                    b.dispose();
                }
                if i % 4 == 1 {
                    let _ = e.memory();
                }
            }
            kept
        }));
    }
    let mut kept_all = Vec::new();
    for h in handles {
        kept_all.extend(h.join().unwrap());
    }
    let m = e.memory();
    assert_eq!(m.num_tensors, base.num_tensors + kept_all.len(), "seed {seed}");
    assert_eq!(m.num_bytes, base.num_bytes + kept_all.len() * 64 * 4, "seed {seed}");
    for t in kept_all {
        t.dispose();
    }
    let end = e.memory();
    assert_eq!(end.num_tensors, base.num_tensors, "seed {seed}");
    assert_eq!(end.num_bytes, base.num_bytes, "seed {seed}");
    assert!(e.degradations() <= 1, "at most one webgl→cpu fallback exists");
}

/// The serving layer over a faulty engine: a scheduled context loss lands
/// mid-traffic, the engine degrades webgl→cpu, the warm-model cache
/// invalidates (the lost context's uploads are gone), models rebuild on
/// the fallback — and every client still gets a correct answer. Run by the
/// `serve-smoke` CI job (`--test fault_injection serve`).
#[test]
fn serve_survives_context_loss_and_reloads_on_fallback() {
    use std::time::Duration;
    use webml::models::serving::{classifier_artifacts, synthetic_example};
    use webml::serve::{ModelServer, ModelSource, ServeConfig};

    const IN_DIM: usize = 16;
    const CLASSES: usize = 5;
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;

    // Build the artifacts once on a clean engine; both servers rebuild from
    // the same host-side weights, so their answers are comparable.
    let builder = new_engine();
    builder.set_backend("cpu").unwrap();
    let artifacts = classifier_artifacts(&builder, IN_DIM, 24, CLASSES, 9).unwrap();

    // Reference answers from a fault-free CPU server.
    let r = new_engine();
    r.set_backend("cpu").unwrap();
    let ref_server = ModelServer::new(&r, ServeConfig::default());
    let ref_key = ref_server.register(ModelSource::Artifacts(artifacts.clone()));
    let examples: Vec<Vec<f32>> =
        (0..CLIENTS * PER_CLIENT).map(|i| synthetic_example(IN_DIM, i)).collect();
    let want: Vec<Vec<f32>> = examples
        .iter()
        .map(|ex| ref_server.infer(ref_key, ex.clone(), vec![IN_DIM]).unwrap().values)
        .collect();

    // The faulty server: context loss scheduled a few forward passes in.
    let e = new_engine_with_faults(FaultPlan::none().lose_context_at(40));
    assert_eq!(e.backend_name(), "webgl");
    let server = Arc::new(ModelServer::new(
        &e,
        ServeConfig { max_batch: 4, max_wait: Duration::from_millis(2), cache_capacity: 2, ..Default::default() },
    ));
    let key = server.register(ModelSource::Artifacts(artifacts));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = server.clone();
            let examples = examples.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                for r in 0..PER_CLIENT {
                    let idx = c * PER_CLIENT + r;
                    let resp = server
                        .infer(key, examples[idx].clone(), vec![IN_DIM])
                        .expect("requests keep succeeding across the context loss");
                    assert_eq!(resp.dims, vec![CLASSES]);
                    for (got, want) in resp.values.iter().zip(&want[idx]) {
                        assert!(
                            (got - want).abs() < 1e-5,
                            "client {c} request {r}: {got} vs {want}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The loss degraded the engine exactly once and stranded the cache,
    // which invalidated and rebuilt on the fallback backend. Stats are read
    // *before* shutdown: the shutdown path counts one more invalidation for
    // releasing the warm models.
    assert_eq!(e.degradations(), 1, "exactly one webgl→cpu fallback");
    assert_eq!(e.backend_name(), "cpu");
    let stats = server.stats();
    assert_eq!(stats.served, (CLIENTS * PER_CLIENT) as u64);
    assert!(stats.cache_invalidations >= 1, "context loss invalidated the cache: {stats:?}");
}

/// Execution plans are keyed to the engine's degradation generation: a
/// seeded context loss mid-soak must invalidate every cached plan, and the
/// next request recompiles on the fallback backend with results bitwise
/// identical to a pristine CPU run. The `fault-soak` CI matrix exports
/// `WEBML_FAULT_SEED` to move the loss point between runs.
#[test]
fn context_loss_invalidates_and_rebuilds_execution_plans() {
    use webml::models::graph_mlp;
    use webml::Shape;
    let seed: u64 = std::env::var("WEBML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let spec = graph_mlp(8, &[16, 16], 4, 33);
    // Reference: the same model on a pristine CPU engine.
    let r = new_engine();
    r.set_backend("cpu").unwrap();
    let ref_model = spec.build(&r).unwrap();
    let (vals, shape) = spec.example(1, 0);
    let xr = r.tensor(vals.clone(), Shape::new(shape.clone())).unwrap();
    let want =
        ref_model.execute(&[(&spec.input, &xr)], &[&spec.output]).unwrap()[0].to_f32_vec().unwrap();

    // Lose the context partway through a 6-pass soak (each planned pass is
    // a handful of draws), at a seed-dependent draw.
    let e = new_engine_with_faults(FaultPlan::none().lose_context_at(3 + seed % 13));
    let model = spec.build(&e).unwrap();
    let x = e.tensor(vals, Shape::new(shape)).unwrap();
    x.keep();
    for pass in 0..6 {
        let got =
            model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap()[0].to_f32_vec().unwrap();
        assert_eq!(got, want, "seed {seed}, pass {pass}");
    }
    assert_eq!(e.degradations(), 1, "the scheduled loss fired mid-soak");
    assert_eq!(e.backend_name(), "cpu");
    let stats = model.plan_stats();
    assert!(stats.invalidations >= 1, "loss invalidated the plan cache: {stats:?}");
    assert!(
        stats.misses >= 2,
        "a plan was recompiled on the fallback backend: {stats:?}"
    );
    assert!(stats.hits >= 1, "post-rebuild passes ride the new plan: {stats:?}");
}

/// A WebGPU device loss must land one rung down — on **webgl**, not cpu —
/// with results bit-identical to the reference (both GPU rungs accumulate
/// in the CPU kernel order).
#[test]
fn webgpu_device_loss_lands_on_webgl_bit_identical() {
    let e = webml::new_engine_with_webgpu_faults(FaultPlan::none().lose_context_at(2));
    assert_eq!(e.backend_name(), "webgpu");

    let got = two_layer_chain(&e);
    assert_eq!(got, cpu_reference(), "post-loss run must be bit-identical");

    assert_eq!(e.degradations(), 1);
    let events = e.degradation_events();
    assert_eq!(events[0].from_backend, "webgpu");
    assert_eq!(events[0].to_backend, "webgl", "the ladder lands on the webgl rung first");
    assert_eq!(e.backend_name(), "webgl");
}

/// Both GPU devices fail in sequence: the engine must walk the full
/// `webgpu → webgl → cpu` ladder, losing no data and no accuracy.
#[test]
fn double_device_loss_walks_the_full_ladder_to_cpu() {
    use webml::backend_webgpu::WebGpuBackend;
    use webml::webgpu_sim::WebGpuConfig;
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let webgl = WebGlBackend::with_faults(
        DeviceProfile::intel_iris_pro(),
        WebGlConfig::default(),
        FaultPlan::none().lose_context_at(1).unrestorable(),
    )
    .unwrap();
    e.register_backend("webgl", Arc::new(webgl), 2);
    let webgpu = WebGpuBackend::with_faults(
        DeviceProfile::intel_iris_pro(),
        WebGpuConfig::default(),
        FaultPlan::none().lose_context_at(2).unrestorable(),
    )
    .unwrap();
    e.register_backend("webgpu", Arc::new(webgpu), 3);
    assert_eq!(e.backend_ladder()[..3], ["webgpu".to_string(), "webgl".into(), "cpu".into()]);

    let got = two_layer_chain(&e);
    assert_eq!(got, cpu_reference(), "double-fault run must be bit-identical");

    assert_eq!(e.degradations(), 2, "two rungs failed");
    let events = e.degradation_events();
    assert_eq!(
        (events[0].from_backend.as_str(), events[0].to_backend.as_str()),
        ("webgpu", "webgl")
    );
    assert_eq!(
        (events[1].from_backend.as_str(), events[1].to_backend.as_str()),
        ("webgl", "cpu")
    );
    assert_eq!(e.backend_name(), "cpu");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: no randomly seeded fault plan may ever change numerical
    /// results — faults may only cost time (retries) or a degradation.
    #[test]
    fn any_fault_seed_never_changes_output(seed in 0u64..10_000) {
        let e = new_engine_with_faults(FaultPlan::from_seed(seed));
        let got = two_layer_chain(&e);
        prop_assert_eq!(got, cpu_reference());
    }

    /// Property: a context loss landing anywhere inside a pipelined window
    /// (ops enqueued, async readbacks and fences in flight, up to three
    /// submissions deep) must drain cleanly — every `PendingFetches`
    /// resolves with answers bitwise-identical to a pristine CPU run and
    /// zero caller-visible errors, the degradation ladder replaying
    /// whatever the lost context swallowed on the fallback backend.
    #[test]
    fn context_loss_mid_pipeline_drains_bit_identical(seed in 0u64..10_000) {
        use std::collections::VecDeque;
        use webml::converter::PendingFetches;
        use webml::models::graph_mlp;
        use webml::Shape;
        const DEPTH: usize = 3;
        const PASSES: usize = 8;
        const CYCLE: usize = 4;

        let spec = graph_mlp(8, &[16, 16], 4, 33);
        // Reference answers for each input in the cycle, from a pristine
        // CPU engine.
        let r = new_engine();
        r.set_backend("cpu").unwrap();
        let ref_model = spec.build(&r).unwrap();
        let mut want = Vec::with_capacity(CYCLE);
        for k in 0..CYCLE {
            let (vals, shape) = spec.example(1, k);
            let x = r.tensor(vals, Shape::new(shape)).unwrap();
            let outs = ref_model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
            want.push(outs[0].to_f32_vec().unwrap());
        }

        // Context loss at a seed-scheduled draw: early losses land during
        // the first submissions, late ones mid-window or during drains.
        let e = new_engine_with_faults(FaultPlan::none().lose_context_at(1 + seed % 60));
        let model = spec.build(&e).unwrap();
        let inputs: Vec<webml::Tensor> = (0..CYCLE)
            .map(|k| {
                let (vals, shape) = spec.example(1, k);
                let x = e.tensor(vals, Shape::new(shape)).unwrap();
                x.keep();
                x
            })
            .collect();

        let mut window: VecDeque<(usize, PendingFetches)> = VecDeque::new();
        for pass in 0..PASSES {
            let k = pass % CYCLE;
            let pending = model
                .execute_pipelined(&[(&spec.input, &inputs[k])], &[&spec.output])
                .expect("submission never surfaces an error");
            window.push_back((k, pending));
            if window.len() == DEPTH {
                let (k, pending) = window.pop_front().expect("window non-empty");
                let got = pending.wait().expect("in-flight fetches drain cleanly");
                prop_assert!(got[0].to_f32_vec() == want[k], "output diverged: seed {} pass {}", seed, pass);
            }
        }
        for (k, pending) in window {
            let got = pending.wait().expect("final drain completes");
            prop_assert!(got[0].to_f32_vec() == want[k], "output diverged: seed {} drain", seed);
        }
        prop_assert!(e.degradations() <= 1, "at most one webgl→cpu fallback");
    }

    /// Property: a WebGPU device loss landing anywhere inside a pipelined
    /// window drains cleanly onto the **webgl** rung — every pending fetch
    /// resolves bitwise-identical to a pristine CPU run, zero caller-visible
    /// errors, and the one degradation (if the scheduled loss fired at all)
    /// goes webgpu→webgl, never skipping a rung.
    #[test]
    fn webgpu_loss_mid_pipeline_drains_onto_webgl(seed in 0u64..10_000) {
        use std::collections::VecDeque;
        use webml::converter::PendingFetches;
        use webml::models::graph_mlp;
        use webml::Shape;
        const DEPTH: usize = 3;
        const PASSES: usize = 8;
        const CYCLE: usize = 4;

        let spec = graph_mlp(8, &[16, 16], 4, 33);
        let r = new_engine();
        r.set_backend("cpu").unwrap();
        let ref_model = spec.build(&r).unwrap();
        let mut want = Vec::with_capacity(CYCLE);
        for k in 0..CYCLE {
            let (vals, shape) = spec.example(1, k);
            let x = r.tensor(vals, Shape::new(shape)).unwrap();
            let outs = ref_model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
            want.push(outs[0].to_f32_vec().unwrap());
        }

        let e = webml::new_engine_with_webgpu_faults(
            FaultPlan::none().lose_context_at(1 + seed % 60),
        );
        prop_assert_eq!(e.backend_name(), "webgpu");
        let model = spec.build(&e).unwrap();
        let inputs: Vec<webml::Tensor> = (0..CYCLE)
            .map(|k| {
                let (vals, shape) = spec.example(1, k);
                let x = e.tensor(vals, Shape::new(shape)).unwrap();
                x.keep();
                x
            })
            .collect();

        let mut window: VecDeque<(usize, PendingFetches)> = VecDeque::new();
        for pass in 0..PASSES {
            let k = pass % CYCLE;
            let pending = model
                .execute_pipelined(&[(&spec.input, &inputs[k])], &[&spec.output])
                .expect("submission never surfaces an error");
            window.push_back((k, pending));
            if window.len() == DEPTH {
                let (k, pending) = window.pop_front().expect("window non-empty");
                let got = pending.wait().expect("in-flight fetches drain cleanly");
                prop_assert!(got[0].to_f32_vec() == want[k], "output diverged: seed {} pass {}", seed, pass);
            }
        }
        for (k, pending) in window {
            let got = pending.wait().expect("final drain completes");
            prop_assert!(got[0].to_f32_vec() == want[k], "output diverged: seed {} drain", seed);
        }
        prop_assert!(e.degradations() <= 1, "at most one webgpu→webgl fallback");
        if e.degradations() == 1 {
            let events = e.degradation_events();
            prop_assert_eq!(events[0].from_backend.as_str(), "webgpu");
            // Never skips the webgl rung.
            prop_assert_eq!(events[0].to_backend.as_str(), "webgl");
        }
    }
}

/// A 4-engine SLO fleet under simultaneous overload, a scheduled context
/// loss, and seeded draw stragglers. The serving contract under faults:
/// shed requests fail with *explicit* refusals (never a hang or a silent
/// drop), admitted requests return answers bitwise-identical to a
/// fault-free CPU reference (the degradation ladder and re-routing are
/// numerically invisible), and every submitted request lands in exactly
/// one outcome bucket of the fleet's accounting.
fn fleet_soak(seed: u64, clients: usize, requests: usize, burst: usize) {
    use std::time::Duration;
    use webml::models::serving::{classifier_artifacts, synthetic_example};
    use webml::serve::{
        EngineSpec, FleetConfig, FleetServer, ModelServer, ModelSlo, ModelSource, ServeConfig,
        ServeError,
    };

    const IN_DIM: usize = 16;
    const CLASSES: usize = 5;

    // Reference oracle: the same artifacts served unbatched on a pristine
    // CPU engine.
    let builder = new_engine();
    builder.set_backend("cpu").unwrap();
    let artifacts = classifier_artifacts(&builder, IN_DIM, 24, CLASSES, 9).unwrap();
    let r = new_engine();
    r.set_backend("cpu").unwrap();
    let ref_server = ModelServer::new(&r, ServeConfig { max_batch: 1, ..Default::default() });
    let ref_key = ref_server.register(ModelSource::Artifacts(artifacts.clone()));
    let total = clients * requests + burst;
    let examples: Vec<Vec<f32>> = (0..total).map(|i| synthetic_example(IN_DIM, i)).collect();
    let want: Vec<Vec<f32>> = examples
        .iter()
        .map(|ex| ref_server.infer(ref_key, ex.clone(), vec![IN_DIM]).unwrap().values)
        .collect();

    // The fleet: one engine loses its WebGL context at a seed-scheduled
    // draw, one rides the webgpu rung and loses *that* device (landing on
    // its webgl rung, one step down the three-rung ladder), one straggles
    // with seeded stalls (slow, never wrong), one is a clean WebGL engine,
    // one is CPU-only. All full-precision profiles, so a mid-traffic
    // backend switch is bitwise-invisible.
    let loss_engine = engine_with_faults_and_config(
        FaultPlan::none().lose_context_at(1 + seed % 60),
        WebGlConfig::default(),
    );
    let webgpu_loss_engine = webml::new_engine_with_webgpu_faults(
        FaultPlan::none().lose_context_at(1 + seed % 40),
    );
    let stall_engine = engine_with_faults_and_config(
        FaultPlan { seed, ..FaultPlan::none() }.with_draw_stall(0.1, 200_000),
        WebGlConfig::default(),
    );
    let clean_engine = new_engine();
    let cpu_only = Engine::new();
    cpu_only.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let fleet = FleetServer::new(
        vec![
            EngineSpec::new("loss", &loss_engine, 8),
            EngineSpec::new("webgpu-loss", &webgpu_loss_engine, 4),
            EngineSpec::new("stall", &stall_engine, 4),
            EngineSpec::new("clean", &clean_engine, 4),
            EngineSpec::new("cpu", &cpu_only, 1),
        ],
        FleetConfig {
            max_batch: 4,
            queue_capacity: 16,
            ..Default::default()
        },
    );
    // Generous SLO: the closed-loop phase gates correctness, not latency.
    let key = fleet.register(
        ModelSource::Artifacts(artifacts),
        ModelSlo::new(1_000.0, Duration::from_secs(10)),
    );

    // Phase 1: closed-loop clients — every request is admitted and must be
    // answered bitwise-identically to the reference, across the context
    // loss, re-routes, and stragglers.
    let fleet = Arc::new(fleet);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let fleet = fleet.clone();
            let examples = examples.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                for r in 0..requests {
                    let idx = c * requests + r;
                    let resp = fleet
                        .infer(key, examples[idx].clone(), vec![IN_DIM])
                        .expect("closed-loop requests keep succeeding under faults");
                    assert_eq!(resp.dims, vec![CLASSES]);
                    assert_eq!(
                        resp.values, want[idx],
                        "client {c} request {r}: fleet answer must be bitwise-identical"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Phase 2: an overload burst with a 1 ms deadline. Every outcome must
    // be either a correct answer or an explicit refusal — never an engine
    // error surfaced to the caller.
    let base = clients * requests;
    let pending: Vec<_> = (0..burst)
        .map(|i| {
            fleet.submit_with_deadline(
                key,
                examples[base + i].clone(),
                vec![IN_DIM],
                Duration::from_millis(1),
            )
        })
        .collect();
    let mut refused = 0u64;
    for (i, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(resp) => assert_eq!(
                resp.values,
                want[base + i],
                "burst request {i}: admitted answers stay bitwise-identical"
            ),
            Err(ServeError::DeadlineExceeded { .. }) => refused += 1,
            Err(ref e) if e.is_shed() => refused += 1,
            Err(e) => panic!("burst request {i}: non-explicit failure {e}"),
        }
    }
    assert!(
        refused > 0,
        "a {burst}-request burst with a 1 ms deadline must shed explicitly (seed {seed})"
    );

    // The scheduled loss draw may land after the measured traffic, and a
    // trip is only *observed* at the tripped engine's next drain — so kick
    // the fleet with sequential requests until the breaker registers it.
    // While the fleet is idle every predicted wait is zero and min-wait
    // routing resolves the tie to the first-listed engine (the loss
    // engine), so each kick deterministically advances its draw count
    // toward the scheduled loss.
    let mut kicks = 0u64;
    while fleet.stats().breaker_trips == 0 && kicks < 200 {
        let _ = fleet.infer(key, examples[kicks as usize % total].clone(), vec![IN_DIM]);
        kicks += 1;
    }

    // The contract ledger: exact accounting, zero caller-visible engine
    // errors, and the scheduled context loss actually tripped a breaker.
    let stats = fleet.stats();
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "every submitted request lands in exactly one outcome bucket: {stats:?}"
    );
    assert_eq!(stats.submitted, total as u64 + kicks);
    assert_eq!(stats.engine_errors, 0, "faults must never surface as engine errors");
    assert!(stats.breaker_trips >= 1, "the scheduled context loss trips a breaker");
    assert!(loss_engine.degradations() >= 1, "the loss engine degraded to its CPU rung");
    // The webgpu engine's scheduled loss is seed-positioned and may land
    // after the measured traffic; but *if* it fired, the ladder must have
    // stepped exactly one rung down, onto webgl.
    let gpu_events = webgpu_loss_engine.degradation_events();
    if let Some(first) = gpu_events.first() {
        assert_eq!(first.from_backend, "webgpu");
        assert_eq!(first.to_backend, "webgl", "webgpu loss lands on the webgl rung");
    }
}

/// The fleet soak at CI scale, driven by the `fault-soak` matrix seed.
#[test]
fn fleet_soak_sheds_explicitly_and_stays_bit_identical() {
    let seed: u64 = std::env::var("WEBML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    fleet_soak(seed, 12, 20, 400);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: the fleet serving contract (explicit sheds, bitwise
    /// answers, exact accounting) holds for any fault seed.
    #[test]
    fn fleet_soak_contract_holds_for_any_seed(seed in 0u64..1_000) {
        fleet_soak(seed, 6, 6, 120);
    }
}

/// PR-9 observability under the fault matrix (driven by the same
/// `WEBML_FAULT_SEED` as the soak): ≥99% of completed requests
/// reconstruct a complete six-phase timeline from their trace id, every
/// shed / breaker trip / degradation raises a flight-recorder trigger,
/// and the breaker-trip snapshot captures per-engine fleet context.
#[test]
fn fault_matrix_attribution_stays_complete_and_flight_recorder_fires() {
    use std::time::Duration;
    use webml::models::serving::{classifier_artifacts, synthetic_example};
    use webml::serve::{
        EngineSpec, FleetConfig, FleetServer, ModelSlo, ModelSource, ServeError,
    };
    use webml::telemetry::{attribution, flight};

    let seed: u64 = std::env::var("WEBML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    const IN_DIM: usize = 16;
    const CLASSES: usize = 5;
    // Unique layer geometry: model keys are content hashes and the
    // attribution table is process-global, so these params must differ
    // from every other model built in this binary.
    let builder = new_engine();
    builder.set_backend("cpu").unwrap();
    let artifacts = classifier_artifacts(&builder, IN_DIM, 28, CLASSES, 7).unwrap();

    let loss_engine = engine_with_faults_and_config(
        FaultPlan::none().lose_context_at(1 + seed % 40),
        WebGlConfig::default(),
    );
    let stall_engine = engine_with_faults_and_config(
        FaultPlan { seed, ..FaultPlan::none() }.with_draw_stall(0.1, 200_000),
        WebGlConfig::default(),
    );
    let cpu_only = Engine::new();
    cpu_only.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let fleet = FleetServer::new(
        vec![
            EngineSpec::new("loss", &loss_engine, 8),
            EngineSpec::new("stall", &stall_engine, 4),
            EngineSpec::new("cpu", &cpu_only, 1),
        ],
        FleetConfig { max_batch: 4, queue_capacity: 16, ..Default::default() },
    );
    let key = fleet.register(
        ModelSource::Artifacts(artifacts),
        ModelSlo::new(1_000.0, Duration::from_secs(10)),
    );
    attribution::set_model_label(key, "fault-matrix");

    // Trigger counters are process-global and monotone, so deltas from
    // here can only be inflated by concurrent tests — `>=` stays sound.
    let shed_before = flight::trigger_count("shed");
    let trip_before = flight::trigger_count("breaker_trip");

    // Phase 1: closed-loop traffic across the scheduled context loss and
    // seeded stalls — every admitted request completes.
    let fleet = Arc::new(fleet);
    let handles: Vec<_> = (0..8)
        .map(|c| {
            let fleet = fleet.clone();
            std::thread::spawn(move || {
                for r in 0..15 {
                    fleet
                        .infer(key, synthetic_example(IN_DIM, c * 15 + r), vec![IN_DIM])
                        .expect("closed-loop requests keep succeeding under faults");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Phase 2: an overload burst with a 1 ms deadline forces explicit
    // sheds, each of which must raise a flight trigger.
    let pending: Vec<_> = (0..200)
        .map(|i| {
            fleet.submit_with_deadline(
                key,
                synthetic_example(IN_DIM, 1000 + i),
                vec![IN_DIM],
                Duration::from_millis(1),
            )
        })
        .collect();
    for p in pending {
        match p.wait() {
            Ok(_) | Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(ref e) if e.is_shed() => {}
            Err(e) => panic!("burst request: non-explicit failure {e}"),
        }
    }

    // Kick until the scheduled context loss registers as a breaker trip
    // (observed only at the tripped engine's next drain).
    let mut kicks = 0u64;
    while fleet.stats().breaker_trips == 0 && kicks < 200 {
        let _ = fleet.infer(key, synthetic_example(IN_DIM, kicks as usize), vec![IN_DIM]);
        kicks += 1;
    }
    let stats = fleet.stats();
    assert!(stats.breaker_trips >= 1, "the scheduled context loss trips a breaker");

    // Attribution: ≥99% of this model's completed requests reconstructed
    // all six phases from one trace id (the fault matrix may not shed —
    // completed requests are the completeness denominator).
    let (complete, incomplete) = attribution::model_counts(key);
    assert!(complete > 0, "completed requests were attributed");
    let completeness = complete as f64 / (complete + incomplete) as f64;
    assert!(
        completeness >= 0.99,
        "phase-timeline completeness {completeness:.4} < 0.99 \
         ({complete} complete / {incomplete} incomplete, seed {seed})"
    );

    // Flight recorder: every shed and every trip raised a trigger.
    let sheds = stats.total_shed() + stats.deadline_rejected;
    if stats.total_shed() > 0 {
        assert!(
            flight::trigger_count("shed") - shed_before >= stats.total_shed(),
            "every shed raises a flight trigger ({} sheds, seed {seed})",
            sheds
        );
    }
    assert!(
        flight::trigger_count("breaker_trip") - trip_before >= stats.breaker_trips,
        "every breaker trip raises a flight trigger (seed {seed})"
    );

    // The breaker-trip snapshot carries the fleet context: per-engine
    // rows (breaker state, memory) for post-hoc attribution.
    let snap = flight::snapshots()
        .into_iter()
        .rev()
        .find(|s| s.kind == "breaker_trip")
        .expect("a breaker trip captured a flight snapshot");
    assert!(
        snap.context.get("engines").is_some(),
        "breaker-trip snapshot context carries per-engine rows: {:?}",
        snap.context
    );
    assert!(
        snap.entries.iter().any(|e| e.kind == "request"),
        "flight ring at capture time holds recent request timelines"
    );
    // The whole snapshot set stays JSON-exportable.
    let json = flight::snapshots_json();
    assert!(json.get("snapshots").is_some(), "snapshots export as JSON: {json:?}");
}
