//! End-to-end telemetry: concurrent profiling correctness, Chrome trace
//! round-trip over a served webgl workload, and device-timer fallback on
//! simulated devices without `EXT_disjoint_timer_query`.

use std::sync::Arc;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::models::serving::{classifier_artifacts, synthetic_example};
use webml::serve::{ModelServer, ModelSource, ServeConfig};
use webml::webgl_sim::devices::DeviceProfile;
use webml::{ops, Engine};

fn webgl_engine(profile: DeviceProfile) -> Engine {
    let e = Engine::new();
    let b = WebGlBackend::new(profile, WebGlConfig::default())
        .expect("profile supports float textures");
    e.register_backend("webgl", Arc::new(b), 2);
    e
}

/// Satellite: `Engine::profile` must stay exact under concurrent kernel
/// traffic — the per-thread-striped collector may not lose or duplicate a
/// single kernel. 8 threads × 10 iterations × (Add, Mul, Relu).
#[test]
fn concurrent_profiling_counts_every_kernel_exactly() {
    let e = webml::new_engine();
    e.set_backend("cpu").unwrap();
    const THREADS: usize = 8;
    const ITERS: usize = 10;
    let (_, info) = e.profile(|| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        let a = e.fill([32], (t * ITERS + i) as f32, webml::DType::F32).unwrap();
                        let b = ops::add(&a, &a).unwrap();
                        let c = ops::mul(&b, &a).unwrap();
                        let d = ops::relu(&c).unwrap();
                        for t in [a, b, c, d] {
                            t.dispose();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let count = |name: &str| info.kernels.iter().filter(|k| k.name == name).count();
    assert_eq!(count("Add"), THREADS * ITERS, "every Add recorded exactly once");
    assert_eq!(count("Mul"), THREADS * ITERS);
    assert_eq!(count("Relu"), THREADS * ITERS);
    // `fill` registers data without a kernel dispatch, so the log holds
    // exactly the three op kernels per iteration — no loss, no duplicates.
    assert_eq!(info.kernels.len(), 3 * THREADS * ITERS, "kernel log is exact");
    assert!(info.new_tensors >= 4 * THREADS * ITERS, "every output tensor counted");
    assert!(info.kernels.iter().all(|k| k.wall_ms >= 0.0));
}

/// Tentpole: a served webgl workload exports a Chrome trace that parses
/// back with per-thread tracks, kernel spans nested inside the serve
/// span that dispatched them, and a virtual GPU track.
#[test]
fn chrome_trace_roundtrip_from_served_traffic() {
    let engine = webgl_engine(DeviceProfile::intel_iris_pro());
    let artifacts = classifier_artifacts(&engine, 16, 32, 4, 3).expect("build model");
    let mut server = ModelServer::new(
        &engine,
        ServeConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(50),
            cache_capacity: 2,
            ..Default::default()
        },
    );
    let key = server.register(ModelSource::Artifacts(artifacts));
    // Warm up untraced so the trace captures steady-state serving.
    server.infer(key, synthetic_example(16, 0), vec![16]).expect("warmup");

    webml::telemetry::clear();
    webml::telemetry::set_enabled(true);
    let pending: Vec<_> =
        (0..8).map(|i| server.submit(key, synthetic_example(16, i), vec![16])).collect();
    for p in pending {
        p.wait().expect("served inference");
    }
    server.shutdown();
    webml::telemetry::set_enabled(false);

    let text = webml::telemetry::chrome_trace_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace parses back");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");

    // Thread tracks: metadata for the GPU track plus at least the
    // dispatcher and device threads.
    let thread_names: Vec<(&serde_json::Value, &str)> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
        })
        .map(|e| {
            (
                e.get("tid").expect("meta tid"),
                e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()).unwrap_or(""),
            )
        })
        .collect();
    assert!(thread_names.len() >= 3, "GPU + dispatcher + device tracks: {thread_names:?}");
    assert!(thread_names.iter().any(|(_, n)| n.contains("GPU")), "virtual GPU track declared");
    assert!(
        thread_names.iter().any(|(_, n)| n.contains("webml-serve-dispatcher")),
        "dispatcher thread named: {thread_names:?}"
    );
    let gpu_tid = thread_names.iter().find(|(_, n)| n.contains("GPU")).map(|(t, _)| *t).unwrap();

    let spans: Vec<&serde_json::Value> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    let field = |e: &serde_json::Value, k: &str| e.get(k).and_then(|v| v.as_f64()).unwrap();

    // The batch the dispatcher coalesced: the pipelined dispatcher is
    // two-phase, so the submit span carries the engine kernel spans it
    // enqueued nested inside (same track, contained interval) and a
    // matching completion span replies after the fence.
    assert!(
        spans.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some("serve.complete")),
        "a serve.complete span (pipelined completion phase)"
    );
    let batch = spans
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("serve.submit"))
        .expect("a serve.submit span (8 submits, max_batch 8)");
    let batch_tid = batch.get("tid").expect("span tid");
    let (b0, b1) = (field(batch, "ts"), field(batch, "ts") + field(batch, "dur"));
    let nested_kernels = spans
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("kernel")
                && e.get("tid") == Some(batch_tid)
                && field(e, "ts") >= b0
                && field(e, "ts") + field(e, "dur") <= b1 + 1.0
        })
        .count();
    assert!(nested_kernels >= 3, "MLP kernels nest inside the batch span, got {nested_kernels}");

    // The GPU track carries device spans annotated with timer-query time.
    let gpu_spans: Vec<_> = spans.iter().filter(|e| e.get("tid") == Some(gpu_tid)).collect();
    assert!(!gpu_spans.is_empty(), "device work appears on the GPU track");
    assert!(gpu_spans.iter().all(|e| {
        e.get("args").and_then(|a| a.get("modeled_device_ns")).and_then(|v| v.as_f64()).unwrap_or(-1.0)
            > 0.0
    }));
}

/// Device-timer plumbing: profiles report device `kernel_ms` when the
/// simulated device has `EXT_disjoint_timer_query`, and degrade to `None`
/// (never garbage) when it does not.
#[test]
fn profile_device_time_degrades_without_timer_extension() {
    // intel_iris_pro advertises the extension → Some(kernel_ms).
    let with_timer = webgl_engine(DeviceProfile::intel_iris_pro());
    let (_, info) = with_timer.profile(|| {
        let a = with_timer.fill([64, 64], 1.5, webml::DType::F32).unwrap();
        let b = ops::matmul(&a, &a, false, false).unwrap();
        b.to_f32_vec().unwrap();
        a.dispose();
        b.dispose();
    });
    assert!(!info.kernels.is_empty());
    assert!(
        info.kernels.iter().all(|k| k.kernel_ms.is_some()),
        "every kernel carries device time on a timer-query device"
    );
    let device_total: f64 = info.kernels.iter().filter_map(|k| k.kernel_ms).sum();
    assert!(device_total > 0.0, "draw-call overhead alone makes device time positive");

    // android_modern lacks the extension → graceful None, wall time intact.
    let no_timer = webgl_engine(DeviceProfile::android_modern());
    let (_, info) = no_timer.profile(|| {
        let a = no_timer.fill([64, 64], 1.5, webml::DType::F32).unwrap();
        let b = ops::matmul(&a, &a, false, false).unwrap();
        b.to_f32_vec().unwrap();
        a.dispose();
        b.dispose();
    });
    assert!(!info.kernels.is_empty());
    assert!(
        info.kernels.iter().all(|k| k.kernel_ms.is_none()),
        "no disjoint-timer-query extension → kernel_ms must be None"
    );
    assert!(info.kernels.iter().all(|k| k.wall_ms >= 0.0), "wall timing still reported");
}
