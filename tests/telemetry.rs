//! End-to-end telemetry: concurrent profiling correctness, Chrome trace
//! round-trip over a served webgl workload, and device-timer fallback on
//! simulated devices without `EXT_disjoint_timer_query`.

use std::sync::Arc;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::models::serving::{classifier_artifacts, synthetic_example};
use webml::serve::{ModelServer, ModelSource, ServeConfig};
use webml::webgl_sim::devices::DeviceProfile;
use webml::{ops, Engine};

fn webgl_engine(profile: DeviceProfile) -> Engine {
    let e = Engine::new();
    let b = WebGlBackend::new(profile, WebGlConfig::default())
        .expect("profile supports float textures");
    e.register_backend("webgl", Arc::new(b), 2);
    e
}

/// Satellite: `Engine::profile` must stay exact under concurrent kernel
/// traffic — the per-thread-striped collector may not lose or duplicate a
/// single kernel. 8 threads × 10 iterations × (Add, Mul, Relu).
#[test]
fn concurrent_profiling_counts_every_kernel_exactly() {
    let e = webml::new_engine();
    e.set_backend("cpu").unwrap();
    const THREADS: usize = 8;
    const ITERS: usize = 10;
    let (_, info) = e.profile(|| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        let a = e.fill([32], (t * ITERS + i) as f32, webml::DType::F32).unwrap();
                        let b = ops::add(&a, &a).unwrap();
                        let c = ops::mul(&b, &a).unwrap();
                        let d = ops::relu(&c).unwrap();
                        for t in [a, b, c, d] {
                            t.dispose();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let count = |name: &str| info.kernels.iter().filter(|k| k.name == name).count();
    assert_eq!(count("Add"), THREADS * ITERS, "every Add recorded exactly once");
    assert_eq!(count("Mul"), THREADS * ITERS);
    assert_eq!(count("Relu"), THREADS * ITERS);
    // `fill` registers data without a kernel dispatch, so the log holds
    // exactly the three op kernels per iteration — no loss, no duplicates.
    assert_eq!(info.kernels.len(), 3 * THREADS * ITERS, "kernel log is exact");
    assert!(info.new_tensors >= 4 * THREADS * ITERS, "every output tensor counted");
    assert!(info.kernels.iter().all(|k| k.wall_ms >= 0.0));
}

/// Tentpole: a served webgl workload exports a Chrome trace that parses
/// back with per-thread tracks, kernel spans nested inside the serve
/// span that dispatched them, and a virtual GPU track.
#[test]
fn chrome_trace_roundtrip_from_served_traffic() {
    let engine = webgl_engine(DeviceProfile::intel_iris_pro());
    let artifacts = classifier_artifacts(&engine, 16, 32, 4, 3).expect("build model");
    let mut server = ModelServer::new(
        &engine,
        ServeConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(50),
            cache_capacity: 2,
            ..Default::default()
        },
    );
    let key = server.register(ModelSource::Artifacts(artifacts));
    // Warm up untraced so the trace captures steady-state serving.
    server.infer(key, synthetic_example(16, 0), vec![16]).expect("warmup");

    webml::telemetry::clear();
    webml::telemetry::set_enabled(true);
    let pending: Vec<_> =
        (0..8).map(|i| server.submit(key, synthetic_example(16, i), vec![16])).collect();
    for p in pending {
        p.wait().expect("served inference");
    }
    server.shutdown();
    webml::telemetry::set_enabled(false);

    let text = webml::telemetry::chrome_trace_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace parses back");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");

    // Thread tracks: metadata for the GPU track plus at least the
    // dispatcher and device threads.
    let thread_names: Vec<(&serde_json::Value, &str)> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
        })
        .map(|e| {
            (
                e.get("tid").expect("meta tid"),
                e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()).unwrap_or(""),
            )
        })
        .collect();
    assert!(thread_names.len() >= 3, "GPU + dispatcher + device tracks: {thread_names:?}");
    assert!(thread_names.iter().any(|(_, n)| n.contains("GPU")), "virtual GPU track declared");
    assert!(
        thread_names.iter().any(|(_, n)| n.contains("webml-serve-dispatcher")),
        "dispatcher thread named: {thread_names:?}"
    );
    let gpu_tid = thread_names.iter().find(|(_, n)| n.contains("GPU")).map(|(t, _)| *t).unwrap();

    let spans: Vec<&serde_json::Value> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    let field = |e: &serde_json::Value, k: &str| e.get(k).and_then(|v| v.as_f64()).unwrap();

    // The batch the dispatcher coalesced: the pipelined dispatcher is
    // two-phase, so the submit span carries the engine kernel spans it
    // enqueued nested inside (same track, contained interval) and a
    // matching completion span replies after the fence.
    assert!(
        spans.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some("serve.complete")),
        "a serve.complete span (pipelined completion phase)"
    );
    let batch = spans
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("serve.submit"))
        .expect("a serve.submit span (8 submits, max_batch 8)");
    let batch_tid = batch.get("tid").expect("span tid");
    let (b0, b1) = (field(batch, "ts"), field(batch, "ts") + field(batch, "dur"));
    let nested_kernels = spans
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("kernel")
                && e.get("tid") == Some(batch_tid)
                && field(e, "ts") >= b0
                && field(e, "ts") + field(e, "dur") <= b1 + 1.0
        })
        .count();
    assert!(nested_kernels >= 3, "MLP kernels nest inside the batch span, got {nested_kernels}");

    // The GPU track carries device spans annotated with timer-query time.
    let gpu_spans: Vec<_> = spans.iter().filter(|e| e.get("tid") == Some(gpu_tid)).collect();
    assert!(!gpu_spans.is_empty(), "device work appears on the GPU track");
    assert!(gpu_spans.iter().all(|e| {
        e.get("args").and_then(|a| a.get("modeled_device_ns")).and_then(|v| v.as_f64()).unwrap_or(-1.0)
            > 0.0
    }));
}

/// Tentpole (PR-9): every request served with tracing on reconstructs a
/// complete causal lane from one trace id — every `serve`-category span
/// carries the id, a `serve.request` envelope brackets each request, all
/// spans sharing an envelope's id nest inside it, GPU spans inherit the
/// id across the device-thread boundary, and the attribution table holds
/// a complete six-phase timeline for every admitted request.
#[test]
fn request_scoped_tracing_reconstructs_causal_lanes() {
    let engine = webgl_engine(DeviceProfile::intel_iris_pro());
    // Unique layer geometry: model keys are content hashes and the
    // attribution table is process-global, so these params must differ
    // from every other test in this binary.
    let artifacts = classifier_artifacts(&engine, 24, 48, 5, 9).expect("build model");
    let mut server = ModelServer::new(
        &engine,
        ServeConfig {
            max_batch: 4,
            max_wait: std::time::Duration::from_millis(50),
            cache_capacity: 2,
            ..Default::default()
        },
    );
    let key = server.register(ModelSource::Artifacts(artifacts));
    // Warm up untraced so the model build stays out of the trace window.
    server.infer(key, synthetic_example(24, 0), vec![24]).expect("warmup");

    const REQUESTS: usize = 12;
    webml::telemetry::clear();
    webml::telemetry::set_enabled(true);
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| server.submit(key, synthetic_example(24, i + 1), vec![24]))
        .collect();
    for p in pending {
        p.wait().expect("served inference");
    }
    server.shutdown();
    webml::telemetry::set_enabled(false);

    let text = webml::telemetry::chrome_trace_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace parses back");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");
    let gpu_tid = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.contains("GPU"))
        })
        .and_then(|e| e.get("tid"))
        .expect("virtual GPU track declared");

    let trace_id = |e: &serde_json::Value| {
        e.get("args").and_then(|a| a.get("trace_id")).and_then(|v| v.as_u64()).unwrap_or(0)
    };
    let spans: Vec<&serde_json::Value> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    let extent = |e: &serde_json::Value| {
        let ts = e.get("ts").and_then(|v| v.as_f64()).unwrap();
        (ts, ts + e.get("dur").and_then(|v| v.as_f64()).unwrap())
    };

    // No anonymous serve work: every serving-layer span carries its
    // request's (or batch's / dispatch pass's) trace id.
    let mut serve_spans = 0usize;
    for e in &spans {
        if e.get("cat").and_then(|c| c.as_str()) == Some("serve") {
            serve_spans += 1;
            assert!(trace_id(e) > 0, "serve span without a trace id: {e:?}");
        }
    }
    assert!(serve_spans > 0, "trace carries serve-layer spans");

    // One `serve.request` envelope per admitted request, and every span
    // sharing an envelope's id nests inside it (half a microsecond-tick
    // of export-rounding slack).
    let mut envelopes = std::collections::HashMap::new();
    let mut request_envelopes = 0usize;
    for e in &spans {
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if name == "serve.request" || name == "serve.batch" || name == "serve.dispatch" {
            if name == "serve.request" {
                request_envelopes += 1;
            }
            let (s, t) = extent(e);
            let entry = envelopes.entry(trace_id(e)).or_insert((s, t));
            entry.0 = entry.0.min(s);
            entry.1 = entry.1.max(t);
        }
    }
    assert_eq!(request_envelopes, REQUESTS, "one serve.request envelope per traced request");
    let mut nested = 0usize;
    for e in &spans {
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
        let id = trace_id(e);
        if id == 0 || name == "serve.request" || name == "serve.batch" || name == "serve.dispatch" {
            continue;
        }
        let Some((env_start, env_end)) = envelopes.get(&id) else { continue };
        let (s, t) = extent(e);
        assert!(
            s >= env_start - 0.002 && t <= env_end + 0.002,
            "span {name} [{s:.3}, {t:.3}] us escapes envelope [{env_start:.3}, {env_end:.3}] \
             us of trace id {id}"
        );
        nested += 1;
    }
    assert!(nested > 0, "traced spans nest inside their request/batch envelopes");

    // The trace id crosses the device-thread boundary: GPU spans emitted
    // by the simulated device loop carry the id captured at enqueue time.
    let traced_gpu = spans
        .iter()
        .filter(|e| e.get("tid") == Some(gpu_tid) && trace_id(e) > 0)
        .count();
    assert!(traced_gpu > 0, "GPU spans inherit the submitting request's trace id");

    // Attribution: every request for this model (warmup included)
    // reconstructed a complete six-phase timeline — zero incomplete.
    let (complete, incomplete) = webml::telemetry::attribution::model_counts(key);
    assert_eq!(incomplete, 0, "every admitted request yields a complete phase timeline");
    assert!(
        complete >= REQUESTS as u64,
        "all {REQUESTS} traced requests attributed, got {complete}"
    );
}

/// Device-timer plumbing: profiles report device `kernel_ms` when the
/// simulated device has `EXT_disjoint_timer_query`, and degrade to `None`
/// (never garbage) when it does not.
#[test]
fn profile_device_time_degrades_without_timer_extension() {
    // intel_iris_pro advertises the extension → Some(kernel_ms).
    let with_timer = webgl_engine(DeviceProfile::intel_iris_pro());
    let (_, info) = with_timer.profile(|| {
        let a = with_timer.fill([64, 64], 1.5, webml::DType::F32).unwrap();
        let b = ops::matmul(&a, &a, false, false).unwrap();
        b.to_f32_vec().unwrap();
        a.dispose();
        b.dispose();
    });
    assert!(!info.kernels.is_empty());
    assert!(
        info.kernels.iter().all(|k| k.kernel_ms.is_some()),
        "every kernel carries device time on a timer-query device"
    );
    let device_total: f64 = info.kernels.iter().filter_map(|k| k.kernel_ms).sum();
    assert!(device_total > 0.0, "draw-call overhead alone makes device time positive");

    // android_modern lacks the extension → graceful None, wall time intact.
    let no_timer = webgl_engine(DeviceProfile::android_modern());
    let (_, info) = no_timer.profile(|| {
        let a = no_timer.fill([64, 64], 1.5, webml::DType::F32).unwrap();
        let b = ops::matmul(&a, &a, false, false).unwrap();
        b.to_f32_vec().unwrap();
        a.dispose();
        b.dispose();
    });
    assert!(!info.kernels.is_empty());
    assert!(
        info.kernels.iter().all(|k| k.kernel_ms.is_none()),
        "no disjoint-timer-query extension → kernel_ms must be None"
    );
    assert!(info.kernels.iter().all(|k| k.wall_ms >= 0.0), "wall timing still reported");
}
