//! Paging under memory pressure (paper Sec 4.1.2: a leaky loop must not
//! crash — textures page to the CPU past the threshold) and the device
//! support statistics of Sec 4.1.3.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use std::sync::Arc;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::webgl_sim::devices::{self, DeviceProfile, Platform};
use webml::webgl_sim::pager::PagingPolicy;
use webml::{ops, Engine};

fn paged_engine(threshold_bytes: usize) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    config.paging = PagingPolicy { enabled: true, threshold_bytes };
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
    e.register_backend("webgl", Arc::new(backend), 2);
    e
}

fn gauge(e: &Engine, key: &str) -> f64 {
    e.memory().backend.details.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0.0)
}

#[test]
fn leaky_loop_pages_instead_of_crashing() {
    // "a program with a loop creates one or more tensors during each tick
    // that never get disposed" — with paging on, GPU memory stays bounded.
    let e = paged_engine(128 * 1024);
    let mut results = Vec::new();
    for i in 0..48 {
        // Never disposed: a leak.
        let t = e.fill([4096], i as f32, webml::DType::F32).unwrap();
        results.push(t);
    }
    // ~768 KB allocated against a 128 KB budget: paging must have kicked in.
    assert!(gauge(&e, "page_outs") > 0.0, "no page-outs recorded");
    assert!(
        gauge(&e, "bytes_in_gpu") <= 256.0 * 1024.0,
        "GPU bytes stayed near the threshold, got {}",
        gauge(&e, "bytes_in_gpu")
    );
    // Every tensor — paged or resident — still reads back correctly.
    assert_eq!(results[0].to_f32_vec().unwrap()[0], 0.0);
    assert_eq!(results[47].to_f32_vec().unwrap()[0], 47.0);
    assert_eq!(results[13].to_f32_vec().unwrap()[0], 13.0);
}

#[test]
fn paged_tensors_can_be_computed_with() {
    let e = paged_engine(64 * 1024);
    let first = e.fill([4096], 7.0, webml::DType::F32).unwrap();
    for _ in 0..24 {
        let _leak = e.fill([4096], 0.0, webml::DType::F32).unwrap();
    }
    // `first` was LRU-evicted; using it pages it back in.
    let doubled = ops::add(&first, &first).unwrap();
    assert_eq!(doubled.to_f32_vec().unwrap()[0], 14.0);
    assert!(gauge(&e, "page_ins") > 0.0);
}

#[test]
fn paging_disabled_lets_gpu_grow() {
    let e = Engine::new();
    let backend =
        WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()).unwrap();
    e.register_backend("webgl", Arc::new(backend), 2);
    for _ in 0..16 {
        let _t = e.fill([4096], 1.0, webml::DType::F32).unwrap();
    }
    assert_eq!(gauge(&e, "page_outs"), 0.0);
    assert!(gauge(&e, "bytes_in_gpu") >= 16.0 * 4096.0 * 4.0);
}

#[test]
fn device_support_statistics_match_paper() {
    // Sec 4.1.3: 99% of desktop, 98% of iOS/Windows mobile, 52% of Android.
    let desktop = devices::coverage(Platform::Desktop);
    let ios = devices::coverage(Platform::IosAndWindowsMobile);
    let android = devices::coverage(Platform::Android);
    assert!((desktop - 0.99).abs() < 0.005, "desktop {desktop}");
    assert!((ios - 0.98).abs() < 0.005, "ios {ios}");
    assert!((android - 0.52).abs() < 0.005, "android {android}");
}

#[test]
fn fences_pass_in_order() {
    let e = paged_engine(usize::MAX);
    e.set_backend("webgl").unwrap();
    let a = e.rand_uniform([64, 64], -1.0, 1.0, 1).unwrap();
    let _y = ops::matmul(&a, &a, false, false).unwrap();
    // The fence lives behind the backend; flush via a read and confirm the
    // queued work completed in order (no error = fences consistent).
    let z = ops::matmul(&a, &a, false, true).unwrap();
    let v = z.to_f32_vec().unwrap();
    assert_eq!(v.len(), 64 * 64);
}
