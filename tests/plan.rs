//! Execution-plan correctness: ahead-of-time planned `GraphModel`
//! inference must be bitwise identical to the per-call interpreter on
//! every backend, and liveness-driven eager disposal must bound peak
//! memory to exactly the planner's prediction.

use std::collections::HashMap;
use webml::converter::{GraphDef, GraphModel};
use webml::models::{graph_mlp, graph_mobilenet, GraphSpec, MobileNetConfig};
use webml::{Engine, Shape};

const BACKENDS: [&str; 4] = ["cpu", "webgl", "webgpu", "native"];

fn build(e: &Engine, spec: &GraphSpec) -> GraphModel {
    spec.build(e).expect("build graph model")
}

/// Planned and interpreted fetches must agree bitwise: the plan runs the
/// same kernels in the same order, so on an f32 backend even accumulation
/// order is identical.
fn assert_planned_matches_interpreted(spec: &GraphSpec, backend: &str) {
    let e = webml::new_engine();
    e.set_backend(backend).expect("backend registered");
    let model = build(&e, spec);
    let (vals, shape) = spec.example(2, 1);
    let x = e.tensor(vals, Shape::new(shape)).unwrap();
    let planned = model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
    let interpreted =
        model.execute_interpreted(&[(&spec.input, &x)], &[&spec.output]).unwrap();
    assert_eq!(
        planned[0].to_f32_vec().unwrap(),
        interpreted[0].to_f32_vec().unwrap(),
        "planned vs interpreted on {backend}"
    );
    let stats = model.plan_stats();
    assert!(stats.misses >= 1, "planned pass compiled a plan on {backend}: {stats:?}");
    assert_eq!(stats.fallbacks, 0, "no interpreter fallback on {backend}: {stats:?}");
}

#[test]
fn mlp_planned_matches_interpreted_on_all_backends() {
    let spec = graph_mlp(12, &[24, 24], 5, 42);
    for backend in BACKENDS {
        assert_planned_matches_interpreted(&spec, backend);
    }
}

#[test]
fn mobilenet_planned_matches_interpreted_on_all_backends() {
    let config =
        MobileNetConfig { input_size: 32, classes: 7, ..MobileNetConfig::small() };
    let spec = graph_mobilenet(&config);
    for backend in BACKENDS {
        assert_planned_matches_interpreted(&spec, backend);
    }
}

/// A deep matmul chain where the interpreter keeps every intermediate
/// until scope end but the plan disposes each at its last use: the planned
/// peak must equal the predicted peak *exactly* (two live rows), and the
/// interpreted peak must be exactly the whole chain.
#[test]
fn eager_disposal_bounds_peak_bytes_exactly() {
    const LAYERS: usize = 6;
    const DIM: usize = 16;
    let e = webml::new_engine();
    e.set_backend("cpu").unwrap();
    let mut nodes = vec![GraphDef::from_triples(&[("x", "Placeholder", &[])]).nodes[0].clone()];
    let mut weights: HashMap<String, webml::Tensor> = HashMap::new();
    let mut prev = "x".to_string();
    for i in 0..LAYERS {
        let w = format!("w{i}");
        let mm = format!("mm{i}");
        let t = e.tensor(vec![0.5; DIM * DIM], Shape::new(vec![DIM, DIM])).unwrap();
        t.keep();
        weights.insert(w.clone(), t);
        let mut g = GraphDef::from_triples(&[
            (&w, "VariableV2", &[]),
            (&mm, "MatMul", &[&prev, &w]),
        ]);
        nodes.append(&mut g.nodes);
        prev = mm;
    }
    let fetch = prev.clone();
    let model = GraphModel::new(&e, GraphDef { nodes }, weights).unwrap();
    let x = e.tensor(vec![1.0; DIM], Shape::new(vec![1, DIM])).unwrap();
    x.keep();
    let row_bytes = DIM * 4;

    let plan = model
        .plan_for_shapes(&[("x".into(), vec![1, DIM])], &[&fetch])
        .expect("plan compiles");
    assert_eq!(
        plan.predicted_peak_bytes(),
        2 * row_bytes,
        "liveness predicts two live rows (current op output + its input)"
    );

    e.reset_peak_bytes();
    let baseline = e.memory().num_bytes;
    let out = model.execute(&[("x", &x)], &[&fetch]).unwrap();
    out[0].dispose();
    assert_eq!(
        e.peak_bytes() - baseline,
        plan.predicted_peak_bytes(),
        "planned peak is exactly the prediction"
    );

    e.reset_peak_bytes();
    let out = model.execute_interpreted(&[("x", &x)], &[&fetch]).unwrap();
    out[0].dispose();
    assert_eq!(
        e.peak_bytes() - baseline,
        LAYERS * row_bytes,
        "interpreted keeps the whole chain until scope end"
    );
}

/// Pipelined execution (enqueue + async readback behind a fence) must be
/// bitwise identical to the synchronous path on every backend: the same
/// plan runs the same kernels; only the readback mechanism differs.
#[test]
fn pipelined_matches_synchronous_on_all_backends() {
    let spec = graph_mlp(12, &[24, 24], 5, 42);
    for backend in BACKENDS {
        let e = webml::new_engine();
        e.set_backend(backend).expect("backend registered");
        let model = build(&e, &spec);
        let (vals, shape) = spec.example(3, 2);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let sync_out = model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let expect = sync_out[0].to_f32_vec().unwrap();
        sync_out[0].dispose();
        let pending = model.execute_pipelined(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let got = pending.wait().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to_f32_vec(), expect, "pipelined vs sync on {backend}");
    }
}

/// Several plan runs can be in flight at once; completing them in
/// submission order must still return each run's own answer, bitwise.
#[test]
fn overlapping_pipelined_runs_keep_their_answers() {
    let spec = graph_mlp(12, &[24, 24], 5, 42);
    for backend in BACKENDS {
        let e = webml::new_engine();
        e.set_backend(backend).expect("backend registered");
        let model = build(&e, &spec);
        let mut expects = Vec::new();
        let mut pendings = Vec::new();
        for seed in 0..4usize {
            let (vals, shape) = spec.example(2, seed);
            let x = e.tensor(vals, Shape::new(shape)).unwrap();
            let sync_out = model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
            expects.push(sync_out[0].to_f32_vec().unwrap());
            sync_out[0].dispose();
            pendings
                .push(model.execute_pipelined(&[(&spec.input, &x)], &[&spec.output]).unwrap());
            x.dispose();
        }
        for (pending, expect) in pendings.into_iter().zip(expects) {
            let got = pending.wait().unwrap();
            assert_eq!(got[0].to_f32_vec(), expect, "in-flight run on {backend}");
        }
    }
}

/// Fence-deferred disposal must be exact: after a pipelined run completes,
/// every intermediate and fetch tensor is released and engine memory
/// accounting returns to the pre-run baseline. Repeated runs must not
/// accumulate state (tensors, bytes, or scope entries).
#[test]
fn pipelined_disposal_closes_memory_accounting() {
    let spec = graph_mlp(12, &[24, 24], 5, 42);
    for backend in BACKENDS {
        let e = webml::new_engine();
        e.set_backend(backend).expect("backend registered");
        let model = build(&e, &spec);
        let (vals, shape) = spec.example(2, 1);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        x.keep();
        // Warm the plan cache so the baseline excludes compile-time state.
        model.execute_pipelined(&[(&spec.input, &x)], &[&spec.output]).unwrap().wait().unwrap();
        let baseline = e.memory();
        for _ in 0..50 {
            let pending =
                model.execute_pipelined(&[(&spec.input, &x)], &[&spec.output]).unwrap();
            pending.wait().unwrap();
        }
        let after = e.memory();
        assert_eq!(
            (after.num_tensors, after.num_bytes),
            (baseline.num_tensors, baseline.num_bytes),
            "pipelined runs leak state on {backend}"
        );
    }
}

/// The plan cache is keyed by feed-shape signature: new batch sizes
/// compile new plans, repeats hit.
#[test]
fn plan_cache_hits_across_batch_sizes() {
    let spec = graph_mlp(8, &[16], 4, 9);
    let e = webml::new_engine();
    e.set_backend("cpu").unwrap();
    let model = build(&e, &spec);
    // Load-time precompile (the placeholder declares batch 1).
    let after_load = model.plan_stats();
    assert_eq!(after_load.entries, 1);
    for batch in [1usize, 3, 3, 1, 8] {
        let (vals, shape) = spec.example(batch, 0);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let outs = model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        assert_eq!(outs[0].shape().0, vec![batch, 4]);
    }
    let stats = model.plan_stats();
    assert_eq!(stats.entries, 3, "three distinct batch signatures: {stats:?}");
    assert_eq!(stats.misses, 3, "one compile per signature: {stats:?}");
    assert_eq!(stats.hits, 3, "repeat shapes hit: {stats:?}");
}
