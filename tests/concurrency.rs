//! Thread-safety of the shared engine: TensorFlow.js is single-threaded by
//! platform, but this library is Rust — a shared engine must stay correct
//! under concurrent op submission, disposal, and backend switching from
//! worker threads.

use std::sync::Arc;
use webml::{ops, Engine};

fn engine_on(backend: &str) -> Engine {
    let e = webml::new_engine();
    e.set_backend(backend).unwrap();
    e
}

#[test]
fn concurrent_op_chains_on_webgl() {
    let e = Arc::new(engine_on("webgl"));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..16 {
                let expect = (t * 100 + i) as f32;
                let a = e.fill([64], expect, webml::DType::F32).unwrap();
                let b = ops::add(&a, &a).unwrap();
                let c = ops::relu(&b).unwrap();
                let vals = c.to_f32_vec().unwrap();
                assert!(vals.iter().all(|&v| v == expect * 2.0), "thread {t} iter {i}");
                a.dispose();
                b.dispose();
                c.dispose();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_training_and_inference_engines_are_independent() {
    // Two engines in the same process must not interfere.
    let mut handles = Vec::new();
    for seed in 0..3u64 {
        handles.push(std::thread::spawn(move || {
            let e = engine_on("native");
            let x = e.rand_uniform([8, 8], -1.0, 1.0, seed).unwrap();
            let g = e
                .grad(&x, || ops::sum(&ops::square(&x)?, None, false))
                .unwrap();
            let xs = x.to_f32_vec().unwrap();
            let gs = g.to_f32_vec().unwrap();
            for (a, b) in xs.iter().zip(&gs) {
                assert!((b - 2.0 * a).abs() < 1e-5);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_dispose_does_not_corrupt_in_flight_kernels() {
    // A kernel pins its inputs: disposing from another thread mid-flight
    // must not free the data underneath it.
    let e = Arc::new(engine_on("webgl"));
    for round in 0..8 {
        let a = e.fill([4096], round as f32, webml::DType::F32).unwrap();
        let a2 = a.clone();
        let e2 = e.clone();
        let compute = std::thread::spawn(move || {
            // The dispose may land before submission (a clean
            // TensorDisposed error) or after (the pin keeps the data alive
            // until the kernel finishes). Wrong values or crashes are the
            // failure modes being tested against.
            let _ = e2;
            match ops::add(&a2, &a2) {
                Err(webml::Error::TensorDisposed { .. }) => None,
                Err(other) => panic!("unexpected error: {other:?}"),
                Ok(y) => {
                    let vals = y.to_f32_vec().unwrap();
                    y.dispose();
                    Some(vals)
                }
            }
        });
        // Dispose concurrently with the enqueued kernel.
        a.dispose();
        if let Some(vals) = compute.join().unwrap() {
            assert!(vals.iter().all(|&v| v == round as f32 * 2.0));
        }
    }
}

#[test]
fn stress_mixed_ops_keep_exact_accounting_across_8_threads() {
    // The sharded-registry stress test: 8 threads hammer one engine with a
    // mix of creation, kernel execution, readback, tidy scopes, disposal
    // and memory()/num_tensors() polling. The final accounting must be
    // *exact* — every kept tensor visible, every disposed byte reclaimed —
    // and the whole thing must finish (no lock-order deadlock).
    const THREADS: u64 = 8;
    const ITERS: u64 = 24;
    const ELEMS: usize = 128;

    let e = Arc::new(engine_on("webgl"));
    let base = e.memory();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            let mut kept = Vec::new();
            for i in 0..ITERS {
                let v = (t * 31 + i) as f32;
                let a = e.fill([ELEMS], v, webml::DType::F32).unwrap();
                let b = ops::add(&a, &a).unwrap();
                let c = ops::relu(&b).unwrap();
                match i % 4 {
                    0 => {
                        let vals = c.to_f32_vec().unwrap();
                        assert!(vals.iter().all(|&x| x == v * 2.0), "thread {t} iter {i}");
                    }
                    1 => {
                        // Accounting calls race the other threads' kernels;
                        // they must never panic, deadlock, or undercount
                        // below this thread's own live handles.
                        let m = e.memory();
                        assert!(m.num_tensors >= kept.len(), "thread {t} iter {i}");
                        assert!(e.num_tensors() >= kept.len(), "thread {t} iter {i}");
                    }
                    2 => {
                        // Tidy scopes are per-thread: this must only sweep
                        // this thread's intermediates.
                        let d = e.tidy(|| ops::square(&c)).unwrap();
                        assert_eq!(d.to_f32_vec().unwrap()[0], (v * 2.0) * (v * 2.0));
                        d.dispose();
                    }
                    _ => {}
                }
                a.dispose();
                b.dispose();
                if i % 6 == 0 {
                    kept.push(c);
                } else {
                    c.dispose();
                }
            }
            kept
        }));
    }
    let mut kept_all = Vec::new();
    for h in handles {
        kept_all.extend(h.join().unwrap());
    }

    // Exact accounting: every surviving tensor is [ELEMS] f32.
    let m = e.memory();
    assert_eq!(m.num_tensors, base.num_tensors + kept_all.len());
    assert_eq!(m.num_bytes, base.num_bytes + kept_all.len() * ELEMS * 4);
    for t in kept_all {
        t.dispose();
    }
    let end = e.memory();
    assert_eq!(end.num_tensors, base.num_tensors);
    assert_eq!(end.num_bytes, base.num_bytes);
}

#[test]
fn memory_accounting_is_consistent_under_parallel_tidy() {
    let e = Arc::new(engine_on("cpu"));
    let baseline = e.num_tensors();
    let mut handles = Vec::new();
    for seed in 0..4u64 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                // Note: tidy scopes are engine-global, so concurrent tidies
                // interleave; correctness here means no panic/undercount and
                // full reclamation once all threads finish and handles drop.
                let t = e.rand_uniform([32], -1.0, 1.0, seed).unwrap();
                let u = ops::exp(&t).unwrap();
                t.dispose();
                u.dispose();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(e.num_tensors(), baseline);
}
