//! Asynchronous execution (paper Sec 3.6 / 4.1.1, Figures 2-3) and the
//! per-device precision handling of Sec 4.1.3, exercised end to end through
//! the engine on the webgl backend.

use std::sync::Arc;
use std::time::{Duration, Instant};
use webml::core::asyncx::EventLoop;
use webml::backend_webgl::{WebGlBackend, WebGlConfig};
use webml::webgl_sim::devices::DeviceProfile;
use webml::{ops, Engine, Tensor};

fn webgl_engine() -> Engine {
    let e = webml::new_engine();
    e.set_backend("webgl").unwrap();
    e
}

fn heavy_chain(e: &Engine, n: usize, depth: usize) -> Tensor {
    let a = e.rand_uniform([n, n], -1.0, 1.0, 1).unwrap();
    let mut y = ops::matmul(&a, &a, false, false).unwrap();
    for _ in 0..depth {
        y = ops::matmul(&y, &a, false, false).unwrap();
    }
    y
}

#[test]
fn ops_are_synchronous_but_nonblocking() {
    // Paper Sec 3.6: "operations like tf.matMul() are purposefully
    // synchronous and return a tensor whose data might not be computed
    // yet."
    let e = webgl_engine();
    let t0 = Instant::now();
    let y = heavy_chain(&e, 160, 5);
    let enqueue_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let vals = y.data_sync().unwrap();
    let compute_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(vals.len(), 160 * 160);
    assert!(
        enqueue_ms < compute_ms,
        "enqueue ({enqueue_ms:.1} ms) must be cheaper than compute ({compute_ms:.1} ms)"
    );
}

#[test]
fn figure2_sync_read_blocks_main_thread() {
    let e = webgl_engine();
    let lp = EventLoop::new(Duration::from_millis(2));
    let (data, report) = lp.run_sync(
        || heavy_chain(&e, 160, 5),
        |y| y.data_sync(),
        Duration::from_millis(20),
    );
    assert!(data.is_ok());
    assert!(report.blocked_ms > 5.0, "main thread must stall, got {} ms", report.blocked_ms);
    assert!(report.longest_frame_gap_ms >= report.blocked_ms * 0.9);
}

#[test]
fn figure3_async_read_keeps_frames_flowing() {
    let e = webgl_engine();
    let lp = EventLoop::new(Duration::from_millis(2));
    let (data, report) = lp.run_async(
        || {
            let y = heavy_chain(&e, 160, 5);
            y.data()
        },
        Duration::from_millis(20),
    );
    assert_eq!(data.unwrap().len(), 160 * 160);
    assert_eq!(report.blocked_ms, 0.0);
    // Frames kept rendering while the device worked.
    assert!(report.frames_rendered > 5, "only {} frames", report.frames_rendered);
}

#[test]
fn async_data_can_be_polled_like_a_promise() {
    let e = webgl_engine();
    let y = heavy_chain(&e, 128, 4);
    let future = y.data().unwrap();
    // Poll until resolution, doing "other main-thread work" in between.
    let mut polls = 0;
    let data = loop {
        if let Some(result) = future.poll() {
            break result.unwrap();
        }
        polls += 1;
        std::thread::sleep(Duration::from_micros(200));
    };
    assert_eq!(data.len(), 128 * 128);
    let _ = polls; // may be zero on very fast machines; correctness only
}

#[test]
fn f16_device_adjusts_epsilon_and_underflows() {
    // Sec 4.1.3: on iOS-class devices log(x + 1e-8) becomes log(x); the
    // library-wide epsilon is raised to 1e-4 on such devices.
    let e = Engine::new();
    let ios = WebGlBackend::new(DeviceProfile::ios_safari(), WebGlConfig::default()).unwrap();
    e.register_backend("webgl", Arc::new(ios), 2);
    assert_eq!(e.epsilon(), 1e-4);
    assert_eq!(e.backend().float_precision(), 16);

    let x = e.tensor_1d(&[0.0]).unwrap();
    let bad_eps = e.scalar(1e-8).unwrap();
    let y = ops::log(&ops::add(&x, &bad_eps).unwrap()).unwrap();
    assert!(y.to_f32_vec().unwrap()[0].is_infinite());

    let good_eps = e.scalar(e.epsilon()).unwrap();
    let z = ops::log(&ops::add(&x, &good_eps).unwrap()).unwrap();
    assert!(z.to_f32_vec().unwrap()[0].is_finite());
}

#[test]
fn f32_device_keeps_default_epsilon() {
    let e = webgl_engine();
    assert_eq!(e.epsilon(), 1e-7);
    assert_eq!(e.backend().float_precision(), 32);
}

#[test]
fn f16_values_round_through_half_precision() {
    let e = Engine::new();
    let ios = WebGlBackend::new(DeviceProfile::ios_safari(), WebGlConfig::default()).unwrap();
    e.register_backend("webgl", Arc::new(ios), 2);
    // 0.1 is inexact in binary16: the stored value differs from f32's 0.1.
    let t = e.tensor_1d(&[0.1]).unwrap();
    let v = t.to_f32_vec().unwrap()[0];
    assert_ne!(v, 0.1f32);
    assert!((v - 0.1).abs() < 1e-4);
}

#[test]
fn unsupported_device_falls_back_to_cpu_pattern() {
    // Sec 4.1.3 / 3.1: devices without float-texture support cannot run the
    // WebGL backend; the engine keeps working on the CPU fallback.
    let legacy = WebGlBackend::new(DeviceProfile::android_legacy(), WebGlConfig::default());
    assert!(legacy.is_err(), "legacy Android must be rejected");
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(webml::core::cpu::CpuBackend::new()), 1);
    if let Ok(b) = WebGlBackend::new(DeviceProfile::android_legacy(), WebGlConfig::default()) {
        e.register_backend("webgl", Arc::new(b), 2);
    }
    // webgl absent; cpu serves.
    assert_eq!(e.backend_name(), "cpu");
    let t = e.tensor_1d(&[1.0, 2.0]).unwrap();
    assert_eq!(ops::add(&t, &t).unwrap().to_f32_vec().unwrap(), vec![2.0, 4.0]);
}
