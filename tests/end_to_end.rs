//! End-to-end scenarios spanning crates: training on different backends,
//! the full converter pipeline on a MobileNet, transfer learning, and the
//! architecture layering of Figure 1.

use webml::converter::{self, Quantization, SimulatedNetwork};
use webml::data::synthetic;
use webml::models::repo;
use webml::prelude::*;

#[test]
fn xor_trains_on_cpu_and_webgl_backends() {
    for backend in ["cpu", "webgl"] {
        let engine = webml::new_engine();
        engine.set_backend(backend).unwrap();
        let mut model = Sequential::new(&engine).with_seed(7);
        model.add(Dense::new(8).with_input_dim(2).with_activation(Activation::Tanh));
        model.add(Dense::new(1).with_activation(Activation::Sigmoid));
        model.compile(Loss::MeanSquaredError, Box::new(Adam::new(0.1)));
        let data = synthetic::xor(1, 1);
        let (xs, ys) = data.to_tensors(&engine).unwrap();
        let history = model
            .fit(&xs, &ys, FitConfig { epochs: 150, batch_size: 4, ..Default::default() })
            .unwrap();
        let final_loss = *history.loss.last().unwrap();
        assert!(final_loss < 0.05, "{backend}: final loss {final_loss}");
    }
}

#[test]
fn training_histories_agree_across_backends() {
    // The same seed and data must give closely matching loss curves on the
    // reference cpu backend and the optimized native backend.
    let run = |backend: &str| -> Vec<f32> {
        let engine = webml::new_engine();
        engine.set_backend(backend).unwrap();
        let mut model = Sequential::new(&engine).with_seed(13);
        model.add(Dense::new(4).with_input_dim(1).with_activation(Activation::Tanh));
        model.add(Dense::new(1));
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.05)));
        let data = synthetic::linear(32, 1.5, -0.5, 0.1, 3);
        let (xs, ys) = data.to_tensors(&engine).unwrap();
        model
            .fit(&xs, &ys, FitConfig { epochs: 5, batch_size: 8, seed: 2, ..Default::default() })
            .unwrap()
            .loss
    };
    let cpu = run("cpu");
    let native = run("native");
    for (a, b) in cpu.iter().zip(&native) {
        assert!((a - b).abs() < 1e-2, "cpu {a} vs native {b}");
    }
}

#[test]
fn mobilenet_full_converter_pipeline() {
    let engine = webml::new_engine();
    let mut net = MobileNet::new(
        &engine,
        MobileNetConfig { alpha: 0.25, input_size: 32, classes: 8, batch_norm: true, seed: 4 },
    )
    .unwrap();
    let img = Image::synthetic_person(32, 32);
    let expect = net.classify(&img, 3).unwrap();

    // Save quantized artifacts, publish, reload over the network.
    let artifacts = converter::to_artifacts(net.model(), Some(Quantization::U16)).unwrap();
    let full = converter::to_artifacts(net.model(), None).unwrap();
    assert_eq!(full.weight_bytes(), artifacts.weight_bytes() * 2);

    let net_sim = SimulatedNetwork::new();
    repo::publish(net.model(), &net_sim, "https://bucket/mobilenet").unwrap();
    let mut restored = repo::load(&engine, &net_sim, "https://bucket/mobilenet").unwrap();

    // Identical predictions from the restored full-precision model.
    let x = img.to_normalized_tensor(&engine, 32).unwrap();
    let orig_probs = net.infer(&x).unwrap().to_f32_vec().unwrap();
    let rest_probs = restored.predict(&x).unwrap().to_f32_vec().unwrap();
    assert_eq!(orig_probs, rest_probs);
    let _ = expect;
}

#[test]
fn transfer_learning_with_knn_separates_synthetic_classes() {
    let engine = webml::new_engine();
    let mut backbone = MobileNet::new(
        &engine,
        MobileNetConfig { alpha: 0.25, input_size: 32, classes: 4, batch_norm: false, seed: 2 },
    )
    .unwrap();
    let mut knn = KnnClassifier::new();
    // Distinct solid colors are trivially separable embeddings.
    for i in 0..4 {
        let red = Image::solid(32, 32, [200 + i * 10, 10, 10]);
        let emb = backbone.embed(&red).unwrap();
        knn.add_example(&emb, "red").unwrap();
        emb.dispose();
        let blue = Image::solid(32, 32, [10, 10, 200 + i * 10]);
        let emb = backbone.embed(&blue).unwrap();
        knn.add_example(&emb, "blue").unwrap();
        emb.dispose();
    }
    let probe = Image::solid(32, 32, [235, 15, 5]);
    let emb = backbone.embed(&probe).unwrap();
    let pred = knn.predict(&emb, 3).unwrap();
    assert_eq!(pred.label, "red");
}

#[test]
fn figure1_architecture_layering() {
    // Figure 1: Layers API sits on the Ops API, which dispatches to
    // swappable backends. One model, three backends, same predictions.
    let engine = webml::new_engine();
    let mut model = Sequential::new(&engine).with_seed(6);
    model.add(Dense::new(4).with_input_dim(3).with_activation(Activation::Relu));
    model.add(Dense::new(2).with_activation(Activation::Softmax));
    model.build([3]).unwrap();
    let x = engine.tensor_2d(&[0.2, -0.4, 0.6], 1, 3).unwrap();
    let mut outputs = Vec::new();
    for backend in ["cpu", "webgl", "native", "plainjs"] {
        engine.set_backend(backend).unwrap();
        outputs.push(model.predict(&x).unwrap().to_f32_vec().unwrap());
    }
    for pair in outputs.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}

#[test]
fn batchnorm_model_trains_and_switches_modes() {
    let engine = webml::new_engine();
    let mut model = Sequential::new(&engine).with_seed(10);
    model.add(Dense::new(8).with_input_dim(2));
    model.add(webml::layers::BatchNormalization::new());
    model.add(webml::layers::ActivationLayer::new(Activation::Relu));
    model.add(Dense::new(1));
    model.compile(Loss::MeanSquaredError, Box::new(Adam::new(0.05)));
    let data = synthetic::xor(4, 2);
    let (xs, ys) = data.to_tensors(&engine).unwrap();
    let history =
        model.fit(&xs, &ys, FitConfig { epochs: 30, batch_size: 8, ..Default::default() }).unwrap();
    assert!(history.loss.last().unwrap() < &history.loss[0]);
    // Inference (moving-stats path) must be deterministic.
    let p1 = model.predict(&xs).unwrap().to_f32_vec().unwrap();
    let p2 = model.predict(&xs).unwrap().to_f32_vec().unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn mlp_survives_context_loss_with_single_degradation() {
    // A scheduled WebGL context loss mid-training must be invisible except
    // for exactly one degradation event: the fit completes on the cpu
    // fallback and predictions match a fault-free CPU-only run.
    let run = |engine: &webml::Engine| -> Vec<f32> {
        let mut model = Sequential::new(engine).with_seed(7);
        model.add(Dense::new(8).with_input_dim(2).with_activation(Activation::Tanh));
        model.add(Dense::new(1).with_activation(Activation::Sigmoid));
        model.compile(Loss::MeanSquaredError, Box::new(Sgd::new(0.5)));
        let data = synthetic::xor(1, 1);
        let (xs, ys) = data.to_tensors(engine).unwrap();
        model
            .fit(&xs, &ys, FitConfig { epochs: 20, batch_size: 4, seed: 2, ..Default::default() })
            .unwrap();
        model.predict(&xs).unwrap().to_f32_vec().unwrap()
    };

    let faulty = webml::new_engine_with_faults(webml::FaultPlan::none().lose_context_at(5));
    assert_eq!(faulty.backend_name(), "webgl");
    let preds = run(&faulty);
    assert_eq!(faulty.degradations(), 1, "exactly one webgl→cpu fallback");
    assert_eq!(faulty.backend_name(), "cpu");
    assert_eq!(faulty.degradation_events()[0].from_backend, "webgl");

    let reference = webml::new_engine();
    reference.set_backend("cpu").unwrap();
    assert_eq!(preds, run(&reference), "degraded training must match the CPU run");
}
